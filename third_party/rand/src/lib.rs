//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! member provides the small slice of the `rand 0.8` API that HomeGuard
//! actually uses: a seedable [`rngs::StdRng`], [`Rng::gen_range`] over
//! integer/float ranges, [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic per seed
//! (SplitMix64), which is all the simulator and channel models need —
//! replayable pseudo-randomness, not cryptographic quality.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types that can produce raw random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value from the range using `rng`.
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(&mut || self.next_u64())
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64 — deterministic, fast, and good
    /// enough for simulation schedules and latency jitter.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Pre-mix so small consecutive seeds produce unrelated streams.
            let mut rng = StdRng {
                state: seed ^ 0x5851_f42d_4c95_7f2d,
            };
            let _ = rng.next_u64();
            rng
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-0.35..0.35);
            assert!((-0.35..0.35).contains(&x));
            let n = rng.gen_range(0..7usize);
            assert!(n < 7);
            let i = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.05)).count();
        assert!((300..700).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 20-element shuffle staying sorted is ~impossible"
        );
    }
}
