//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this workspace member
//! implements the criterion API surface the HomeGuard benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — over a plain
//! wall-clock harness: per benchmark it warms up, then takes `sample_size`
//! timed samples and reports min/median/mean.
//!
//! Behavioral notes:
//!
//! * When the binary receives `--test` (what `cargo test` passes to
//!   `harness = false` bench targets) every benchmark body runs exactly
//!   once, as smoke validation, with no timing loop.
//! * A single positional argument acts as a substring filter on benchmark
//!   ids, mirroring `cargo bench -- <filter>`.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Per-iteration timing callback holder handed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    /// Accumulated measured time across `iter` batches in one sample.
    elapsed: Duration,
    iters: u64,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Run the body once, untimed (`--test`).
    Smoke,
    /// Timed measurement.
    Measure { iters: u64 },
}

impl Bencher {
    /// Times `routine`, running it the harness-chosen number of times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = match self.mode {
            Mode::Smoke => 1,
            Mode::Measure { iters } => iters,
        };
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += iters;
    }
}

/// Top-level harness state (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let smoke = args.iter().any(|a| a == "--test");
        let filter = args.iter().find(|a| !a.starts_with('-')).cloned();
        Criterion {
            sample_size: 10,
            filter,
            smoke,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        let sample_size = self.sample_size;
        self.run_one(id.to_string(), sample_size, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        if self.smoke {
            let mut b = Bencher {
                mode: Mode::Smoke,
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            println!("{id}: smoke ok");
            return;
        }
        // Calibrate the per-sample iteration count towards ~20ms samples so
        // sub-microsecond and multi-millisecond bodies both measure sanely.
        let mut b = Bencher {
            mode: Mode::Measure { iters: 1 },
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1)) / b.iters.max(1) as u32;
        let iters = (Duration::from_millis(20).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1_000_000) as u64;

        let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            let mut b = Bencher {
                mode: Mode::Measure { iters },
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            samples.push(b.elapsed / b.iters.max(1) as u32);
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{id:<48} min {:>12?}  median {:>12?}  mean {:>12?}  ({sample_size} samples x {iters} iters)",
            min, median, mean
        );
    }
}

/// A group of related benchmarks (subset of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark inside the group, id-prefixed with the group name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(full, sample_size, f);
        self
    }

    /// Ends the group (layout compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group function (subset of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point (subset of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion {
            sample_size: 2,
            filter: None,
            smoke: true,
        };
        let mut ran = false;
        c.bench_function("x", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            sample_size: 1,
            filter: Some("zzz".into()),
            smoke: true,
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
    }

    #[test]
    fn groups_prefix_ids_and_measure() {
        let mut c = Criterion {
            sample_size: 1,
            filter: Some("grp/fast".into()),
            smoke: false,
        };
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(2);
            g.bench_function("fast", |b| b.iter(|| calls += 1));
            g.bench_function("skipped", |b| b.iter(|| calls += 1_000_000));
            g.finish();
        }
        assert!(calls > 0 && calls < 1_000_000);
    }
}
