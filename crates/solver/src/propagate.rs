//! Constraint propagation: HC4 interval narrowing for numeric atoms and
//! set narrowing for enum atoms.
//!
//! Propagation is *sound* (never removes a value that could appear in a
//! solution) but deliberately incomplete — completeness comes from the
//! search in [`crate::search`]. All interval arithmetic is outward-rounded.

use crate::domain::Dom;
use crate::expr::{LAtom, LTerm};
use hg_rules::constraint::CmpOp;

/// The store of current variable domains.
pub type Store = Vec<Dom>;

/// Result of a propagation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Propagation {
    /// Domains are consistent so far (possibly narrowed).
    Consistent {
        /// Whether any domain changed.
        changed: bool,
    },
    /// A domain became empty: the conjunction is unsatisfiable.
    Conflict,
}

/// Propagates one atom against the store.
pub fn propagate_atom(atom: &LAtom, store: &mut Store) -> Propagation {
    if is_enum_atom(atom, store) {
        propagate_enum(atom, store)
    } else {
        propagate_numeric(atom, store)
    }
}

/// Runs all atoms to fixpoint. Returns `Conflict` if any domain empties.
pub fn propagate_all(atoms: &[LAtom], store: &mut Store, counter: &mut u64) -> Propagation {
    loop {
        let mut any_change = false;
        for atom in atoms {
            *counter += 1;
            match propagate_atom(atom, store) {
                Propagation::Conflict => return Propagation::Conflict,
                Propagation::Consistent { changed } => any_change |= changed,
            }
        }
        if !any_change {
            return Propagation::Consistent { changed: false };
        }
    }
}

fn is_enum_atom(atom: &LAtom, store: &Store) -> bool {
    term_is_symbolic(&atom.lhs, store) || term_is_symbolic(&atom.rhs, store)
}

fn term_is_symbolic(t: &LTerm, store: &Store) -> bool {
    match t {
        LTerm::Sym(_) => true,
        LTerm::Var(v) => matches!(store[*v], Dom::Enum(_)),
        _ => false,
    }
}

// ----- enum propagation -------------------------------------------------------

fn propagate_enum(atom: &LAtom, store: &mut Store) -> Propagation {
    let changed = match (&atom.lhs, &atom.rhs, atom.op) {
        (LTerm::Var(v), LTerm::Sym(s), CmpOp::Eq) | (LTerm::Sym(s), LTerm::Var(v), CmpOp::Eq) => {
            let dom = &mut store[*v];
            let before = dom.size();
            dom.fix_sym(*s);
            before != dom.size()
        }
        (LTerm::Var(v), LTerm::Sym(s), CmpOp::Ne) | (LTerm::Sym(s), LTerm::Var(v), CmpOp::Ne) => {
            store[*v].remove_sym(*s)
        }
        (LTerm::Var(a), LTerm::Var(b), CmpOp::Eq) => {
            let inter: std::collections::BTreeSet<_> = match (&store[*a], &store[*b]) {
                (Dom::Enum(sa), Dom::Enum(sb)) => sa.intersection(sb).copied().collect(),
                // Type confusion (one side numeric): no propagation.
                _ => return Propagation::Consistent { changed: false },
            };
            let changed = inter.len() != store[*a].size() as usize
                || inter.len() != store[*b].size() as usize;
            store[*a] = Dom::Enum(inter.clone());
            store[*b] = Dom::Enum(inter);
            changed
        }
        (LTerm::Var(a), LTerm::Var(b), CmpOp::Ne) => {
            let mut changed = false;
            if let (Dom::Enum(sa), Dom::Enum(_)) = (&store[*a].clone(), &store[*b]) {
                if sa.len() == 1 {
                    let only = *sa.iter().next().expect("len 1");
                    changed |= store[*b].remove_sym(only);
                }
            }
            if let (Dom::Enum(sb), Dom::Enum(_)) = (&store[*b].clone(), &store[*a]) {
                if sb.len() == 1 {
                    let only = *sb.iter().next().expect("len 1");
                    changed |= store[*a].remove_sym(only);
                }
            }
            changed
        }
        (LTerm::Sym(a), LTerm::Sym(b), op) => {
            // Constant check.
            let holds = match op {
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                _ => false,
            };
            if !holds {
                return Propagation::Conflict;
            }
            false
        }
        // Anything else (arithmetic over syms) is a type error the lowering
        // already rejected; treat as no-op.
        _ => false,
    };
    // Emptiness check on touched vars.
    for t in [&atom.lhs, &atom.rhs] {
        if let LTerm::Var(v) = t {
            if store[*v].is_empty() {
                return Propagation::Conflict;
            }
        }
    }
    Propagation::Consistent { changed }
}

// ----- numeric propagation (HC4) ----------------------------------------------

const SCALE: i64 = hg_capability::domains::SCALE;
const WIDE: i64 = i64::MAX / 4;

/// A closed interval with saturating arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound.
    pub lo: i64,
    /// Upper bound.
    pub hi: i64,
}

impl Interval {
    /// The unconstrained interval.
    pub fn top() -> Interval {
        Interval {
            lo: -WIDE,
            hi: WIDE,
        }
    }

    /// A point interval.
    pub fn point(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// Whether the interval contains no values.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    fn intersect(&self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    fn add(&self, o: Interval) -> Interval {
        Interval {
            lo: sat_add(self.lo, o.lo),
            hi: sat_add(self.hi, o.hi),
        }
    }

    fn sub(&self, o: Interval) -> Interval {
        Interval {
            lo: sat_sub(self.lo, o.hi),
            hi: sat_sub(self.hi, o.lo),
        }
    }

    fn neg(&self) -> Interval {
        Interval {
            lo: -self.hi,
            hi: -self.lo,
        }
    }

    fn mul(&self, o: Interval) -> Interval {
        // Scaled product (a/S)*(b/S)*S = a*b/S, corners in i128.
        let corners = [
            scaled_mul(self.lo, o.lo),
            scaled_mul(self.lo, o.hi),
            scaled_mul(self.hi, o.lo),
            scaled_mul(self.hi, o.hi),
        ];
        Interval {
            lo: corners.iter().copied().min().expect("4 corners"),
            hi: corners.iter().copied().max().expect("4 corners"),
        }
    }

    fn div(&self, o: Interval) -> Interval {
        // Scaled quotient; give up (stay wide) when divisor spans zero.
        if o.lo <= 0 && o.hi >= 0 {
            return Interval::top();
        }
        let corners = [
            scaled_div(self.lo, o.lo),
            scaled_div(self.lo, o.hi),
            scaled_div(self.hi, o.lo),
            scaled_div(self.hi, o.hi),
        ];
        Interval {
            lo: corners.iter().copied().min().expect("4 corners") - 1,
            hi: corners.iter().copied().max().expect("4 corners") + 1,
        }
    }
}

fn sat_add(a: i64, b: i64) -> i64 {
    a.saturating_add(b).clamp(-WIDE, WIDE)
}

fn sat_sub(a: i64, b: i64) -> i64 {
    a.saturating_sub(b).clamp(-WIDE, WIDE)
}

fn scaled_mul(a: i64, b: i64) -> i64 {
    let p = (a as i128) * (b as i128) / (SCALE as i128);
    p.clamp(-(WIDE as i128), WIDE as i128) as i64
}

fn scaled_div(a: i64, b: i64) -> i64 {
    debug_assert!(b != 0);
    let p = (a as i128) * (SCALE as i128) / (b as i128);
    p.clamp(-(WIDE as i128), WIDE as i128) as i64
}

/// Forward pass: evaluate a term's interval under the store.
pub fn eval_term(t: &LTerm, store: &Store) -> Interval {
    match t {
        LTerm::Num(n) => Interval::point(*n),
        LTerm::Sym(_) => Interval::top(), // type-confused; stay sound
        LTerm::Var(v) => match &store[*v] {
            Dom::Int { lo, hi } => Interval { lo: *lo, hi: *hi },
            Dom::Enum(_) => Interval::top(),
        },
        LTerm::Add(a, b) => eval_term(a, store).add(eval_term(b, store)),
        LTerm::Sub(a, b) => eval_term(a, store).sub(eval_term(b, store)),
        LTerm::Mul(a, b) => eval_term(a, store).mul(eval_term(b, store)),
        LTerm::Div(a, b) => eval_term(a, store).div(eval_term(b, store)),
        LTerm::Neg(a) => eval_term(a, store).neg(),
    }
}

/// Backward pass: narrow variables inside `t` so its value can lie in
/// `target`. Returns `false` on conflict.
fn project(t: &LTerm, target: Interval, store: &mut Store) -> bool {
    if target.is_empty() {
        return false;
    }
    match t {
        LTerm::Num(n) => target.lo <= *n && *n <= target.hi,
        LTerm::Sym(_) => true,
        LTerm::Var(v) => {
            if let Dom::Int { .. } = store[*v] {
                store[*v].narrow_int(target.lo, target.hi);
                !store[*v].is_empty()
            } else {
                true
            }
        }
        LTerm::Add(a, b) => {
            let ia = eval_term(a, store);
            let ib = eval_term(b, store);
            project(a, target.sub(ib), store) && project(b, target.sub(ia), store)
        }
        LTerm::Sub(a, b) => {
            let ia = eval_term(a, store);
            let ib = eval_term(b, store);
            // a - b ∈ target → a ∈ target + b, b ∈ a - target.
            project(a, target.add(ib), store) && project(b, ia.sub(target), store)
        }
        LTerm::Neg(a) => project(a, target.neg(), store),
        LTerm::Mul(a, b) => {
            // Narrow only through a constant factor; otherwise stay sound.
            match (constant_of(a, store), constant_of(b, store)) {
                (_, Some(c)) if c != 0 => project(a, div_target(target, c), store),
                (Some(c), _) if c != 0 => project(b, div_target(target, c), store),
                _ => true,
            }
        }
        LTerm::Div(a, b) => match constant_of(b, store) {
            Some(c) if c != 0 => project(a, mul_target(target, c), store),
            _ => true,
        },
    }
}

fn constant_of(t: &LTerm, store: &Store) -> Option<i64> {
    match t {
        LTerm::Num(n) => Some(*n),
        LTerm::Var(v) => match &store[*v] {
            Dom::Int { lo, hi } if lo == hi => Some(*lo),
            _ => None,
        },
        _ => None,
    }
}

/// Target for `x` given `x * c ∈ target` (scaled), outward-rounded.
fn div_target(target: Interval, c: i64) -> Interval {
    let a = scaled_div(target.lo, c);
    let b = scaled_div(target.hi, c);
    Interval {
        lo: a.min(b) - 1,
        hi: a.max(b) + 1,
    }
}

/// Target for `x` given `x / c ∈ target` (scaled), outward-rounded.
fn mul_target(target: Interval, c: i64) -> Interval {
    let a = scaled_mul(target.lo, c);
    let b = scaled_mul(target.hi, c);
    Interval {
        lo: a.min(b) - 1,
        hi: a.max(b) + 1,
    }
}

fn propagate_numeric(atom: &LAtom, store: &mut Store) -> Propagation {
    let before: Vec<(i64, i64)> = atom_var_bounds(atom, store);
    let l = eval_term(&atom.lhs, store);
    let r = eval_term(&atom.rhs, store);
    if l.is_empty() || r.is_empty() {
        return Propagation::Conflict;
    }
    let ok = match atom.op {
        CmpOp::Eq => {
            let meet = l.intersect(r);
            if meet.is_empty() {
                false
            } else {
                project(&atom.lhs, meet, store) && project(&atom.rhs, meet, store)
            }
        }
        CmpOp::Le => {
            // lhs ≤ rhs: lhs ≤ r.hi, rhs ≥ l.lo.
            if l.lo > r.hi {
                false
            } else {
                project(
                    &atom.lhs,
                    Interval {
                        lo: -WIDE,
                        hi: r.hi,
                    },
                    store,
                ) && project(&atom.rhs, Interval { lo: l.lo, hi: WIDE }, store)
            }
        }
        CmpOp::Lt => {
            if l.lo >= r.hi {
                false
            } else {
                project(
                    &atom.lhs,
                    Interval {
                        lo: -WIDE,
                        hi: r.hi - 1,
                    },
                    store,
                ) && project(
                    &atom.rhs,
                    Interval {
                        lo: l.lo + 1,
                        hi: WIDE,
                    },
                    store,
                )
            }
        }
        CmpOp::Ge => {
            if l.hi < r.lo {
                false
            } else {
                project(&atom.lhs, Interval { lo: r.lo, hi: WIDE }, store)
                    && project(
                        &atom.rhs,
                        Interval {
                            lo: -WIDE,
                            hi: l.hi,
                        },
                        store,
                    )
            }
        }
        CmpOp::Gt => {
            if l.hi <= r.lo {
                false
            } else {
                project(
                    &atom.lhs,
                    Interval {
                        lo: r.lo + 1,
                        hi: WIDE,
                    },
                    store,
                ) && project(
                    &atom.rhs,
                    Interval {
                        lo: -WIDE,
                        hi: l.hi - 1,
                    },
                    store,
                )
            }
        }
        CmpOp::Ne => {
            // Only decidable when both sides are points.
            !(l.lo == l.hi && r.lo == r.hi && l.lo == r.lo)
        }
    };
    if !ok {
        return Propagation::Conflict;
    }
    let after = atom_var_bounds(atom, store);
    Propagation::Consistent {
        changed: before != after,
    }
}

fn atom_var_bounds(atom: &LAtom, store: &Store) -> Vec<(i64, i64)> {
    let mut out = Vec::new();
    collect_bounds(&atom.lhs, store, &mut out);
    collect_bounds(&atom.rhs, store, &mut out);
    out
}

fn collect_bounds(t: &LTerm, store: &Store, out: &mut Vec<(i64, i64)>) {
    match t {
        LTerm::Var(v) => {
            if let Some(b) = store[*v].bounds() {
                out.push(b);
            }
        }
        LTerm::Add(a, b) | LTerm::Sub(a, b) | LTerm::Mul(a, b) | LTerm::Div(a, b) => {
            collect_bounds(a, store, out);
            collect_bounds(b, store, out);
        }
        LTerm::Neg(a) => collect_bounds(a, store, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(lo: i64, hi: i64) -> Dom {
        Dom::Int { lo, hi }
    }

    #[test]
    fn gt_narrows_both_sides() {
        // x > y with x ∈ [0,10], y ∈ [5,20] → x ∈ [6,10], y ∈ [5,9].
        let mut store = vec![int(0, 10), int(5, 20)];
        let atom = LAtom {
            lhs: LTerm::Var(0),
            op: CmpOp::Gt,
            rhs: LTerm::Var(1),
        };
        let mut n = 0;
        assert!(matches!(
            propagate_all(std::slice::from_ref(&atom), &mut store, &mut n),
            Propagation::Consistent { .. }
        ));
        assert_eq!(store[0].bounds(), Some((6, 10)));
        assert_eq!(store[1].bounds(), Some((5, 9)));
    }

    #[test]
    fn eq_intersects() {
        let mut store = vec![int(0, 10), int(5, 20)];
        let atom = LAtom {
            lhs: LTerm::Var(0),
            op: CmpOp::Eq,
            rhs: LTerm::Var(1),
        };
        let mut n = 0;
        propagate_all(std::slice::from_ref(&atom), &mut store, &mut n);
        assert_eq!(store[0].bounds(), Some((5, 10)));
        assert_eq!(store[1].bounds(), Some((5, 10)));
    }

    #[test]
    fn conflict_detected() {
        let mut store = vec![int(0, 4), int(5, 20)];
        let atom = LAtom {
            lhs: LTerm::Var(0),
            op: CmpOp::Gt,
            rhs: LTerm::Var(1),
        };
        assert_eq!(propagate_atom(&atom, &mut store), Propagation::Conflict);
    }

    #[test]
    fn arithmetic_projection() {
        // x + 500 > 3000, x ∈ [0, 10000] → x ∈ [2501, 10000].
        let mut store = vec![int(0, 10_000)];
        let atom = LAtom {
            lhs: LTerm::Add(Box::new(LTerm::Var(0)), Box::new(LTerm::Num(500))),
            op: CmpOp::Gt,
            rhs: LTerm::Num(3000),
        };
        propagate_atom(&atom, &mut store);
        assert_eq!(store[0].bounds(), Some((2501, 10_000)));
    }

    #[test]
    fn subtraction_projection() {
        // 100 - x >= 40 → x <= 60.
        let mut store = vec![int(0, 1000)];
        let atom = LAtom {
            lhs: LTerm::Sub(Box::new(LTerm::Num(100)), Box::new(LTerm::Var(0))),
            op: CmpOp::Ge,
            rhs: LTerm::Num(40),
        };
        propagate_atom(&atom, &mut store);
        assert_eq!(store[0].bounds(), Some((0, 60)));
    }

    #[test]
    fn enum_eq_fixes() {
        let mut store = vec![Dom::Enum([0, 1, 2].into_iter().collect())];
        let atom = LAtom {
            lhs: LTerm::Var(0),
            op: CmpOp::Eq,
            rhs: LTerm::Sym(1),
        };
        assert!(matches!(
            propagate_atom(&atom, &mut store),
            Propagation::Consistent { changed: true }
        ));
        assert!(store[0].is_singleton());
    }

    #[test]
    fn enum_ne_removes_and_conflicts() {
        let mut store = vec![Dom::Enum([0].into_iter().collect())];
        let atom = LAtom {
            lhs: LTerm::Var(0),
            op: CmpOp::Ne,
            rhs: LTerm::Sym(0),
        };
        assert_eq!(propagate_atom(&atom, &mut store), Propagation::Conflict);
    }

    #[test]
    fn enum_var_var_eq_intersects() {
        let mut store = vec![
            Dom::Enum([0, 1].into_iter().collect()),
            Dom::Enum([1, 2].into_iter().collect()),
        ];
        let atom = LAtom {
            lhs: LTerm::Var(0),
            op: CmpOp::Eq,
            rhs: LTerm::Var(1),
        };
        propagate_atom(&atom, &mut store);
        assert!(store[0].is_singleton());
        assert!(store[1].is_singleton());
    }

    #[test]
    fn enum_const_const() {
        let mut store: Store = vec![];
        let eq = LAtom {
            lhs: LTerm::Sym(3),
            op: CmpOp::Eq,
            rhs: LTerm::Sym(3),
        };
        assert!(matches!(
            propagate_atom(&eq, &mut store),
            Propagation::Consistent { .. }
        ));
        let ne = LAtom {
            lhs: LTerm::Sym(3),
            op: CmpOp::Eq,
            rhs: LTerm::Sym(4),
        };
        assert_eq!(propagate_atom(&ne, &mut store), Propagation::Conflict);
    }

    #[test]
    fn ne_points_conflict() {
        let mut store = vec![int(5, 5)];
        let atom = LAtom {
            lhs: LTerm::Var(0),
            op: CmpOp::Ne,
            rhs: LTerm::Num(5),
        };
        assert_eq!(propagate_atom(&atom, &mut store), Propagation::Conflict);
    }

    #[test]
    fn multiplication_by_constant() {
        // 2 * x <= 10 (scaled: 200 * x <= 1000) → x <= 5 (500).
        let mut store = vec![int(0, 100_000)];
        let atom = LAtom {
            lhs: LTerm::Mul(Box::new(LTerm::Num(200)), Box::new(LTerm::Var(0))),
            op: CmpOp::Le,
            rhs: LTerm::Num(500),
        };
        propagate_atom(&atom, &mut store);
        let (_, hi) = store[0].bounds().unwrap();
        // Outward rounding allows ±1 slack.
        assert!(hi <= 252, "hi = {hi}");
    }

    #[test]
    fn fixpoint_chains() {
        // x < y, y < z, z <= 10, all in [0,100] → x <= 8.
        let mut store = vec![int(0, 100), int(0, 100), int(0, 100)];
        let atoms = vec![
            LAtom {
                lhs: LTerm::Var(0),
                op: CmpOp::Lt,
                rhs: LTerm::Var(1),
            },
            LAtom {
                lhs: LTerm::Var(1),
                op: CmpOp::Lt,
                rhs: LTerm::Var(2),
            },
            LAtom {
                lhs: LTerm::Var(2),
                op: CmpOp::Le,
                rhs: LTerm::Num(10),
            },
        ];
        let mut n = 0;
        propagate_all(&atoms, &mut store, &mut n);
        assert_eq!(store[0].bounds(), Some((0, 8)));
        assert!(n >= 3);
    }
}
