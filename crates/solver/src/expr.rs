//! Lowered constraint representation and type inference.
//!
//! Before solving, `hg-rules` formulas are *lowered*: variables are interned
//! to dense indices, symbolic constants to [`SymId`]s, and every variable is
//! typed as numeric or enum. Type mismatches (comparing `"on"` with `5`)
//! are resolved the way `Formula::substitute` does: `==` is false, `!=` is
//! true, ordered comparisons are unsatisfiable.

use crate::domain::{Dom, SymId, SymTable};
use hg_rules::constraint::{CmpOp, Formula, Term};
use hg_rules::value::Value;
use hg_rules::varid::VarId;
use std::collections::BTreeMap;

/// Dense variable index.
pub type VarIdx = usize;

/// A lowered term.
#[derive(Debug, Clone, PartialEq)]
pub enum LTerm {
    /// Scaled numeric constant.
    Num(i64),
    /// Interned symbolic constant.
    Sym(SymId),
    /// A variable.
    Var(VarIdx),
    /// `a + b`.
    Add(Box<LTerm>, Box<LTerm>),
    /// `a - b`.
    Sub(Box<LTerm>, Box<LTerm>),
    /// `a * b` (scaled).
    Mul(Box<LTerm>, Box<LTerm>),
    /// `a / b` (scaled).
    Div(Box<LTerm>, Box<LTerm>),
    /// `-a`.
    Neg(Box<LTerm>),
}

impl LTerm {
    /// Whether the term is a bare variable.
    pub fn as_var(&self) -> Option<VarIdx> {
        match self {
            LTerm::Var(v) => Some(*v),
            _ => None,
        }
    }

    /// Whether the term contains any variable.
    pub fn has_vars(&self) -> bool {
        match self {
            LTerm::Num(_) | LTerm::Sym(_) => false,
            LTerm::Var(_) => true,
            LTerm::Add(a, b) | LTerm::Sub(a, b) | LTerm::Mul(a, b) | LTerm::Div(a, b) => {
                a.has_vars() || b.has_vars()
            }
            LTerm::Neg(a) => a.has_vars(),
        }
    }
}

/// A lowered comparison atom.
#[derive(Debug, Clone, PartialEq)]
pub struct LAtom {
    /// Left operand.
    pub lhs: LTerm,
    /// Operator.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: LTerm,
}

/// A lowered formula in negation normal form (no `Not` nodes: negation was
/// pushed into atoms during lowering).
#[derive(Debug, Clone, PartialEq)]
pub enum LFormula {
    /// Always true.
    True,
    /// Always false.
    False,
    /// An atom.
    Atom(LAtom),
    /// Conjunction.
    And(Vec<LFormula>),
    /// Disjunction.
    Or(Vec<LFormula>),
}

/// The inferred type of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarType {
    /// Numeric (scaled fixed-point interval domain).
    Num,
    /// Symbolic (enum domain).
    Sym,
}

/// The result of lowering a formula against declared domains.
#[derive(Debug)]
pub struct Lowered {
    /// The lowered formula (NNF).
    pub formula: LFormula,
    /// Interned variable identities, indexed by [`VarIdx`].
    pub vars: Vec<VarId>,
    /// Initial domain per variable.
    pub domains: Vec<Dom>,
    /// The symbol table.
    pub syms: SymTable,
}

/// The fallback symbol representing "any value other than those the formula
/// mentions" in auto-inferred enum domains.
pub const OTHER_SYM: &str = "\u{ab}other\u{bb}";

/// Symbol used to encode `null`.
pub const NULL_SYM: &str = "\u{ab}null\u{bb}";

/// Lowers `formula`, inferring variable types and initial domains.
///
/// `declared` supplies domains for variables the caller knows about (device
/// attributes get their capability domains, the mode gets the home's mode
/// set, ...). Undeclared variables are typed from usage: compared against a
/// symbol → enum over the mentioned symbols plus [`OTHER_SYM`]; otherwise →
/// numeric with generous default bounds.
pub fn lower(formula: &Formula, declared: &BTreeMap<VarId, Dom>, syms: &mut SymTable) -> Lowered {
    let mut cx = LowerCx {
        declared,
        syms,
        vars: Vec::new(),
        index: BTreeMap::new(),
        var_types: Vec::new(),
        mentioned_syms: Vec::new(),
    };
    // Pass 1: collect variables and infer types.
    cx.scan_formula(formula);
    // Pass 2: lower with negation pushing.
    let lowered = cx.lower_formula(formula, false);
    // Build initial domains.
    let mut domains = Vec::with_capacity(cx.vars.len());
    for (idx, var) in cx.vars.iter().enumerate() {
        if let Some(d) = cx.declared.get(var) {
            domains.push(d.clone());
            continue;
        }
        match cx.var_types[idx] {
            VarType::Num => domains.push(Dom::default_int()),
            VarType::Sym => {
                let mut set = cx.mentioned_syms[idx].clone();
                set.insert(cx.syms.intern(OTHER_SYM));
                domains.push(Dom::Enum(set));
            }
        }
    }
    Lowered {
        formula: lowered,
        vars: cx.vars,
        domains,
        syms: std::mem::take(cx.syms),
    }
}

struct LowerCx<'a> {
    declared: &'a BTreeMap<VarId, Dom>,
    syms: &'a mut SymTable,
    vars: Vec<VarId>,
    index: BTreeMap<VarId, VarIdx>,
    var_types: Vec<VarType>,
    mentioned_syms: Vec<std::collections::BTreeSet<SymId>>,
}

impl<'a> LowerCx<'a> {
    fn var_idx(&mut self, v: &VarId) -> VarIdx {
        if let Some(&i) = self.index.get(v) {
            return i;
        }
        let i = self.vars.len();
        self.vars.push(v.clone());
        self.index.insert(v.clone(), i);
        // Initial type from declaration if present, else numeric by default
        // (may be flipped to Sym during scanning).
        let ty = match self.declared.get(v) {
            Some(Dom::Enum(_)) => VarType::Sym,
            Some(Dom::Int { .. }) => VarType::Num,
            None => VarType::Num,
        };
        self.var_types.push(ty);
        self.mentioned_syms.push(Default::default());
        i
    }

    fn scan_formula(&mut self, f: &Formula) {
        match f {
            Formula::True | Formula::False => {}
            Formula::Cmp { lhs, op: _, rhs } => self.scan_atom(lhs, rhs),
            Formula::And(parts) | Formula::Or(parts) => {
                for p in parts {
                    self.scan_formula(p);
                }
            }
            Formula::Not(inner) => self.scan_formula(inner),
        }
    }

    /// Marks variables compared against symbols as enum-typed and records
    /// which symbols they are compared with (for auto domains).
    fn scan_atom(&mut self, lhs: &Term, rhs: &Term) {
        self.scan_term(lhs);
        self.scan_term(rhs);
        let lsym = symbolic_const(lhs, self.syms);
        let rsym = symbolic_const(rhs, self.syms);
        if let (Some(v), Some(s)) = (term_var(lhs), rsym) {
            let idx = self.var_idx(&v);
            if self.declared.get(&v).is_none() {
                self.var_types[idx] = VarType::Sym;
            }
            self.mentioned_syms[idx].insert(s);
        }
        if let (Some(v), Some(s)) = (term_var(rhs), lsym) {
            let idx = self.var_idx(&v);
            if self.declared.get(&v).is_none() {
                self.var_types[idx] = VarType::Sym;
            }
            self.mentioned_syms[idx].insert(s);
        }
        // Var-to-var comparisons: if one side is enum typed (declared), the
        // other follows.
        if let (Some(a), Some(b)) = (term_var(lhs), term_var(rhs)) {
            let ia = self.var_idx(&a);
            let ib = self.var_idx(&b);
            if self.var_types[ia] == VarType::Sym && self.declared.get(&b).is_none() {
                self.var_types[ib] = VarType::Sym;
            }
            if self.var_types[ib] == VarType::Sym && self.declared.get(&a).is_none() {
                self.var_types[ia] = VarType::Sym;
            }
            // Share mentioned symbols both ways so auto domains overlap.
            let union: std::collections::BTreeSet<_> = self.mentioned_syms[ia]
                .union(&self.mentioned_syms[ib])
                .copied()
                .collect();
            self.mentioned_syms[ia] = union.clone();
            self.mentioned_syms[ib] = union;
        }
    }

    fn scan_term(&mut self, t: &Term) {
        match t {
            Term::Const(_) => {}
            Term::Var(v) => {
                self.var_idx(v);
            }
            Term::Add(a, b) | Term::Sub(a, b) | Term::Mul(a, b) | Term::Div(a, b) => {
                self.scan_term(a);
                self.scan_term(b);
                // Arithmetic participants are numeric.
                for side in [a, b] {
                    if let Term::Var(v) = side.as_ref() {
                        if self.declared.get(v).is_none() {
                            let idx = self.var_idx(v);
                            self.var_types[idx] = VarType::Num;
                        }
                    }
                }
            }
            Term::Neg(a) => self.scan_term(a),
        }
    }

    fn lower_formula(&mut self, f: &Formula, negated: bool) -> LFormula {
        match f {
            Formula::True => {
                if negated {
                    LFormula::False
                } else {
                    LFormula::True
                }
            }
            Formula::False => {
                if negated {
                    LFormula::True
                } else {
                    LFormula::False
                }
            }
            Formula::Cmp { lhs, op, rhs } => {
                let op = if negated { op.negate() } else { *op };
                self.lower_atom(lhs, op, rhs)
            }
            Formula::And(parts) => {
                let lowered: Vec<_> = parts
                    .iter()
                    .map(|p| self.lower_formula(p, negated))
                    .collect();
                if negated {
                    simplify_or(lowered)
                } else {
                    simplify_and(lowered)
                }
            }
            Formula::Or(parts) => {
                let lowered: Vec<_> = parts
                    .iter()
                    .map(|p| self.lower_formula(p, negated))
                    .collect();
                if negated {
                    simplify_and(lowered)
                } else {
                    simplify_or(lowered)
                }
            }
            Formula::Not(inner) => self.lower_formula(inner, !negated),
        }
    }

    fn lower_atom(&mut self, lhs: &Term, op: CmpOp, rhs: &Term) -> LFormula {
        let ll = self.lower_term(lhs);
        let lr = self.lower_term(rhs);
        // Type checking: symbolic operands only admit Eq/Ne between
        // same-typed operands.
        let lty = self.term_type(&ll);
        let rty = self.term_type(&lr);
        match (lty, rty) {
            (VarType::Num, VarType::Num) => LFormula::Atom(LAtom {
                lhs: ll,
                op,
                rhs: lr,
            }),
            (VarType::Sym, VarType::Sym) => match op {
                CmpOp::Eq | CmpOp::Ne => LFormula::Atom(LAtom {
                    lhs: ll,
                    op,
                    rhs: lr,
                }),
                // Ordered comparison of symbols: unsatisfiable (SmartApps
                // never do this on purpose; be conservative).
                _ => LFormula::False,
            },
            // Mixed types: `==` false, `!=` true, ordered false.
            _ => match op {
                CmpOp::Ne => LFormula::True,
                _ => LFormula::False,
            },
        }
    }

    fn lower_term(&mut self, t: &Term) -> LTerm {
        match t {
            Term::Const(Value::Num(n)) => LTerm::Num(*n),
            Term::Const(Value::Sym(s)) => LTerm::Sym(self.syms.intern(s)),
            Term::Const(Value::Bool(b)) => {
                LTerm::Sym(self.syms.intern(if *b { "true" } else { "false" }))
            }
            Term::Const(Value::Null) => LTerm::Sym(self.syms.intern(NULL_SYM)),
            Term::Var(v) => LTerm::Var(self.var_idx(v)),
            Term::Add(a, b) => {
                LTerm::Add(Box::new(self.lower_term(a)), Box::new(self.lower_term(b)))
            }
            Term::Sub(a, b) => {
                LTerm::Sub(Box::new(self.lower_term(a)), Box::new(self.lower_term(b)))
            }
            Term::Mul(a, b) => {
                LTerm::Mul(Box::new(self.lower_term(a)), Box::new(self.lower_term(b)))
            }
            Term::Div(a, b) => {
                LTerm::Div(Box::new(self.lower_term(a)), Box::new(self.lower_term(b)))
            }
            Term::Neg(a) => LTerm::Neg(Box::new(self.lower_term(a))),
        }
    }

    fn term_type(&self, t: &LTerm) -> VarType {
        match t {
            LTerm::Num(_) => VarType::Num,
            LTerm::Sym(_) => VarType::Sym,
            LTerm::Var(i) => self.var_types[*i],
            _ => VarType::Num,
        }
    }
}

fn term_var(t: &Term) -> Option<VarId> {
    match t {
        Term::Var(v) => Some(v.clone()),
        _ => None,
    }
}

fn symbolic_const(t: &Term, syms: &mut SymTable) -> Option<SymId> {
    match t {
        Term::Const(Value::Sym(s)) => Some(syms.intern(s)),
        Term::Const(Value::Bool(b)) => Some(syms.intern(if *b { "true" } else { "false" })),
        Term::Const(Value::Null) => Some(syms.intern(NULL_SYM)),
        _ => None,
    }
}

fn simplify_and(parts: Vec<LFormula>) -> LFormula {
    let mut flat = Vec::new();
    for p in parts {
        match p {
            LFormula::True => {}
            LFormula::False => return LFormula::False,
            LFormula::And(inner) => flat.extend(inner),
            other => flat.push(other),
        }
    }
    match flat.len() {
        0 => LFormula::True,
        1 => flat.pop().expect("len checked"),
        _ => LFormula::And(flat),
    }
}

fn simplify_or(parts: Vec<LFormula>) -> LFormula {
    let mut flat = Vec::new();
    for p in parts {
        match p {
            LFormula::False => {}
            LFormula::True => return LFormula::True,
            LFormula::Or(inner) => flat.extend(inner),
            other => flat.push(other),
        }
    }
    match flat.len() {
        0 => LFormula::False,
        1 => flat.pop().expect("len checked"),
        _ => LFormula::Or(flat),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hg_rules::constraint::Term as RTerm;

    fn temp() -> VarId {
        VarId::env("temperature")
    }

    fn mode() -> VarId {
        VarId::Mode
    }

    #[test]
    fn lowering_types_sym_comparison() {
        let f = Formula::var_eq(mode(), Value::sym("Night"));
        let lowered = lower(&f, &BTreeMap::new(), &mut SymTable::new());
        assert_eq!(lowered.vars.len(), 1);
        // Auto enum domain: Night + other.
        match &lowered.domains[0] {
            Dom::Enum(set) => assert_eq!(set.len(), 2),
            other => panic!("expected enum, got {other:?}"),
        }
    }

    #[test]
    fn lowering_types_numeric() {
        let f = Formula::cmp(RTerm::var(temp()), CmpOp::Gt, RTerm::num(3000));
        let lowered = lower(&f, &BTreeMap::new(), &mut SymTable::new());
        assert!(matches!(lowered.domains[0], Dom::Int { .. }));
        assert!(matches!(lowered.formula, LFormula::Atom(_)));
    }

    #[test]
    fn mixed_type_eq_is_false() {
        let f = Formula::cmp(RTerm::var(temp()), CmpOp::Gt, RTerm::num(1)); // numeric use
        let g = Formula::cmp(RTerm::var(temp()), CmpOp::Eq, RTerm::sym("on"));
        let both = Formula::and([f, g]);
        let lowered = lower(&both, &BTreeMap::new(), &mut SymTable::new());
        // temp is numeric (arithmetic context wins by scan order: compared
        // to both a number and a symbol, declared type resolution keeps it
        // Sym because the sym comparison marks it). Either way the mixed
        // atom must collapse to False or stay consistent — the formula must
        // not panic and must remain well-formed.
        match &lowered.formula {
            LFormula::False | LFormula::And(_) | LFormula::Atom(_) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negation_is_pushed_into_atoms() {
        let f = Formula::Not(Box::new(Formula::cmp(
            RTerm::var(temp()),
            CmpOp::Gt,
            RTerm::num(5),
        )));
        let lowered = lower(&f, &BTreeMap::new(), &mut SymTable::new());
        match &lowered.formula {
            LFormula::Atom(a) => assert_eq!(a.op, CmpOp::Le),
            other => panic!("expected atom, got {other:?}"),
        }
    }

    #[test]
    fn demorgan() {
        let f = Formula::Not(Box::new(Formula::and([
            Formula::cmp(RTerm::var(temp()), CmpOp::Gt, RTerm::num(5)),
            Formula::cmp(RTerm::var(temp()), CmpOp::Lt, RTerm::num(10)),
        ])));
        let lowered = lower(&f, &BTreeMap::new(), &mut SymTable::new());
        assert!(matches!(lowered.formula, LFormula::Or(ref v) if v.len() == 2));
    }

    #[test]
    fn declared_domains_take_precedence() {
        let mut declared = BTreeMap::new();
        let mut syms = SymTable::new();
        let on = syms.intern("on");
        let off = syms.intern("off");
        declared.insert(VarId::env("x"), Dom::Enum([on, off].into_iter().collect()));
        let f = Formula::var_eq(VarId::env("x"), Value::sym("on"));
        let lowered = lower(&f, &declared, &mut syms);
        match &lowered.domains[0] {
            Dom::Enum(set) => assert_eq!(set.len(), 2), // no OTHER added
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ordered_sym_comparison_is_false() {
        let f = Formula::cmp(RTerm::sym("a"), CmpOp::Lt, RTerm::sym("b"));
        let lowered = lower(&f, &BTreeMap::new(), &mut SymTable::new());
        assert_eq!(lowered.formula, LFormula::False);
    }

    #[test]
    fn var_to_var_sym_unification() {
        let mut declared = BTreeMap::new();
        let mut syms = SymTable::new();
        let on = syms.intern("on");
        declared.insert(VarId::env("a"), Dom::Enum([on].into_iter().collect()));
        let f = Formula::cmp(
            RTerm::var(VarId::env("a")),
            CmpOp::Eq,
            RTerm::var(VarId::env("b")),
        );
        let lowered = lower(&f, &declared, &mut syms);
        // b inherits Sym type.
        assert!(matches!(lowered.formula, LFormula::Atom(_)));
        assert!(matches!(lowered.domains[1], Dom::Enum(_)));
    }
}
