//! Variable domains and the symbol table.

use std::collections::BTreeSet;
use std::fmt;

/// Interned symbol id.
pub type SymId = u32;

/// Interns symbolic enum values (`"on"`, `"locked"`, mode names) so enum
/// domains are cheap bitset-like operations over small integers.
#[derive(Debug, Default, Clone)]
pub struct SymTable {
    names: Vec<String>,
}

impl SymTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SymTable::default()
    }

    /// Interns `name`, returning its id.
    pub fn intern(&mut self, name: &str) -> SymId {
        if let Some(idx) = self.names.iter().position(|n| n == name) {
            return idx as SymId;
        }
        self.names.push(name.to_string());
        (self.names.len() - 1) as SymId
    }

    /// Looks up the text for an id.
    pub fn name(&self, id: SymId) -> &str {
        &self.names[id as usize]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A variable's current domain during solving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Dom {
    /// A bounded integer interval `[lo, hi]` (scaled fixed-point).
    Int {
        /// Lower bound, inclusive.
        lo: i64,
        /// Upper bound, inclusive.
        hi: i64,
    },
    /// A finite set of interned symbols.
    Enum(BTreeSet<SymId>),
}

impl Dom {
    /// Default integer domain for undeclared numeric variables: generous
    /// physical bounds in scaled fixed-point.
    pub fn default_int() -> Dom {
        Dom::Int {
            lo: -100_000_000,
            hi: 100_000_000,
        }
    }

    /// Whether the domain has no values left.
    pub fn is_empty(&self) -> bool {
        match self {
            Dom::Int { lo, hi } => lo > hi,
            Dom::Enum(set) => set.is_empty(),
        }
    }

    /// Whether exactly one value remains.
    pub fn is_singleton(&self) -> bool {
        match self {
            Dom::Int { lo, hi } => lo == hi,
            Dom::Enum(set) => set.len() == 1,
        }
    }

    /// Number of values (saturating for huge intervals).
    pub fn size(&self) -> u64 {
        match self {
            Dom::Int { lo, hi } => {
                if lo > hi {
                    0
                } else {
                    (hi - lo) as u64 + 1
                }
            }
            Dom::Enum(set) => set.len() as u64,
        }
    }

    /// Intersects with an interval, returning whether this changed anything.
    ///
    /// No-op (returns `false`) on enum domains.
    pub fn narrow_int(&mut self, new_lo: i64, new_hi: i64) -> bool {
        if let Dom::Int { lo, hi } = self {
            let mut changed = false;
            if new_lo > *lo {
                *lo = new_lo;
                changed = true;
            }
            if new_hi < *hi {
                *hi = new_hi;
                changed = true;
            }
            changed
        } else {
            false
        }
    }

    /// Removes a symbol, returning whether it was present.
    pub fn remove_sym(&mut self, sym: SymId) -> bool {
        match self {
            Dom::Enum(set) => set.remove(&sym),
            Dom::Int { .. } => false,
        }
    }

    /// Restricts to a single symbol. Returns `false` (and empties the
    /// domain) when the symbol was not in the domain.
    pub fn fix_sym(&mut self, sym: SymId) -> bool {
        match self {
            Dom::Enum(set) => {
                let had = set.contains(&sym);
                set.clear();
                if had {
                    set.insert(sym);
                }
                had
            }
            Dom::Int { .. } => false,
        }
    }

    /// The interval bounds, if integer.
    pub fn bounds(&self) -> Option<(i64, i64)> {
        match self {
            Dom::Int { lo, hi } => Some((*lo, *hi)),
            Dom::Enum(_) => None,
        }
    }

    /// The symbol set, if enum.
    pub fn syms(&self) -> Option<&BTreeSet<SymId>> {
        match self {
            Dom::Enum(set) => Some(set),
            Dom::Int { .. } => None,
        }
    }
}

impl fmt::Display for Dom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dom::Int { lo, hi } => write!(f, "[{lo}, {hi}]"),
            Dom::Enum(set) => {
                write!(f, "{{")?;
                for (i, s) in set.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "#{s}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable() {
        let mut t = SymTable::new();
        let on = t.intern("on");
        let off = t.intern("off");
        assert_ne!(on, off);
        assert_eq!(t.intern("on"), on);
        assert_eq!(t.name(off), "off");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn int_narrowing() {
        let mut d = Dom::Int { lo: 0, hi: 100 };
        assert!(d.narrow_int(10, 90));
        assert_eq!(d.bounds(), Some((10, 90)));
        assert!(!d.narrow_int(5, 95)); // no change
        assert!(d.narrow_int(95, 200)); // empties
        assert!(d.is_empty());
    }

    #[test]
    fn enum_operations() {
        let mut d = Dom::Enum([0, 1, 2].into_iter().collect());
        assert_eq!(d.size(), 3);
        assert!(d.remove_sym(1));
        assert!(!d.remove_sym(1));
        assert!(d.fix_sym(0));
        assert!(d.is_singleton());
        let mut e = Dom::Enum([2].into_iter().collect());
        assert!(!e.fix_sym(5));
        assert!(e.is_empty());
    }

    #[test]
    fn sizes() {
        assert_eq!(Dom::Int { lo: 3, hi: 3 }.size(), 1);
        assert_eq!(Dom::Int { lo: 4, hi: 3 }.size(), 0);
        assert!(Dom::Int { lo: 3, hi: 3 }.is_singleton());
    }
}
