//! # hg-solver — finite-domain constraint solver
//!
//! HomeGuard's overlap-condition detection (paper §VI-A2) reduces CAI threat
//! checks to constraint satisfaction: merge the trigger/condition formulas
//! of two rules plus device constraints, then decide satisfiability. The
//! paper uses the Java Constraint Programming (JaCoP) library; this crate is
//! a from-scratch replacement sufficient for the quantifier-free,
//! finite-domain fragment those formulas live in:
//!
//! * **Domains**: bounded integer intervals (scaled fixed-point) and finite
//!   symbol sets ([`domain`]).
//! * **Propagation**: HC4 interval narrowing for arithmetic atoms plus set
//!   narrowing for enum atoms ([`propagate`]).
//! * **Search**: DNF expansion with branch-and-prune DFS, complete on the
//!   fragment and budget-limited ([`search`]).
//!
//! The public entry point is [`Model`]: declare variable domains, then ask
//! for satisfiability of `hg-rules` [`Formula`](hg_rules::Formula)s. `Sat`
//! outcomes carry a witness assignment, which HomeGuard's frontend shows to
//! the user as the concrete situation in which two rules interfere.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domain;
pub mod expr;
pub mod model;
pub mod propagate;
pub mod search;

pub use model::{Assignment, Model, Outcome, SolveReport};
pub use search::{SearchConfig, SearchStats};
