//! Public solver API over `hg-rules` formulas.

use crate::domain::{Dom, SymTable};
use crate::expr::{lower, OTHER_SYM};
use crate::search::{solve as search_solve, SearchConfig, SearchResult, SearchStats};
use hg_rules::constraint::Formula;
use hg_rules::value::Value;
use hg_rules::varid::VarId;
use std::collections::BTreeMap;

/// A witness assignment: one concrete value per variable.
pub type Assignment = BTreeMap<VarId, Value>;

/// The result of a satisfiability query.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Satisfiable, with a witness (the "certain situation" the paper shows
    /// to users when explaining a threat).
    Sat(Assignment),
    /// Unsatisfiable.
    Unsat,
    /// Undecided within the search budget. Callers in the detector treat
    /// this conservatively (as potentially satisfiable).
    Unknown,
}

impl Outcome {
    /// Whether the query is satisfiable (treating [`Outcome::Unknown`]
    /// pessimistically as `false`).
    pub fn is_sat(&self) -> bool {
        matches!(self, Outcome::Sat(_))
    }

    /// The witness, if satisfiable.
    pub fn witness(&self) -> Option<&Assignment> {
        match self {
            Outcome::Sat(a) => Some(a),
            _ => None,
        }
    }
}

/// A solve result together with search statistics (used by the Fig. 9
/// overhead experiments).
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// The satisfiability outcome.
    pub outcome: Outcome,
    /// Search effort counters.
    pub stats: SearchStats,
}

/// A constraint model: declared variable domains plus solver configuration.
///
/// # Examples
///
/// ```
/// use hg_solver::{Model, Outcome};
/// use hg_rules::prelude::*;
///
/// let mut model = Model::new();
/// model.declare_int(VarId::env("temperature"), -4000, 15000);
/// let hot = Formula::cmp(
///     Term::var(VarId::env("temperature")), CmpOp::Gt, Term::num(3000));
/// let cold = Formula::cmp(
///     Term::var(VarId::env("temperature")), CmpOp::Lt, Term::num(0));
/// assert!(model.solve(&hot).is_sat());
/// assert_eq!(model.solve_conjunction(&[&hot, &cold]), Outcome::Unsat);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Model {
    declared: BTreeMap<VarId, Dom>,
    syms: SymTable,
    config: SearchConfig,
}

impl Model {
    /// An empty model with default search limits.
    pub fn new() -> Model {
        Model {
            declared: BTreeMap::new(),
            syms: SymTable::new(),
            config: SearchConfig::default(),
        }
    }

    /// Overrides the search limits.
    pub fn with_config(mut self, config: SearchConfig) -> Model {
        self.config = config;
        self
    }

    /// Declares an integer variable with inclusive scaled bounds.
    pub fn declare_int(&mut self, var: VarId, lo: i64, hi: i64) {
        self.declared.insert(var, Dom::Int { lo, hi });
    }

    /// Declares an enum variable over the given symbols.
    pub fn declare_enum<S: AsRef<str>>(&mut self, var: VarId, values: impl IntoIterator<Item = S>) {
        let set = values
            .into_iter()
            .map(|s| self.syms.intern(s.as_ref()))
            .collect();
        self.declared.insert(var, Dom::Enum(set));
    }

    /// Whether `var` has a declared domain.
    pub fn is_declared(&self, var: &VarId) -> bool {
        self.declared.contains_key(var)
    }

    /// Solves a single formula.
    pub fn solve(&self, formula: &Formula) -> Outcome {
        self.solve_report(formula).outcome
    }

    /// Solves the conjunction of several formulas (the paper's "merge all
    /// constraints of the two rules" step, §VI-A2).
    pub fn solve_conjunction(&self, formulas: &[&Formula]) -> Outcome {
        let merged = Formula::and(formulas.iter().map(|f| (*f).clone()));
        self.solve(&merged)
    }

    /// Solves and returns search statistics.
    pub fn solve_report(&self, formula: &Formula) -> SolveReport {
        let mut syms = self.syms.clone();
        let lowered = lower(formula, &self.declared, &mut syms);
        let (result, stats) = search_solve(&lowered.formula, &lowered.domains, self.config);
        let outcome = match result {
            SearchResult::Unsat => Outcome::Unsat,
            SearchResult::Budget => Outcome::Unknown,
            SearchResult::Sat(store) => {
                let mut assignment = Assignment::new();
                for (idx, var) in lowered.vars.iter().enumerate() {
                    let value = match &store[idx] {
                        Dom::Int { lo, .. } => Value::Num(*lo),
                        Dom::Enum(set) => {
                            let sym = set.iter().next().copied();
                            match sym {
                                Some(s) => {
                                    let name = lowered.syms.name(s);
                                    if name == OTHER_SYM {
                                        // Prefer a descriptive placeholder.
                                        Value::Sym("<any other value>".to_string())
                                    } else {
                                        Value::Sym(name.to_string())
                                    }
                                }
                                None => Value::Null,
                            }
                        }
                    };
                    assignment.insert(var.clone(), value);
                }
                Outcome::Sat(assignment)
            }
        };
        SolveReport { outcome, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hg_rules::constraint::{CmpOp, Term};

    fn temp() -> VarId {
        VarId::env("temperature")
    }

    fn gt(n: i64) -> Formula {
        Formula::cmp(Term::var(temp()), CmpOp::Gt, Term::num(n))
    }

    fn lt(n: i64) -> Formula {
        Formula::cmp(Term::var(temp()), CmpOp::Lt, Term::num(n))
    }

    #[test]
    fn sat_with_witness_in_range() {
        let mut m = Model::new();
        m.declare_int(temp(), -4000, 15_000);
        let f = Formula::and([gt(3000), lt(3500)]);
        let Outcome::Sat(w) = m.solve(&f) else {
            panic!()
        };
        let Value::Num(v) = w[&temp()] else { panic!() };
        assert!(v > 3000 && v < 3500, "witness {v}");
    }

    #[test]
    fn unsat_conjunction() {
        let mut m = Model::new();
        m.declare_int(temp(), -4000, 15_000);
        assert_eq!(m.solve_conjunction(&[&gt(3000), &lt(2000)]), Outcome::Unsat);
    }

    #[test]
    fn domain_bounds_constrain() {
        let mut m = Model::new();
        m.declare_int(temp(), 0, 1000);
        assert_eq!(m.solve(&gt(2000)), Outcome::Unsat);
    }

    #[test]
    fn enum_declared_domain() {
        let mut m = Model::new();
        m.declare_enum(VarId::Mode, ["Home", "Away", "Night"]);
        let f = Formula::var_eq(VarId::Mode, Value::sym("Night"));
        let Outcome::Sat(w) = m.solve(&f) else {
            panic!()
        };
        assert_eq!(w[&VarId::Mode], Value::sym("Night"));
        // A mode outside the home's mode set is unsatisfiable.
        let g = Formula::var_eq(VarId::Mode, Value::sym("Vacation"));
        assert_eq!(m.solve(&g), Outcome::Unsat);
    }

    #[test]
    fn undeclared_enum_gets_other() {
        let m = Model::new();
        // x != "on" is satisfiable thanks to the implicit OTHER value.
        let x = VarId::env("x");
        let f = Formula::cmp(Term::var(x.clone()), CmpOp::Ne, Term::sym("on"));
        let Outcome::Sat(w) = m.solve(&f) else {
            panic!()
        };
        assert_ne!(w[&x], Value::sym("on"));
    }

    #[test]
    fn paper_rule1_rule2_overlap() {
        // Fig. 3: Rule 1 (t > 30, open window) and Rule 2 (weather == rainy,
        // close window) share the trigger "TV on". Overlap: t > 30 &&
        // rainy is satisfiable → Actuator Race confirmed.
        let mut m = Model::new();
        m.declare_int(temp(), -4000, 15_000);
        m.declare_enum(VarId::env("weather"), ["rainy", "sunny", "cloudy"]);
        let r1 = gt(3000);
        let r2 = Formula::var_eq(VarId::env("weather"), Value::sym("rainy"));
        let out = m.solve_conjunction(&[&r1, &r2]);
        assert!(out.is_sat());
        let w = out.witness().unwrap();
        assert_eq!(w[&VarId::env("weather")], Value::sym("rainy"));
    }

    #[test]
    fn report_has_stats() {
        let mut m = Model::new();
        m.declare_int(temp(), 0, 10_000);
        let rep = m.solve_report(&gt(500));
        assert!(rep.outcome.is_sat());
        assert!(rep.stats.propagations > 0);
        assert!(rep.stats.nodes > 0);
    }

    #[test]
    fn unknown_on_tiny_budget() {
        let mut m = Model::new().with_config(SearchConfig {
            max_nodes: 0,
            max_dnf: 1,
        });
        m.declare_int(temp(), 0, 10_000);
        assert_eq!(m.solve(&gt(500)), Outcome::Unknown);
    }

    #[test]
    fn var_vs_user_input() {
        // temperature > threshold where threshold is a user input with its
        // own domain: satisfiable; adding threshold >= 15000 and
        // temperature <= 0 makes it unsat.
        let thr = VarId::UserInput {
            app: "A".into(),
            name: "threshold".into(),
        };
        let mut m = Model::new();
        m.declare_int(temp(), -4000, 15_000);
        m.declare_int(thr.clone(), -4000, 15_000);
        let base = Formula::cmp(Term::var(temp()), CmpOp::Gt, Term::var(thr.clone()));
        assert!(m.solve(&base).is_sat());
        let pinned = Formula::and([
            base,
            Formula::cmp(Term::var(thr), CmpOp::Ge, Term::num(15_000)),
            Formula::cmp(Term::var(temp()), CmpOp::Le, Term::num(0)),
        ]);
        assert_eq!(m.solve(&pinned), Outcome::Unsat);
    }

    #[test]
    fn disjunctive_conditions() {
        let mut m = Model::new();
        m.declare_int(temp(), 0, 10_000);
        let f = Formula::or([lt(100), gt(9_900)]);
        assert!(m.solve(&f).is_sat());
        let g = Formula::and([Formula::or([lt(100), gt(9_900)]), gt(200), lt(9_000)]);
        assert_eq!(m.solve(&g), Outcome::Unsat);
    }
}
