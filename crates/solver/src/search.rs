//! Complete search over lowered formulas: DNF expansion, propagation,
//! entailment checking and branch-and-prune.

use crate::domain::Dom;
use crate::expr::{LAtom, LFormula, LTerm};
use crate::propagate::{eval_term, propagate_all, Propagation, Store};
use hg_rules::constraint::CmpOp;

/// Search limits.
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// Maximum number of search nodes before giving up with
    /// [`SearchResult::Budget`].
    pub max_nodes: u64,
    /// Maximum number of DNF branches to expand.
    pub max_dnf: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            max_nodes: 200_000,
            max_dnf: 4_096,
        }
    }
}

/// Counters exposed for the efficiency experiments (Fig. 9).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Search nodes visited.
    pub nodes: u64,
    /// Atom propagations executed.
    pub propagations: u64,
    /// DNF branches examined.
    pub dnf_branches: u64,
}

/// Outcome of the search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchResult {
    /// Satisfiable: a store in which every atom is entailed (any value
    /// selection from the returned domains is a witness).
    Sat(Store),
    /// No satisfying assignment exists.
    Unsat,
    /// The node budget was exhausted before a decision was reached.
    Budget,
}

/// Solves `formula` over initial `domains`.
pub fn solve(
    formula: &LFormula,
    domains: &Store,
    cfg: SearchConfig,
) -> (SearchResult, SearchStats) {
    let mut stats = SearchStats::default();
    let Some(branches) = dnf(formula, cfg.max_dnf) else {
        return (SearchResult::Budget, stats);
    };
    if branches.is_empty() {
        return (SearchResult::Unsat, stats);
    }
    for conj in &branches {
        stats.dnf_branches += 1;
        let mut store = domains.clone();
        match dfs(conj, &mut store, cfg.max_nodes, &mut stats) {
            Some(true) => return (SearchResult::Sat(store), stats),
            Some(false) => continue,
            None => return (SearchResult::Budget, stats),
        }
    }
    (SearchResult::Unsat, stats)
}

/// Expands to DNF: a list of conjunctions of atoms. `None` when the
/// expansion exceeds `cap`. `Some(vec![])` means the formula is `False`;
/// a branch of zero atoms means `True`.
fn dnf(f: &LFormula, cap: usize) -> Option<Vec<Vec<LAtom>>> {
    match f {
        LFormula::True => Some(vec![Vec::new()]),
        LFormula::False => Some(Vec::new()),
        LFormula::Atom(a) => Some(vec![vec![a.clone()]]),
        LFormula::And(parts) => {
            let mut acc: Vec<Vec<LAtom>> = vec![Vec::new()];
            for p in parts {
                let branches = dnf(p, cap)?;
                let mut next = Vec::new();
                for base in &acc {
                    for br in &branches {
                        let mut merged = base.clone();
                        merged.extend(br.iter().cloned());
                        next.push(merged);
                        if next.len() > cap {
                            return None;
                        }
                    }
                }
                acc = next;
                if acc.is_empty() {
                    return Some(acc); // an And part was False
                }
            }
            Some(acc)
        }
        LFormula::Or(parts) => {
            let mut acc = Vec::new();
            for p in parts {
                acc.extend(dnf(p, cap)?);
                if acc.len() > cap {
                    return None;
                }
            }
            Some(acc)
        }
    }
}

fn dfs(atoms: &[LAtom], store: &mut Store, budget: u64, stats: &mut SearchStats) -> Option<bool> {
    if stats.nodes >= budget {
        return None;
    }
    stats.nodes += 1;
    match propagate_all(atoms, store, &mut stats.propagations) {
        Propagation::Conflict => return Some(false),
        Propagation::Consistent { .. } => {}
    }
    // Entailment check.
    let mut undecided: Option<&LAtom> = None;
    for a in atoms {
        match atom_entailed(a, store) {
            Some(true) => {}
            Some(false) => return Some(false),
            None => {
                if undecided.is_none() {
                    undecided = Some(a);
                }
            }
        }
    }
    let Some(pivot) = undecided else {
        return Some(true); // all atoms entailed; domains non-empty
    };
    // Branch on a variable from the first undecided atom.
    let var = pick_var(pivot, store).expect("undecided atom must contain an unfixed variable");
    match store[var].clone() {
        Dom::Enum(set) => {
            for sym in set {
                let mut child = store.clone();
                child[var] = Dom::Enum([sym].into_iter().collect());
                match dfs(atoms, &mut child, budget, stats) {
                    Some(true) => {
                        *store = child;
                        return Some(true);
                    }
                    Some(false) => continue,
                    None => return None,
                }
            }
            Some(false)
        }
        Dom::Int { lo, hi } => {
            debug_assert!(lo < hi);
            let mid = lo + (hi - lo) / 2;
            for (nlo, nhi) in [(lo, mid), (mid + 1, hi)] {
                let mut child = store.clone();
                child[var] = Dom::Int { lo: nlo, hi: nhi };
                match dfs(atoms, &mut child, budget, stats) {
                    Some(true) => {
                        *store = child;
                        return Some(true);
                    }
                    Some(false) => continue,
                    None => return None,
                }
            }
            Some(false)
        }
    }
}

/// Whether `atom` holds for *every* assignment within the current domains
/// (`Some(true)`), for none (`Some(false)`), or is undecided (`None`).
fn atom_entailed(atom: &LAtom, store: &Store) -> Option<bool> {
    if let Some(res) = enum_entailed(atom, store) {
        return res;
    }
    let l = eval_term(&atom.lhs, store);
    let r = eval_term(&atom.rhs, store);

    match atom.op {
        CmpOp::Lt => {
            if l.hi < r.lo {
                Some(true)
            } else if l.lo >= r.hi {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Le => {
            if l.hi <= r.lo {
                Some(true)
            } else if l.lo > r.hi {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Gt => {
            if l.lo > r.hi {
                Some(true)
            } else if l.hi <= r.lo {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Ge => {
            if l.lo >= r.hi {
                Some(true)
            } else if l.hi < r.lo {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Eq => {
            if l.lo == l.hi && r.lo == r.hi {
                Some(l.lo == r.lo)
            } else if l.hi < r.lo || r.hi < l.lo {
                Some(false)
            } else if is_same_var(atom) {
                Some(true)
            } else {
                None
            }
        }
        CmpOp::Ne => {
            if l.hi < r.lo || r.hi < l.lo {
                Some(true)
            } else if l.lo == l.hi && r.lo == r.hi {
                Some(l.lo != r.lo)
            } else if is_same_var(atom) {
                Some(false)
            } else {
                None
            }
        }
    }
}

fn is_same_var(atom: &LAtom) -> bool {
    matches!(
        (&atom.lhs, &atom.rhs),
        (LTerm::Var(a), LTerm::Var(b)) if a == b
    )
}

/// Entailment for enum-typed atoms; outer `Option` is "was this an enum
/// atom at all".
#[allow(clippy::option_option)]
fn enum_entailed(atom: &LAtom, store: &Store) -> Option<Option<bool>> {
    let sym_of = |t: &LTerm| -> Option<crate::domain::SymId> {
        match t {
            LTerm::Sym(s) => Some(*s),
            _ => None,
        }
    };
    let enum_dom = |t: &LTerm| -> Option<std::collections::BTreeSet<crate::domain::SymId>> {
        match t {
            LTerm::Var(v) => store[*v].syms().cloned(),
            LTerm::Sym(s) => Some([*s].into_iter().collect()),
            _ => None,
        }
    };
    let is_enum_side = |t: &LTerm| {
        sym_of(t).is_some() || matches!(t, LTerm::Var(v) if matches!(store[*v], Dom::Enum(_)))
    };
    if !is_enum_side(&atom.lhs) && !is_enum_side(&atom.rhs) {
        return None;
    }
    let (Some(da), Some(db)) = (enum_dom(&atom.lhs), enum_dom(&atom.rhs)) else {
        // Type-confused atom (enum vs numeric): Eq false, Ne true.
        return Some(match atom.op {
            CmpOp::Eq => Some(false),
            CmpOp::Ne => Some(true),
            _ => Some(false),
        });
    };
    let disjoint = da.intersection(&db).next().is_none();
    let both_single_equal = da.len() == 1 && da == db;
    Some(match atom.op {
        CmpOp::Eq => {
            if both_single_equal {
                Some(true)
            } else if disjoint {
                Some(false)
            } else if is_same_var(atom) {
                Some(true)
            } else {
                None
            }
        }
        CmpOp::Ne => {
            if disjoint {
                Some(true)
            } else if both_single_equal || is_same_var(atom) {
                Some(false)
            } else {
                None
            }
        }
        _ => Some(false),
    })
}

/// Picks an unfixed variable occurring in `atom`, preferring the smallest
/// domain.
fn pick_var(atom: &LAtom, store: &Store) -> Option<usize> {
    let mut best: Option<(usize, u64)> = None;
    let mut visit = |t: &LTerm| {
        collect_unfixed(t, store, &mut best);
    };
    visit(&atom.lhs);
    visit(&atom.rhs);
    best.map(|(v, _)| v)
}

fn collect_unfixed(t: &LTerm, store: &Store, best: &mut Option<(usize, u64)>) {
    match t {
        LTerm::Var(v) => {
            let size = store[*v].size();
            if size > 1 {
                match best {
                    Some((_, s)) if *s <= size => {}
                    _ => *best = Some((*v, size)),
                }
            }
        }
        LTerm::Add(a, b) | LTerm::Sub(a, b) | LTerm::Mul(a, b) | LTerm::Div(a, b) => {
            collect_unfixed(a, store, best);
            collect_unfixed(b, store, best);
        }
        LTerm::Neg(a) => collect_unfixed(a, store, best),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(lo: i64, hi: i64) -> Dom {
        Dom::Int { lo, hi }
    }

    fn atom(lhs: LTerm, op: CmpOp, rhs: LTerm) -> LFormula {
        LFormula::Atom(LAtom { lhs, op, rhs })
    }

    #[test]
    fn sat_simple() {
        let f = atom(LTerm::Var(0), CmpOp::Gt, LTerm::Num(5));
        let (res, _) = solve(&f, &vec![int(0, 10)], SearchConfig::default());
        assert!(matches!(res, SearchResult::Sat(_)));
    }

    #[test]
    fn unsat_simple() {
        let f = atom(LTerm::Var(0), CmpOp::Gt, LTerm::Num(50));
        let (res, _) = solve(&f, &vec![int(0, 10)], SearchConfig::default());
        assert_eq!(res, SearchResult::Unsat);
    }

    #[test]
    fn overlap_of_two_ranges() {
        // x > 30 && x < 35 over [0,100]: satisfiable.
        let f = LFormula::And(vec![
            atom(LTerm::Var(0), CmpOp::Gt, LTerm::Num(30)),
            atom(LTerm::Var(0), CmpOp::Lt, LTerm::Num(35)),
        ]);
        let (res, _) = solve(&f, &vec![int(0, 100)], SearchConfig::default());
        let SearchResult::Sat(store) = res else {
            panic!("{res:?}")
        };
        let (lo, hi) = store[0].bounds().unwrap();
        assert!(lo >= 31 && hi <= 34);
    }

    #[test]
    fn contradictory_ranges_unsat() {
        let f = LFormula::And(vec![
            atom(LTerm::Var(0), CmpOp::Gt, LTerm::Num(50)),
            atom(LTerm::Var(0), CmpOp::Lt, LTerm::Num(40)),
        ]);
        let (res, _) = solve(&f, &vec![int(0, 100)], SearchConfig::default());
        assert_eq!(res, SearchResult::Unsat);
    }

    #[test]
    fn disjunction_explores_branches() {
        let f = LFormula::Or(vec![
            atom(LTerm::Var(0), CmpOp::Gt, LTerm::Num(500)), // unsat in [0,100]
            atom(LTerm::Var(0), CmpOp::Eq, LTerm::Num(7)),
        ]);
        let (res, stats) = solve(&f, &vec![int(0, 100)], SearchConfig::default());
        assert!(matches!(res, SearchResult::Sat(_)));
        assert!(stats.dnf_branches >= 2);
    }

    #[test]
    fn enum_sat_and_unsat() {
        let dom = vec![Dom::Enum([0, 1].into_iter().collect())];
        let sat = atom(LTerm::Var(0), CmpOp::Eq, LTerm::Sym(0));
        let (r1, _) = solve(&sat, &dom, SearchConfig::default());
        assert!(matches!(r1, SearchResult::Sat(_)));
        let unsat = LFormula::And(vec![
            atom(LTerm::Var(0), CmpOp::Eq, LTerm::Sym(0)),
            atom(LTerm::Var(0), CmpOp::Eq, LTerm::Sym(1)),
        ]);
        let (r2, _) = solve(&unsat, &dom, SearchConfig::default());
        assert_eq!(r2, SearchResult::Unsat);
    }

    #[test]
    fn ne_requires_branching() {
        // x != 5 && x >= 5 && x <= 6 → x = 6.
        let f = LFormula::And(vec![
            atom(LTerm::Var(0), CmpOp::Ne, LTerm::Num(5)),
            atom(LTerm::Var(0), CmpOp::Ge, LTerm::Num(5)),
            atom(LTerm::Var(0), CmpOp::Le, LTerm::Num(6)),
        ]);
        let (res, _) = solve(&f, &vec![int(0, 100)], SearchConfig::default());
        let SearchResult::Sat(store) = res else {
            panic!("{res:?}")
        };
        assert_eq!(store[0].bounds(), Some((6, 6)));
    }

    #[test]
    fn ne_unsat_when_pinned() {
        let f = LFormula::And(vec![
            atom(LTerm::Var(0), CmpOp::Ne, LTerm::Num(5)),
            atom(LTerm::Var(0), CmpOp::Eq, LTerm::Num(5)),
        ]);
        let (res, _) = solve(&f, &vec![int(0, 100)], SearchConfig::default());
        assert_eq!(res, SearchResult::Unsat);
    }

    #[test]
    fn var_to_var_equality_chain() {
        // x == y && y == z && z == 9 → all 9.
        let f = LFormula::And(vec![
            atom(LTerm::Var(0), CmpOp::Eq, LTerm::Var(1)),
            atom(LTerm::Var(1), CmpOp::Eq, LTerm::Var(2)),
            atom(LTerm::Var(2), CmpOp::Eq, LTerm::Num(9)),
        ]);
        let (res, _) = solve(
            &f,
            &vec![int(0, 100), int(0, 100), int(0, 100)],
            SearchConfig::default(),
        );
        let SearchResult::Sat(store) = res else {
            panic!("{res:?}")
        };
        for d in &store {
            assert_eq!(d.bounds(), Some((9, 9)));
        }
    }

    #[test]
    fn same_var_trivia() {
        // x == x entailed, x != x unsat.
        let dom = vec![int(0, 100)];
        let (r1, _) = solve(
            &atom(LTerm::Var(0), CmpOp::Eq, LTerm::Var(0)),
            &dom,
            SearchConfig::default(),
        );
        assert!(matches!(r1, SearchResult::Sat(_)));
        let (r2, _) = solve(
            &atom(LTerm::Var(0), CmpOp::Ne, LTerm::Var(0)),
            &dom,
            SearchConfig::default(),
        );
        assert_eq!(r2, SearchResult::Unsat);
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        // A pathological chain with a tiny budget.
        let f = LFormula::And(vec![
            atom(LTerm::Var(0), CmpOp::Ne, LTerm::Var(1)),
            atom(LTerm::Var(1), CmpOp::Ne, LTerm::Var(2)),
        ]);
        let doms = vec![int(0, 1_000_000), int(0, 1_000_000), int(0, 1_000_000)];
        let (res, _) = solve(
            &f,
            &doms,
            SearchConfig {
                max_nodes: 1,
                max_dnf: 16,
            },
        );
        // With one node we can at best propagate once; Ne over huge domains
        // stays undecided → budget.
        assert_eq!(res, SearchResult::Budget);
    }

    #[test]
    fn true_and_false_formulas() {
        let (r1, _) = solve(&LFormula::True, &vec![], SearchConfig::default());
        assert!(matches!(r1, SearchResult::Sat(_)));
        let (r2, _) = solve(&LFormula::False, &vec![], SearchConfig::default());
        assert_eq!(r2, SearchResult::Unsat);
    }
}
