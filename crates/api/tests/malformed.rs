//! The malformed-request corpus: every entry must come back as a typed
//! 4xx/5xx JSON error — never a panic, never a hang, never a connection
//! left dangling past the server's I/O timeout.

mod common;

use common::{parse_reply, send, send_raw};
use hg_api::{ApiServer, ServerConfig};
use hg_rules::json::Json;
use hg_service::{Fleet, RuleStore};
use std::sync::Arc;
use std::time::Duration;

fn server() -> ApiServer {
    let fleet = Arc::new(Fleet::builder(RuleStore::shared()).shards(2).build());
    ApiServer::start(
        fleet,
        ServerConfig {
            io_timeout: Duration::from_millis(500),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback")
}

#[test]
fn malformed_request_corpus_yields_typed_errors() {
    let server = server();
    let addr = server.addr();
    let corpus: Vec<(&str, Vec<u8>, u16)> = vec![
        ("empty request line", b"\r\n\r\n".to_vec(), 400),
        ("garbage request line", b"ONE TWO\r\n\r\n".to_vec(), 400),
        (
            "unknown method",
            b"BREW /tea HTTP/1.1\r\n\r\n".to_vec(),
            405,
        ),
        ("bad version", b"GET / HTTP/9.9\r\n\r\n".to_vec(), 505),
        (
            "non-origin target",
            b"GET example.com HTTP/1.1\r\n\r\n".to_vec(),
            400,
        ),
        (
            "huge request line",
            format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(8192)).into_bytes(),
            414,
        ),
        (
            "huge header",
            format!("GET /stats HTTP/1.1\r\nx-pad: {}\r\n\r\n", "y".repeat(8192)).into_bytes(),
            431,
        ),
        (
            "too many headers",
            {
                let mut req = String::from("GET /stats HTTP/1.1\r\n");
                for i in 0..100 {
                    req.push_str(&format!("x-h{i}: v\r\n"));
                }
                req.push_str("\r\n");
                req.into_bytes()
            },
            431,
        ),
        (
            "header without colon",
            b"GET /stats HTTP/1.1\r\nnocolonhere\r\n\r\n".to_vec(),
            400,
        ),
        (
            "bad content-length",
            b"POST /sessions HTTP/1.1\r\ncontent-length: banana\r\n\r\n".to_vec(),
            400,
        ),
        (
            "negative content-length",
            b"POST /sessions HTTP/1.1\r\ncontent-length: -5\r\n\r\n".to_vec(),
            400,
        ),
        (
            "oversized body",
            b"POST /sessions HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n".to_vec(),
            413,
        ),
        (
            "chunked request body",
            b"POST /sessions HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n0\r\n\r\n".to_vec(),
            501,
        ),
        (
            "truncated body",
            b"POST /restore HTTP/1.1\r\ncontent-length: 50\r\n\r\nshort".to_vec(),
            408,
        ),
        ("truncated request line", b"GET /sta".to_vec(), 400),
    ];
    for (label, raw, expected) in corpus {
        let response = send_raw(addr, &raw);
        assert!(
            !response.is_empty(),
            "{label}: server must answer before closing"
        );
        let reply = parse_reply(&response);
        assert_eq!(reply.status, expected, "{label}");
        let json = reply.json();
        assert!(
            json.get("error").is_some(),
            "{label}: error body must be structured JSON"
        );
    }
    server.shutdown();
}

#[test]
fn garbage_json_and_missing_fields_are_400s_not_panics() {
    let server = server();
    let addr = server.addr();
    let token = send(addr, "POST", "/sessions", None, None)
        .json()
        .get("token")
        .and_then(Json::as_str)
        .expect("token")
        .to_string();

    // Create a home so per-home routes get past ownership.
    let home = send(addr, "POST", "/homes", Some(&token), None)
        .json()
        .get("home")
        .and_then(Json::as_num)
        .expect("home id");

    let bad_bodies: Vec<(&str, Vec<u8>)> = vec![
        ("not json at all", b"}{ nonsense".to_vec()),
        ("json array not object", b"[1,2,3]".to_vec()),
        ("empty body", Vec::new()),
        ("non-utf8", vec![0xff, 0xfe, 0x00]),
        ("missing fields", b"{\"unrelated\": true}".to_vec()),
    ];
    for (label, body) in bad_bodies {
        let mut raw = format!(
            "POST /homes/{home}/install HTTP/1.1\r\nconnection: close\r\nx-session: {token}\r\n"
        );
        if !body.is_empty() {
            raw.push_str(&format!("content-length: {}\r\n", body.len()));
        }
        raw.push_str("\r\n");
        let mut bytes = raw.into_bytes();
        bytes.extend_from_slice(&body);
        let reply = parse_reply(&send_raw(addr, &bytes));
        assert_eq!(reply.status, 400, "{label}");
        assert!(reply.json().get("error").is_some(), "{label}");
    }

    // Unknown routes are typed 404s.
    assert_eq!(send(addr, "GET", "/nope", None, None).status, 404);
    assert_eq!(
        send(
            addr,
            "POST",
            "/homes/not-a-number/install",
            Some(&token),
            None
        )
        .status,
        404
    );
    // Bad snapshot documents are 400s.
    let bad_snap = send(
        addr,
        "POST",
        "/restore",
        Some(&token),
        Some(&Json::obj([("v", Json::Num(999))])),
    );
    assert_eq!(bad_snap.status, 400);

    // After the whole corpus, the server still serves normally.
    let stats = send(addr, "GET", "/stats", None, None);
    assert_eq!(stats.status, 200);
    assert_eq!(stats.json().get("homes").and_then(Json::as_num), Some(1));
    server.shutdown();
}

#[test]
fn unauthenticated_and_foreign_access_are_refused() {
    let server = server();
    let addr = server.addr();

    // No token at all.
    assert_eq!(send(addr, "POST", "/homes", None, None).status, 401);
    // A forged token.
    assert_eq!(
        send(
            addr,
            "POST",
            "/homes",
            Some("feedfacefeedfacefeedfacefeedface"),
            None
        )
        .status,
        401
    );

    // A home owned by session A is untouchable by session B.
    let token_a = send(addr, "POST", "/sessions", None, None)
        .json()
        .get("token")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let token_b = send(addr, "POST", "/sessions", None, None)
        .json()
        .get("token")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let home = send(addr, "POST", "/homes", Some(&token_a), None)
        .json()
        .get("home")
        .and_then(Json::as_num)
        .unwrap();
    let foreign = send(addr, "GET", &format!("/homes/{home}"), Some(&token_b), None);
    assert_eq!(foreign.status, 403);
    let own = send(addr, "GET", &format!("/homes/{home}"), Some(&token_a), None);
    assert_eq!(own.status, 200);
    server.shutdown();
}
