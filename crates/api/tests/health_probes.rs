//! Loopback coverage for the health surface: `GET /health` (liveness —
//! always 200, the body names what degraded), `GET /ready` (readiness —
//! 503 drops the instance from a load balancer), and
//! `POST /journal/heal` (operator re-arms a quarantined journal). The
//! failure injections are the real ones: a panicking home handler
//! poisons its shard; a scripted [`FaultBackend`] permanent error
//! quarantines the journal.

mod common;

use common::{app_body, send, ON_APP};
use hg_api::{ApiServer, ServerConfig};
use hg_rules::json::Json;
use hg_service::{
    DegradedPolicy, FaultBackend, FaultKind, FaultPlan, Fleet, HomeId, Journal, JournalConfig,
    MemBackend, RuleStore,
};
use std::sync::Arc;

fn session(server: &ApiServer) -> String {
    send(server.addr(), "POST", "/sessions", None, None)
        .json()
        .get("token")
        .and_then(Json::as_str)
        .expect("session token")
        .to_string()
}

fn create_home(server: &ApiServer, token: &str) -> HomeId {
    let raw = send(server.addr(), "POST", "/homes", Some(token), None)
        .json()
        .get("home")
        .and_then(Json::as_num)
        .expect("home id");
    HomeId::new(raw as u64)
}

fn probe(server: &ApiServer, path: &str) -> (u16, Json) {
    let reply = send(server.addr(), "GET", path, None, None);
    let json = reply.json();
    (reply.status, json)
}

#[test]
fn poisoned_shard_fails_readiness_but_siblings_keep_serving() {
    let fleet = Arc::new(Fleet::builder(RuleStore::shared()).shards(4).build());
    let server = ApiServer::start(fleet.clone(), ServerConfig::default()).expect("bind");
    let token = session(&server);

    // A fresh server is alive and ready; no journal is attached.
    let (status, body) = probe(&server, "/health");
    assert_eq!(status, 200);
    assert_eq!(body.get("status"), Some(&Json::str("ok")));
    assert_eq!(
        body.get("journal").and_then(|j| j.get("enabled")),
        Some(&Json::Bool(false))
    );
    assert_eq!(probe(&server, "/ready").0, 200);

    // Two session-owned homes on different shards.
    let victim = create_home(&server, &token);
    let sibling = (0..4)
        .map(|_| create_home(&server, &token))
        .find(|id| fleet.shard_of(*id) != fleet.shard_of(victim))
        .expect("a home on another shard");

    // A panicking home handler poisons exactly the victim's shard.
    let doomed = fleet.clone();
    std::thread::spawn(move || {
        let _ = doomed.with_home_mut(victim, |_| panic!("handler dies"));
    })
    .join()
    .unwrap_err();

    // Liveness stays 200 but reports the poison; readiness drops out.
    let (status, body) = probe(&server, "/health");
    assert_eq!(status, 200);
    assert_eq!(body.get("status"), Some(&Json::str("degraded")));
    assert_eq!(body.get("poisoned_shards"), Some(&Json::Num(1)));
    let (status, body) = probe(&server, "/ready");
    assert_eq!(status, 503);
    assert_eq!(body.get("status"), Some(&Json::str("degraded")));

    // The poisoned home's requests answer a typed 503; the sibling shard
    // keeps serving installs untouched.
    let dead = send(
        server.addr(),
        "POST",
        &format!("/homes/{}/install", victim.raw()),
        Some(&token),
        Some(&app_body(ON_APP, "OnApp")),
    );
    assert_eq!(dead.status, 503);
    assert_eq!(
        dead.json().get("error").and_then(|e| e.get("code")),
        Some(&Json::str("poisoned"))
    );
    let alive = send(
        server.addr(),
        "POST",
        &format!("/homes/{}/install", sibling.raw()),
        Some(&token),
        Some(&app_body(ON_APP, "OnApp")),
    );
    assert_eq!(alive.status, 200);
    assert_eq!(alive.json().get("installed"), Some(&Json::Bool(true)));

    server.shutdown();
}

#[test]
fn journal_quarantine_drops_readiness_until_healed_over_http() {
    let mem = MemBackend::new();
    let fault = FaultBackend::new(mem.clone());
    let journal = Arc::new(
        Journal::open_with(
            Box::new(fault.clone()),
            JournalConfig {
                max_io_attempts: 2,
                backoff_micros: 0,
                degraded: DegradedPolicy::RefuseWrites,
                ..JournalConfig::default()
            },
        )
        .expect("open journal"),
    );
    let fleet = Arc::new(Fleet::builder(RuleStore::shared()).shards(2).build());
    let server =
        ApiServer::start_journaled(fleet, ServerConfig::default(), journal.clone()).expect("bind");
    let token = session(&server);
    create_home(&server, &token);

    let (status, body) = probe(&server, "/health");
    assert_eq!(status, 200);
    assert_eq!(
        body.get("journal").and_then(|j| j.get("state")),
        Some(&Json::str("active"))
    );
    assert_eq!(probe(&server, "/ready").0, 200);

    // The next backend write fails permanently: the in-flight mutation
    // reports its durability lapse (500) and the journal quarantines.
    fault.arm(FaultPlan::new().at(fault.ops(), FaultKind::Permanent));
    let lapsed = send(server.addr(), "POST", "/homes", Some(&token), None);
    assert_eq!(lapsed.status, 500);
    assert_eq!(
        lapsed.json().get("error").and_then(|e| e.get("code")),
        Some(&Json::str("journal_failed"))
    );
    assert!(journal.is_quarantined());

    // Liveness 200 + quarantine detail; readiness 503; writes refuse with
    // a retryable 503 before touching state.
    let (status, body) = probe(&server, "/health");
    assert_eq!(status, 200);
    let journal_body = body.get("journal").expect("journal body");
    assert_eq!(journal_body.get("state"), Some(&Json::str("quarantined")));
    assert!(journal_body.get("durable_offset").is_some());
    assert_eq!(probe(&server, "/ready").0, 503);
    let refused = send(server.addr(), "POST", "/homes", Some(&token), None);
    assert_eq!(refused.status, 503);
    assert_eq!(
        refused.json().get("error").and_then(|e| e.get("code")),
        Some(&Json::str("degraded"))
    );

    // Healing needs a session; unauthenticated probes cannot re-arm.
    assert_eq!(
        send(server.addr(), "POST", "/journal/heal", None, None).status,
        401
    );

    // Operator replaces the disk, heals over HTTP: readiness returns and
    // writes journal again.
    fault.disarm();
    let healed = send(server.addr(), "POST", "/journal/heal", Some(&token), None);
    assert_eq!(healed.status, 200);
    assert_eq!(healed.json().get("healed"), Some(&Json::Bool(true)));
    assert!(!journal.is_quarantined());
    assert_eq!(probe(&server, "/ready").0, 200);
    assert_eq!(
        probe(&server, "/health").1.get("status"),
        Some(&Json::str("ok"))
    );
    let offset = journal.next_offset();
    assert_eq!(
        send(server.addr(), "POST", "/homes", Some(&token), None).status,
        201
    );
    assert_eq!(journal.next_offset(), offset + 1, "append flows post-heal");

    server.shutdown();
}
