//! Loopback end-to-end: the HTTP surface must be **behavior-identical**
//! to driving the [`Fleet`] directly — same reports, same typed errors,
//! same rollout merges — plus the network-only semantics: sessions,
//! TTL expiry, queue backpressure (429 + Retry-After), snapshot/restore.

mod common;

use common::{app_body, send, OFF_APP, ON_APP};
use hg_api::{ApiServer, ExecConfig, ServerConfig, TelemetryEvent};
use hg_rules::json::Json;
use hg_service::{Fleet, HomeId, RuleStore};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn start(fleet: Arc<Fleet>, exec: ExecConfig, ttl: Duration, reap: Duration) -> ApiServer {
    ApiServer::start(
        fleet,
        ServerConfig {
            exec,
            session_ttl: ttl,
            reap_interval: reap,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback")
}

fn session(server: &ApiServer) -> String {
    send(server.addr(), "POST", "/sessions", None, None)
        .json()
        .get("token")
        .and_then(Json::as_str)
        .expect("session token")
        .to_string()
}

fn create_home(server: &ApiServer, token: &str) -> i64 {
    send(server.addr(), "POST", "/homes", Some(token), None)
        .json()
        .get("home")
        .and_then(Json::as_num)
        .expect("home id")
}

#[test]
fn http_lifecycle_is_identical_to_direct_fleet_calls() {
    let fleet = Arc::new(Fleet::builder(RuleStore::shared()).shards(4).build());
    let server = start(
        fleet,
        ExecConfig::default(),
        Duration::from_secs(60),
        Duration::from_secs(60),
    );
    let addr = server.addr();
    let token = session(&server);
    let home = create_home(&server, &token);

    // Reference: the same lifecycle against a directly-driven fleet.
    let direct = Fleet::builder(RuleStore::shared()).shards(4).build();
    let direct_home = direct.create_home().unwrap();

    // Clean install.
    let via_http = send(
        addr,
        "POST",
        &format!("/homes/{home}/install"),
        Some(&token),
        Some(&app_body(ON_APP, "OnApp")),
    );
    assert_eq!(via_http.status, 200);
    let direct_report = direct
        .install_app(direct_home, ON_APP, "OnApp", None)
        .unwrap();
    let http_json = via_http.json();
    assert_eq!(
        http_json.get("installed"),
        Some(&Json::Bool(direct_report.installed))
    );
    assert_eq!(
        http_json
            .get("threats")
            .and_then(Json::as_arr)
            .unwrap()
            .len(),
        direct_report.threats.len()
    );

    // Dirty install: same threat verdict, pending on both paths.
    let dirty_http = send(
        addr,
        "POST",
        &format!("/homes/{home}/install"),
        Some(&token),
        Some(&app_body(OFF_APP, "OffApp")),
    );
    let dirty_direct = direct
        .install_app(direct_home, OFF_APP, "OffApp", None)
        .unwrap();
    assert!(!dirty_direct.installed);
    let dirty_json = dirty_http.json();
    assert_eq!(dirty_json.get("installed"), Some(&Json::Bool(false)));
    assert_eq!(dirty_json.get("pending"), Some(&Json::Bool(true)));
    let http_threats = dirty_json.get("threats").and_then(Json::as_arr).unwrap();
    assert_eq!(http_threats.len(), dirty_direct.threats.len());
    assert_eq!(
        http_threats[0].get("kind").and_then(Json::as_str),
        Some(dirty_direct.threats[0].kind.acronym())
    );

    // Confirm via the stashed report; direct path confirms its own.
    let confirmed = send(
        addr,
        "POST",
        &format!("/homes/{home}/confirm"),
        Some(&token),
        Some(&Json::obj([("app", Json::str("OffApp"))])),
    );
    assert_eq!(confirmed.status, 200);
    assert_eq!(confirmed.json().get("installed"), Some(&Json::Bool(true)));
    direct.confirm_install(direct_home, dirty_direct).unwrap();

    // Confirming twice is a typed 409 (nothing pending anymore).
    let again = send(
        addr,
        "POST",
        &format!("/homes/{home}/confirm"),
        Some(&token),
        Some(&Json::obj([("app", Json::str("OffApp"))])),
    );
    assert_eq!(again.status, 409);

    // Both paths now agree on installed apps.
    let apps_http = send(addr, "GET", &format!("/homes/{home}"), Some(&token), None);
    let apps: Vec<String> = apps_http
        .json()
        .get("apps")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|j| j.as_str().unwrap().to_string())
        .collect();
    assert_eq!(
        apps,
        direct
            .with_home(direct_home, |h| h.installed_apps())
            .unwrap()
    );

    // Uninstall agrees too.
    let un_http = send(
        addr,
        "POST",
        &format!("/homes/{home}/uninstall"),
        Some(&token),
        Some(&Json::obj([("app", Json::str("OffApp"))])),
    );
    let un_direct = direct.uninstall_app(direct_home, "OffApp").unwrap();
    assert_eq!(un_http.status, 200);
    assert_eq!(
        un_http.json().get("retired_threats").and_then(Json::as_num),
        Some(un_direct.retired_threats as i64)
    );

    // Typed errors ride through: uninstalling a ghost app is 404 on the
    // wire, UnknownApp directly.
    let ghost = send(
        addr,
        "POST",
        &format!("/homes/{home}/uninstall"),
        Some(&token),
        Some(&Json::obj([("app", Json::str("Ghost"))])),
    );
    assert_eq!(ghost.status, 404);
    assert!(direct.uninstall_app(direct_home, "Ghost").is_err());

    // Deleting the home removes it from the registry.
    let deleted = send(
        addr,
        "DELETE",
        &format!("/homes/{home}"),
        Some(&token),
        None,
    );
    assert_eq!(deleted.status, 204);
    let gone = send(addr, "GET", &format!("/homes/{home}"), Some(&token), None);
    assert_eq!(gone.status, 403, "deleted home is no longer owned");
    server.shutdown();
}

#[test]
fn bulk_install_and_streamed_rollout_match_direct_sweeps() {
    let fleet = Arc::new(Fleet::builder(RuleStore::shared()).shards(4).build());
    let server = start(
        fleet.clone(),
        ExecConfig::default(),
        Duration::from_secs(60),
        Duration::from_secs(60),
    );
    let addr = server.addr();
    let token = session(&server);
    let homes: Vec<i64> = (0..12).map(|_| create_home(&server, &token)).collect();

    // Reference fleet, identically populated via direct calls.
    let direct = Fleet::builder(RuleStore::shared()).shards(4).build();
    let direct_ids: Vec<HomeId> = (0..12).map(|_| direct.create_home().unwrap()).collect();

    // Bulk install over HTTP ≡ direct install_many.
    let bulk = send(
        addr,
        "POST",
        "/fleet/install_many",
        Some(&token),
        Some(&Json::obj([
            (
                "homes",
                Json::Arr(homes.iter().map(|&h| Json::Num(h)).collect()),
            ),
            ("source", Json::str(ON_APP)),
            ("name", Json::str("OnApp")),
        ])),
    );
    assert_eq!(bulk.status, 200);
    let outcomes = bulk
        .json()
        .get("outcomes")
        .and_then(Json::as_arr)
        .unwrap()
        .to_vec();
    let direct_outcomes = direct
        .install_many(&direct_ids, ON_APP, "OnApp", None)
        .unwrap();
    assert_eq!(outcomes.len(), direct_outcomes.len());
    for (http, (_, direct_result)) in outcomes.iter().zip(&direct_outcomes) {
        assert_eq!(
            http.get("report").and_then(|r| r.get("installed")),
            Some(&Json::Bool(direct_result.as_ref().unwrap().installed))
        );
    }

    // Give one home a conflict so the rollout has a pending entry.
    fleet
        .install_app_forced(HomeId::new(homes[2] as u64), OFF_APP, "OffApp", None)
        .unwrap();
    direct
        .install_app_forced(direct_ids[2], OFF_APP, "OffApp", None)
        .unwrap();

    // Streamed rollout: one NDJSON line per shard, then the merged
    // summary — which must equal the direct synchronous rollout.
    let v2 = format!("{ON_APP}// v2\n");
    let streamed = send(
        addr,
        "POST",
        "/fleet/upgrades",
        Some(&token),
        Some(&app_body(&v2, "OnApp")),
    );
    assert_eq!(streamed.status, 200);
    assert_eq!(
        streamed
            .header("transfer-encoding")
            .map(str::to_ascii_lowercase),
        Some("chunked".to_string())
    );
    let lines = streamed.ndjson_lines();
    let (parts, summary): (Vec<&Json>, Vec<&Json>) =
        lines.iter().partition(|l| l.get("shard").is_some());
    assert_eq!(parts.len(), 4, "one progress line per shard");
    assert_eq!(summary.len(), 1, "exactly one merged summary line");
    let mut seen: Vec<i64> = parts
        .iter()
        .map(|p| p.get("shard").and_then(Json::as_num).unwrap())
        .collect();
    seen.sort_unstable();
    assert_eq!(seen, vec![0, 1, 2, 3]);

    let direct_rollout = direct.propagate_upgrade(&v2, "OnApp").unwrap();
    let merged = summary[0].get("rollout").expect("merged rollout");
    let upgraded: Vec<i64> = merged
        .get("upgraded")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|j| j.as_num().unwrap())
        .collect();
    assert_eq!(
        upgraded,
        direct_rollout
            .upgraded
            .iter()
            .map(|id| id.raw() as i64)
            .collect::<Vec<_>>(),
        "streamed merge must equal the synchronous rollout"
    );
    assert_eq!(
        merged
            .get("pending")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|j| j.as_num().unwrap())
            .collect::<Vec<_>>(),
        direct_rollout
            .pending
            .iter()
            .map(|(id, _)| id.raw() as i64)
            .collect::<Vec<_>>()
    );
    assert_eq!(
        merged.get("skipped").and_then(Json::as_num),
        Some(direct_rollout.skipped as i64)
    );

    // Fleet-wide forced uninstall agrees with the direct sweep.
    let pulled = send(
        addr,
        "POST",
        "/fleet/uninstall",
        Some(&token),
        Some(&Json::obj([("app", Json::str("OffApp"))])),
    );
    assert_eq!(pulled.status, 200);
    let direct_pull = direct.force_uninstall("OffApp");
    let pulled_json = pulled.json();
    assert_eq!(
        pulled_json
            .get("removed")
            .and_then(Json::as_arr)
            .unwrap()
            .len(),
        direct_pull.removed.len()
    );
    assert_eq!(pulled_json.get("store_retired"), Some(&Json::Bool(true)));
    assert!(!fleet.store().has_app("OffApp"));
    server.shutdown();
}

#[test]
fn snapshot_restore_round_trips_over_http() {
    let fleet = Arc::new(Fleet::builder(RuleStore::shared()).shards(2).build());
    let server = start(
        fleet,
        ExecConfig::default(),
        Duration::from_secs(60),
        Duration::from_secs(60),
    );
    let addr = server.addr();
    let token = session(&server);
    let home = create_home(&server, &token);
    send(
        addr,
        "POST",
        &format!("/homes/{home}/install"),
        Some(&token),
        Some(&app_body(ON_APP, "OnApp")),
    );

    let snapshot = send(addr, "GET", "/snapshot", Some(&token), None);
    assert_eq!(snapshot.status, 200);
    let text = snapshot.body.clone();

    // Wipe: restore over the snapshot after adding a second home — the
    // restore replaces the whole fleet with the captured one.
    create_home(&server, &token);
    assert_eq!(
        send(addr, "GET", "/stats", None, None)
            .json()
            .get("homes")
            .and_then(Json::as_num),
        Some(2)
    );
    let mut raw = format!(
        "POST /restore HTTP/1.1\r\nconnection: close\r\nx-session: {token}\r\ncontent-length: {}\r\n\r\n",
        text.len()
    )
    .into_bytes();
    raw.extend_from_slice(&text);
    let restored = common::parse_reply(&common::send_raw(addr, &raw));
    assert_eq!(restored.status, 200);
    assert_eq!(restored.json().get("homes").and_then(Json::as_num), Some(1));
    assert_eq!(
        send(addr, "GET", "/stats", None, None)
            .json()
            .get("homes")
            .and_then(Json::as_num),
        Some(1)
    );
    // The restored fleet serves: the surviving home still owns its app.
    let apps = send(addr, "GET", &format!("/homes/{home}"), Some(&token), None);
    assert_eq!(apps.status, 200);
    assert_eq!(
        apps.json()
            .get("apps")
            .and_then(Json::as_arr)
            .unwrap()
            .len(),
        1
    );
    server.shutdown();
}

#[test]
fn saturated_shard_queue_answers_429_with_retry_after() {
    // One shard, queue bound 1: a wedged worker plus one queued job ⇒
    // the next admission must be refused, typed, with Retry-After.
    let fleet = Arc::new(Fleet::builder(RuleStore::shared()).shards(1).build());
    let server = start(
        fleet,
        ExecConfig {
            queue_capacity: 1,
            store_workers: 1,
        },
        Duration::from_secs(60),
        Duration::from_secs(60),
    );
    let addr = server.addr();
    let token = session(&server);
    let home = create_home(&server, &token);

    // Wedge the single shard worker: a job that blocks until released.
    let exec = server.state().exec();
    let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    let wedger = {
        let exec = exec.clone();
        std::thread::spawn(move || {
            let _ = exec.run_on_home(HomeId::new(0), move |_fleet| {
                let _ = started_tx.send(());
                let _ = release_rx.recv();
            });
        })
    };
    started_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("wedge job must start");

    // Fill the queue behind the wedged worker.
    let filler = {
        let exec = exec.clone();
        std::thread::spawn(move || {
            let _ = exec.run_on_home(HomeId::new(0), |_fleet| {});
        })
    };
    // Wait until the filler's job is actually queued.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while exec.shard_depths()[0] < 1 {
        assert!(std::time::Instant::now() < deadline, "filler never queued");
        std::thread::yield_now();
    }

    // The next per-home request over HTTP must be refused up front.
    let refused = send(
        addr,
        "POST",
        &format!("/homes/{home}/install"),
        Some(&token),
        Some(&app_body(ON_APP, "OnApp")),
    );
    assert_eq!(refused.status, 429);
    assert_eq!(refused.header("retry-after"), Some("1"));
    assert_eq!(
        refused
            .json()
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("queue_full")
    );

    // Released, the very same request is admitted and succeeds.
    release_tx.send(()).unwrap();
    wedger.join().unwrap();
    filler.join().unwrap();
    let accepted = send(
        addr,
        "POST",
        &format!("/homes/{home}/install"),
        Some(&token),
        Some(&app_body(ON_APP, "OnApp")),
    );
    assert_eq!(accepted.status, 200);
    server.shutdown();
}

#[test]
fn metrics_and_analytics_reconcile_exactly_with_observed_traffic() {
    let fleet = Arc::new(Fleet::builder(RuleStore::shared()).shards(2).build());
    let server = start(
        fleet,
        ExecConfig::default(),
        Duration::from_secs(60),
        Duration::from_secs(60),
    );
    let addr = server.addr();
    let token = session(&server);
    let home_a = create_home(&server, &token);
    let home_b = create_home(&server, &token);

    // Known traffic: 2 clean installs, 1 dirty install (confirmed — the
    // confirm itself is not a fresh attempt, so it publishes no event).
    send(
        addr,
        "POST",
        &format!("/homes/{home_a}/install"),
        Some(&token),
        Some(&app_body(ON_APP, "OnApp")),
    );
    let dirty = send(
        addr,
        "POST",
        &format!("/homes/{home_a}/install"),
        Some(&token),
        Some(&app_body(OFF_APP, "OffApp")),
    );
    let threat_count = dirty
        .json()
        .get("threats")
        .and_then(Json::as_arr)
        .expect("threats array")
        .len() as i64;
    assert!(threat_count > 0, "OffApp must conflict with OnApp");
    send(
        addr,
        "POST",
        &format!("/homes/{home_a}/confirm"),
        Some(&token),
        Some(&Json::obj([("app", Json::str("OffApp"))])),
    );
    send(
        addr,
        "POST",
        &format!("/homes/{home_b}/install"),
        Some(&token),
        Some(&app_body(ON_APP, "OnApp")),
    );

    // /metrics waits for the collector, so totals are exact, not racy.
    let metrics = send(addr, "GET", "/metrics", None, None);
    assert_eq!(metrics.status, 200);
    let body = metrics.json();
    let counter = |name: &str| {
        body.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_num)
            .unwrap_or(0)
    };
    assert_eq!(counter("homes_created_total"), 2);
    assert_eq!(counter("installs_total"), 3);
    assert_eq!(counter("installs_clean_total"), 2);
    assert_eq!(counter("installs_dirty_total"), 1);
    assert_eq!(counter("threats_total"), threat_count);
    assert_eq!(
        body.get("gauges")
            .and_then(|g| g.get("fleet_homes"))
            .and_then(Json::as_num),
        Some(2)
    );

    // The Prometheus rendering carries the same totals as labeled text.
    let prom = send(addr, "GET", "/metrics?format=prometheus", None, None);
    assert_eq!(prom.status, 200);
    assert!(prom
        .header("content-type")
        .is_some_and(|ct| ct.starts_with("text/plain")));
    let text = String::from_utf8(prom.body.clone()).unwrap();
    assert!(text.contains("hg_installs_total 3"));
    assert!(text.contains("hg_app_interference_rate{app=\"OffApp\"} 1.0"));

    // Analytics: OffApp tops the interference table (its one attempt was
    // dirty), the hot-pair board knows the OnApp/OffApp pair, and the
    // install histogram saw exactly the three attempts.
    let interference = send(addr, "GET", "/analytics/interference", None, None);
    let rows = interference
        .json()
        .get("interference")
        .and_then(Json::as_arr)
        .expect("interference rows")
        .to_vec();
    assert_eq!(rows[0].get("app").and_then(Json::as_str), Some("OffApp"));
    assert_eq!(rows[0].get("dirty").and_then(Json::as_num), Some(1));
    assert_eq!(rows[0].get("rate_pct").and_then(Json::as_num), Some(10_000));

    let hot = send(addr, "GET", "/analytics/hot-pairs?limit=5", None, None);
    assert_eq!(hot.status, 200);
    let pairs = hot
        .json()
        .get("hot_pairs")
        .and_then(Json::as_arr)
        .expect("hot pairs")
        .to_vec();
    assert!(
        pairs.iter().any(|p| {
            p.get("apps")
                .and_then(Json::as_arr)
                .is_some_and(|apps| apps.iter().filter_map(Json::as_str).eq(["OffApp", "OnApp"]))
        }),
        "the conflicting pair must be on the leaderboard"
    );

    let latency = send(addr, "GET", "/analytics/latency", None, None);
    assert_eq!(
        latency
            .json()
            .get("histograms")
            .and_then(|h| h.get("install_micros"))
            .and_then(|h| h.get("count"))
            .and_then(Json::as_num),
        Some(3)
    );

    // /stats exposes the executor gauges: per-shard queue shape and the
    // store pool, plus the telemetry switch.
    let stats = send(addr, "GET", "/stats", None, None).json();
    assert_eq!(stats.get("telemetry"), Some(&Json::Bool(true)));
    let shard_queues = stats
        .get("shard_queues")
        .and_then(Json::as_arr)
        .expect("shard queue gauges");
    assert_eq!(shard_queues.len(), 2);
    for queue in shard_queues {
        assert_eq!(queue.get("depth").and_then(Json::as_num), Some(0));
        assert_eq!(
            queue.get("capacity").and_then(Json::as_num),
            Some(ExecConfig::default().queue_capacity as i64)
        );
        assert_eq!(queue.get("busy"), Some(&Json::Bool(false)));
    }
    assert_eq!(
        stats
            .get("store_queue")
            .and_then(|q| q.get("depth"))
            .and_then(Json::as_num),
        Some(0)
    );

    // Unknown format is a typed 400; disabled telemetry is a typed 404.
    assert_eq!(
        send(addr, "GET", "/metrics?format=xml", None, None).status,
        400
    );
    server.shutdown();

    let dark_fleet = Arc::new(Fleet::new(RuleStore::shared()));
    let dark = ApiServer::start(
        dark_fleet,
        ServerConfig {
            telemetry: false,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let refused = send(dark.addr(), "GET", "/metrics", None, None);
    assert_eq!(refused.status, 404);
    assert_eq!(
        refused
            .json()
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("telemetry_disabled")
    );
    assert_eq!(
        send(dark.addr(), "GET", "/stats", None, None)
            .json()
            .get("telemetry"),
        Some(&Json::Bool(false))
    );
    dark.shutdown();
}

#[test]
fn event_stream_tails_live_events_and_a_slow_reader_cannot_wedge_a_worker() {
    let fleet = Arc::new(Fleet::builder(RuleStore::shared()).shards(2).build());
    let server = start(
        fleet,
        ExecConfig::default(),
        Duration::from_secs(60),
        Duration::from_secs(60),
    );
    let addr = server.addr();
    let bus = server
        .state()
        .telemetry()
        .expect("telemetry on by default")
        .bus()
        .clone();

    // Some history before the stream opens…
    for home in 0..3 {
        bus.publish(TelemetryEvent::HomeCreated { home });
    }

    // …then a deliberately slow reader: request the tail, go silent, and
    // let the bus overflow its retention while nothing is consumed.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream
        .write_all(
            b"GET /events/stream?cursor=0&limit=5&max_ms=5000 HTTP/1.1\r\n\
              host: loopback\r\nconnection: close\r\n\r\n",
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(300));
    // More events than default retention holds (8 rings × 4096), so the
    // flood must shed history while the reader sits on an unread socket.
    for home in 0..40_000u64 {
        bus.publish(TelemetryEvent::HomeCreated { home });
    }
    assert!(
        bus.dropped_events() > 0,
        "the flood must overflow retention — publishers drop oldest, never block"
    );

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("stream completes");
    let reply = common::parse_reply(&raw);
    assert_eq!(reply.status, 200);
    assert_eq!(reply.header("content-type"), Some("application/x-ndjson"));
    let lines = reply.ndjson_lines();
    assert_eq!(lines.len(), 5, "the limit bounds the stream");
    let seqs: Vec<i64> = lines
        .iter()
        .map(|l| l.get("seq").and_then(Json::as_num).expect("seq"))
        .collect();
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "sequence numbers must strictly increase (gaps mark drops): {seqs:?}"
    );
    assert!(lines
        .iter()
        .all(|l| l.get("type").and_then(Json::as_str) == Some("home_created")));

    // The worker is free again: the server keeps serving.
    assert_eq!(send(addr, "GET", "/stats", None, None).status, 200);

    // With no events arriving, the wall-clock window ends the stream.
    let started = std::time::Instant::now();
    let idle = common::parse_reply(&common::send_raw(
        addr,
        b"GET /events/stream?cursor=99999999&max_ms=300 HTTP/1.1\r\n\
          host: loopback\r\nconnection: close\r\n\r\n",
    ));
    assert_eq!(idle.status, 200);
    assert!(idle.ndjson_lines().is_empty(), "nothing new to tail");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "the window must bound the idle stream"
    );

    // Bad cursor input is a typed 400, not a hung stream.
    assert_eq!(
        send(addr, "GET", "/events/stream?cursor=banana", None, None).status,
        400
    );
    server.shutdown();
}

#[test]
fn expired_sessions_are_rejected_and_reaped() {
    let fleet = Arc::new(Fleet::new(RuleStore::shared()));
    let server = start(
        fleet,
        ExecConfig::default(),
        Duration::from_millis(150),
        Duration::from_millis(30),
    );
    let addr = server.addr();
    let token = session(&server);
    let home = create_home(&server, &token);
    assert_eq!(
        send(addr, "GET", "/stats", None, None)
            .json()
            .get("sessions")
            .and_then(Json::as_num),
        Some(1)
    );

    // Past the TTL the token is refused on a mutating route…
    std::thread::sleep(Duration::from_millis(400));
    let expired = send(
        addr,
        "POST",
        &format!("/homes/{home}/install"),
        Some(&token),
        Some(&app_body(ON_APP, "OnApp")),
    );
    assert_eq!(expired.status, 401);

    // …and the reaper thread has already reclaimed the session.
    assert_eq!(
        send(addr, "GET", "/stats", None, None)
            .json()
            .get("sessions")
            .and_then(Json::as_num),
        Some(0)
    );

    // A fresh session starts clean — but cannot touch the orphaned home.
    let fresh = session(&server);
    let foreign = send(addr, "GET", &format!("/homes/{home}"), Some(&fresh), None);
    assert_eq!(foreign.status, 403);
    server.shutdown();
}
