//! A deliberately tiny HTTP client for loopback tests: raw
//! `TcpStream`, `Connection: close` on every request, read-to-EOF.
//!
//! Shared by every integration target — each compiles its own copy, so
//! helpers one target skips are dead code only there.
#![allow(dead_code)]

use hg_rules::json::Json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
pub struct Reply {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Reply {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    pub fn json(&self) -> Json {
        Json::parse(std::str::from_utf8(&self.body).expect("UTF-8 body")).expect("JSON body")
    }

    /// Decodes a chunked body into NDJSON lines.
    pub fn ndjson_lines(&self) -> Vec<Json> {
        let text = decode_chunked(&self.body);
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| Json::parse(l).expect("NDJSON line"))
            .collect()
    }
}

fn decode_chunked(raw: &[u8]) -> String {
    let mut out = Vec::new();
    let mut rest = raw;
    while let Some(pos) = rest.windows(2).position(|w| w == b"\r\n") {
        let size_line = std::str::from_utf8(&rest[..pos]).expect("chunk size line");
        let size = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
        rest = &rest[pos + 2..];
        if size == 0 {
            break;
        }
        out.extend_from_slice(&rest[..size]);
        rest = &rest[size + 2..]; // skip chunk payload + CRLF
    }
    String::from_utf8(out).expect("UTF-8 chunked payload")
}

/// Sends one request and reads the full response (connection closed).
pub fn send(
    addr: SocketAddr,
    method: &str,
    path: &str,
    session: Option<&str>,
    body: Option<&Json>,
) -> Reply {
    let payload = body.map(|b| b.to_text()).unwrap_or_default();
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: loopback\r\nconnection: close\r\n");
    if let Some(token) = session {
        head.push_str(&format!("x-session: {token}\r\n"));
    }
    if !payload.is_empty() {
        head.push_str(&format!("content-length: {}\r\n", payload.len()));
    }
    head.push_str("\r\n");
    let raw = send_raw(addr, format!("{head}{payload}").as_bytes());
    parse_reply(&raw)
}

/// Writes raw bytes and reads everything until the server closes.
pub fn send_raw(addr: SocketAddr, raw: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream.write_all(raw).expect("write request");
    // Signal end-of-request: a truncated payload must surface as a typed
    // error, not wait out the server's read timeout.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    out
}

pub fn parse_reply(raw: &[u8]) -> Reply {
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head/body split");
    let head = std::str::from_utf8(&raw[..split]).expect("UTF-8 head");
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Reply {
        status,
        headers,
        body: raw[split + 4..].to_vec(),
    }
}

/// The two conflicting exemplar apps every suite uses.
pub const ON_APP: &str = r#"
definition(name: "OnApp")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.on() }
"#;

pub const OFF_APP: &str = r#"
definition(name: "OffApp")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.off() }
"#;

/// Request body `{"source": …, "name": …}`.
pub fn app_body(source: &str, name: &str) -> Json {
    Json::obj([("source", Json::str(source)), ("name", Json::str(name))])
}
