//! The TCP server: accept loop, HTTP worker pool, session reaper,
//! graceful shutdown.
//!
//! One acceptor thread hands connections to a fixed pool of HTTP workers
//! over a channel; each worker runs a keep-alive loop of
//! `read_request → route → write response`. Streamed rollouts
//! (`POST /fleet/upgrades`) take over the connection with a chunked
//! writer: one JSON line per finished shard, then a final merged summary
//! line. Shutdown sets a flag, wakes the acceptor with a self-connection,
//! closes the dispatch channel, joins every worker, and stops the
//! executor and reaper.

use crate::exec::ExecConfig;
use crate::http::{read_request, ChunkedWriter, Limits};
use crate::routes::{error_response, handle, AppState, EventStream, Reply};
use crate::session::SessionStore;
use crate::wire::{rollout_json, shard_part_json, ApiError};
use hg_rules::json::Json;
use hg_service::{Fleet, Journal};
use hg_telemetry::TelemetryHub;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests).
    pub addr: String,
    /// HTTP worker threads (concurrent connections served).
    pub http_workers: usize,
    /// Parser hard limits.
    pub limits: Limits,
    /// Executor shape (per-shard queue bound, store pool width).
    pub exec: ExecConfig,
    /// Session time-to-live (sliding).
    pub session_ttl: Duration,
    /// How often the reaper sweeps expired sessions.
    pub reap_interval: Duration,
    /// Per-connection socket read/write timeout — a stalled peer cannot
    /// pin a worker forever.
    pub io_timeout: Duration,
    /// Whether to run the telemetry hub (event bus + metrics collector)
    /// and serve the observability routes. Off, those routes answer 404
    /// and the fleet publishes nothing.
    pub telemetry: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            http_workers: 4,
            limits: Limits::default(),
            exec: ExecConfig::default(),
            session_ttl: Duration::from_secs(1800),
            reap_interval: Duration::from_secs(60),
            io_timeout: Duration::from_secs(10),
            telemetry: true,
        }
    }
}

pub(crate) struct Shutdown {
    stop: AtomicBool,
    gate: Mutex<()>,
    bell: Condvar,
}

impl Shutdown {
    fn ring(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.bell.notify_all();
    }

    /// Sleeps up to `period` or until shutdown rings; `true` to keep
    /// running.
    fn snooze(&self, period: Duration) -> bool {
        if self.stop.load(Ordering::SeqCst) {
            return false;
        }
        let guard = self
            .gate
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = self.bell.wait_timeout(guard, period).map(|(g, _)| drop(g));
        !self.stop.load(Ordering::SeqCst)
    }
}

/// A running API server. Dropping it (or calling
/// [`ApiServer::shutdown`]) stops everything gracefully.
pub struct ApiServer {
    addr: SocketAddr,
    state: Arc<AppState>,
    shutdown: Arc<Shutdown>,
    threads: Vec<JoinHandle<()>>,
}

impl ApiServer {
    /// Binds, spawns the acceptor + worker pool + session reaper, and
    /// returns the handle.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(fleet: Arc<Fleet>, config: ServerConfig) -> std::io::Result<ApiServer> {
        Self::start_inner(fleet, config, None)
    }

    /// [`ApiServer::start`] with a write-ahead journal attached to the
    /// served fleet before the first request: lifecycle mutations are
    /// journaled, `GET /journal/stats`, `POST /journal/heal` and the
    /// journal half of `GET /health` / `GET /ready` come alive, and
    /// `POST /restore` re-journals whatever fleet it swaps in.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure; attach failures (the baseline
    /// checkpoint could not be written) surface as
    /// [`std::io::ErrorKind::Other`].
    pub fn start_journaled(
        fleet: Arc<Fleet>,
        config: ServerConfig,
        journal: Arc<Journal>,
    ) -> std::io::Result<ApiServer> {
        Self::start_inner(fleet, config, Some(journal))
    }

    fn start_inner(
        fleet: Arc<Fleet>,
        config: ServerConfig,
        journal: Option<Arc<Journal>>,
    ) -> std::io::Result<ApiServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let telemetry = config.telemetry.then(TelemetryHub::start);
        let mut state = AppState::new(
            fleet,
            config.exec.clone(),
            SessionStore::new(config.session_ttl),
            telemetry,
        );
        if let Some(journal) = journal {
            state = state
                .with_journal(journal)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
        }
        let state = Arc::new(state);
        let shutdown = Arc::new(Shutdown {
            stop: AtomicBool::new(false),
            gate: Mutex::new(()),
            bell: Condvar::new(),
        });

        let (conn_tx, conn_rx) = channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let mut threads = Vec::new();
        for index in 0..config.http_workers.max(1) {
            threads.push(Self::spawn_http_worker(
                index,
                state.clone(),
                conn_rx.clone(),
                config.clone(),
                shutdown.clone(),
            ));
        }
        threads.push(Self::spawn_acceptor(listener, conn_tx, shutdown.clone()));
        threads.push(Self::spawn_reaper(
            state.clone(),
            shutdown.clone(),
            config.reap_interval,
        ));
        Ok(ApiServer {
            addr,
            state,
            shutdown,
            threads,
        })
    }

    fn spawn_acceptor(
        listener: TcpListener,
        conn_tx: Sender<TcpStream>,
        shutdown: Arc<Shutdown>,
    ) -> JoinHandle<()> {
        std::thread::Builder::new()
            .name("hg-api-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if conn_tx.send(stream).is_err() {
                        break;
                    }
                }
                // Dropping conn_tx closes the channel; idle workers wake
                // and exit.
            })
            .expect("spawning the acceptor")
    }

    fn spawn_http_worker(
        index: usize,
        state: Arc<AppState>,
        conn_rx: Arc<Mutex<Receiver<TcpStream>>>,
        config: ServerConfig,
        shutdown: Arc<Shutdown>,
    ) -> JoinHandle<()> {
        std::thread::Builder::new()
            .name(format!("hg-api-http-{index}"))
            .spawn(move || loop {
                let next = {
                    let Ok(guard) = conn_rx.lock() else { return };
                    guard.recv()
                };
                match next {
                    Ok(stream) => serve_connection(&state, stream, &config, &shutdown),
                    Err(_) => return,
                }
            })
            .expect("spawning an HTTP worker")
    }

    fn spawn_reaper(
        state: Arc<AppState>,
        shutdown: Arc<Shutdown>,
        interval: Duration,
    ) -> JoinHandle<()> {
        std::thread::Builder::new()
            .name("hg-api-reaper".to_string())
            .spawn(move || {
                while shutdown.snooze(interval) {
                    state.sessions().reap();
                }
            })
            .expect("spawning the session reaper")
    }

    /// The bound address (with the OS-assigned port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state — tests reach the executor and session store
    /// through this.
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Graceful stop: flag, wake the acceptor, join every thread, stop
    /// the executor.
    pub fn shutdown(mut self) {
        self.stop_all();
    }

    fn stop_all(&mut self) {
        if self.shutdown.stop.load(Ordering::SeqCst) && self.threads.is_empty() {
            return;
        }
        self.shutdown.ring();
        // The acceptor blocks in `incoming()`; a throwaway connection
        // wakes it so it can observe the flag and drop the dispatch
        // channel.
        let _ = TcpStream::connect(self.addr);
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        self.state.stop();
        if let Some(hub) = self.state.telemetry() {
            hub.stop();
        }
    }
}

impl Drop for ApiServer {
    fn drop(&mut self) {
        self.stop_all();
    }
}

/// Serves one connection's keep-alive loop.
fn serve_connection(
    state: &AppState,
    stream: TcpStream,
    config: &ServerConfig,
    shutdown: &Shutdown,
) {
    let _ = stream.set_read_timeout(Some(config.io_timeout));
    let _ = stream.set_write_timeout(Some(config.io_timeout));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = write_half;
    loop {
        let request = match read_request(&mut reader, &config.limits) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(refusal) => {
                let error = ApiError::new(refusal.status, "malformed_request", refusal.message);
                let _ = error_response(&error).write_to(&mut writer, false);
                return;
            }
        };
        let keep_alive = request.keep_alive;
        match handle(state, &request) {
            Reply::Full(response) => {
                if response.write_to(&mut writer, keep_alive).is_err() {
                    return;
                }
            }
            Reply::Stream(stream) => {
                let _ = stream_rollout(&mut writer, stream);
                // Chunked responses advertise `connection: close`.
                return;
            }
            Reply::Events(spec) => {
                let _ = stream_events(&mut writer, spec, shutdown);
                return;
            }
        }
        if !keep_alive {
            return;
        }
    }
}

/// Drives a streamed rollout: one JSON line per shard part as it lands,
/// then a final line with the merged fleet-wide rollout.
fn stream_rollout(
    writer: &mut impl Write,
    mut stream: crate::exec::RolloutStream,
) -> std::io::Result<()> {
    let mut chunked = ChunkedWriter::begin(writer, 200)?;
    while let Some((shard, part)) = stream.next_part() {
        let mut line = shard_part_json(shard, part).to_text();
        line.push('\n');
        chunked.chunk(line.as_bytes())?;
    }
    let merged = stream.finish();
    let mut line = Json::obj([("rollout", rollout_json(&merged))]).to_text();
    line.push('\n');
    chunked.chunk(line.as_bytes())?;
    chunked.finish()
}

/// Longest single park on the bus while tailing events — short enough
/// that server shutdown and window expiry are noticed promptly.
const EVENT_WAIT_SLICE: Duration = Duration::from_millis(250);

/// Drives a live NDJSON event tail: drain the bus from the cursor, write
/// one JSON line per event, park briefly between batches. Ends at the
/// event limit, the wall-clock window, server shutdown, or a write error
/// (the client went away) — whichever comes first, so a slow or absent
/// reader can never wedge an HTTP worker.
fn stream_events(
    writer: &mut impl Write,
    spec: EventStream,
    shutdown: &Shutdown,
) -> std::io::Result<()> {
    let mut chunked = ChunkedWriter::begin(writer, 200)?;
    let deadline = std::time::Instant::now() + spec.window;
    let mut cursor = spec.cursor;
    let mut sent = 0usize;
    let mut batch = Vec::new();
    'tail: loop {
        batch.clear();
        cursor = spec.bus.drain_since(cursor, &mut batch);
        for (seq, event) in &batch {
            let mut line = event.to_json(*seq).to_text();
            line.push('\n');
            chunked.chunk(line.as_bytes())?;
            sent += 1;
            if sent >= spec.limit {
                break 'tail;
            }
        }
        loop {
            if shutdown.stop.load(Ordering::SeqCst) {
                break 'tail;
            }
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                break 'tail;
            }
            if spec.bus.wait_for_events(cursor, left.min(EVENT_WAIT_SLICE)) {
                continue 'tail;
            }
        }
    }
    chunked.finish()
}
