//! # hg-api — the networked fleet frontend
//!
//! The paper's deployment is a cloud backend serving "heavy traffic from
//! millions of users"; `hg-service` gives that backend its concurrent
//! in-process form ([`Fleet`]), and this crate puts a **network edge** in
//! front of it, built entirely on `std` (the repo takes no external
//! dependencies):
//!
//! * **Per-shard work-queue executor** ([`FleetExec`]) — one bounded
//!   queue + dedicated worker per fleet shard, plus a store-operation
//!   pool. Same-home requests serialize in submission order; different
//!   shards run concurrently; a full queue refuses at admission time.
//!   Fleet-wide sweeps dispatch the fleet's own per-shard units
//!   ([`Fleet::upgrade_shard`](hg_service::Fleet::upgrade_shard) and
//!   friends) and merge through its deterministic helpers, so
//!   queue-dispatched results are identical to the serial walk.
//! * **HTTP/1.1 over `std::net`** — a strict hand-rolled parser (method,
//!   line, header and body limits; `Content-Length` only) where every
//!   malformed request is a typed 4xx, plus keep-alive and chunked
//!   streaming for rollout progress.
//! * **Sessions** — bearer tokens with a sliding TTL, per-session home
//!   ownership, server-side stashing of dirty install reports for the
//!   confirm flow, and a periodic expiry reaper.
//! * **Backpressure** — full queues surface as `429` with `Retry-After`
//!   before any work is admitted (and publish `queue_saturated` events
//!   when telemetry is on).
//! * **Observability** — a [`TelemetryHub`] (on by default) attaches the
//!   fleet event bus and serves `GET /metrics` (JSON or Prometheus text),
//!   `GET /analytics/{interference,hot-pairs,latency}` and a live
//!   `GET /events/stream` NDJSON tail; fleet snapshots carry the
//!   aggregates as a versioned envelope so restarts restore warm.
//!
//! See [`routes`] for the endpoint table and [`ApiServer`] to run one.
//!
//! # Examples
//!
//! ```
//! use hg_api::{ApiServer, ServerConfig};
//! use hg_service::{Fleet, RuleStore};
//! use std::sync::Arc;
//!
//! let fleet = Arc::new(Fleet::new(RuleStore::shared()));
//! let server = ApiServer::start(fleet, ServerConfig::default()).unwrap();
//! let addr = server.addr(); // connect any HTTP client here
//! assert_ne!(addr.port(), 0);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod http;
pub mod routes;
pub mod server;
pub mod session;
pub mod wire;

pub use exec::{ExecConfig, ExecError, FleetExec, RolloutStream, WorkQueue};
pub use http::{Limits, Request, Response};
pub use routes::{AppState, EventStream, SESSION_HEADER};
pub use server::{ApiServer, ServerConfig};
pub use session::SessionStore;
pub use wire::ApiError;

// Re-exported so examples and tests can build a fleet without naming the
// service crate separately.
pub use hg_service::Fleet;

// Re-exported so clients can drive the hub (sync for exact scrapes, the
// bus for in-process tails) without naming the telemetry crate.
pub use hg_telemetry::{MetricsRegistry, TelemetryBus, TelemetryEvent, TelemetryHub};
