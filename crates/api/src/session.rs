//! Bearer sessions: token → owned homes, with a sliding TTL.
//!
//! A session is issued at `POST /sessions` and must accompany every
//! mutating route. It records which [`HomeId`]s the caller created (the
//! ownership check behind per-home routes) and stashes dirty
//! [`InstallReport`]s server-side so the confirm flow is
//! `POST .../confirm {"app": …}` rather than a client round-trip of the
//! full report. Tokens are unguessable per process: two independent
//! SipHash passes under [`RandomState`] keys drawn at store construction,
//! over a monotone counter — the same per-process-secret construction the
//! verdict cache uses for its fingerprints.
//!
//! Expiry is a **sliding** TTL — every validated use renews the lease —
//! enforced lazily on access and reclaimed by the server's periodic reap
//! sweep, so an expired token is refused even before the sweeper gets to
//! it.

use hg_service::{HomeId, InstallReport};
use std::collections::hash_map::RandomState;
use std::collections::{HashMap, HashSet};
use std::hash::BuildHasher;
use std::sync::Mutex;
use std::time::{Duration, Instant};

struct Session {
    owned: HashSet<HomeId>,
    expires_at: Instant,
    pending: HashMap<HomeId, Box<InstallReport>>,
}

/// The concurrent session registry. One per server.
pub struct SessionStore {
    ttl: Duration,
    keys: (RandomState, RandomState),
    counter: Mutex<u64>,
    sessions: Mutex<HashMap<String, Session>>,
}

impl SessionStore {
    /// A store whose sessions live `ttl` past their last validated use.
    pub fn new(ttl: Duration) -> SessionStore {
        SessionStore {
            ttl,
            keys: (RandomState::new(), RandomState::new()),
            counter: Mutex::new(0),
            sessions: Mutex::new(HashMap::new()),
        }
    }

    /// The configured time-to-live.
    pub fn ttl(&self) -> Duration {
        self.ttl
    }

    fn mint_token(&self) -> String {
        let mut counter = self
            .counter
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *counter += 1;
        let nonce = *counter;
        let halves: Vec<u64> = [&self.keys.0, &self.keys.1]
            .into_iter()
            .map(|key| key.hash_one(nonce))
            .collect();
        format!("{:016x}{:016x}", halves[0], halves[1])
    }

    /// Issues a fresh session and returns its bearer token.
    pub fn issue(&self) -> String {
        let token = self.mint_token();
        let mut sessions = self
            .sessions
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        sessions.insert(
            token.clone(),
            Session {
                owned: HashSet::new(),
                expires_at: Instant::now() + self.ttl,
                pending: HashMap::new(),
            },
        );
        token
    }

    /// Runs `f` on the live session for `token`, renewing its lease. An
    /// unknown or expired token yields `None`; expired sessions are
    /// dropped on the spot (lazy expiry — the reap sweep only reclaims
    /// sessions nobody touches).
    fn with_live<R>(&self, token: &str, f: impl FnOnce(&mut Session) -> R) -> Option<R> {
        let mut sessions = self
            .sessions
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let now = Instant::now();
        if sessions.get(token).is_some_and(|s| s.expires_at <= now) {
            sessions.remove(token);
            return None;
        }
        let session = sessions.get_mut(token)?;
        session.expires_at = now + self.ttl;
        Some(f(session))
    }

    /// Whether `token` names a live session (renews the lease).
    pub fn validate(&self, token: &str) -> bool {
        self.with_live(token, |_| ()).is_some()
    }

    /// Records `id` as owned by the session. `false` when the token is
    /// dead.
    pub fn adopt(&self, token: &str, id: HomeId) -> bool {
        self.with_live(token, |s| {
            s.owned.insert(id);
        })
        .is_some()
    }

    /// Whether the live session owns `id`. `None` when the token is dead,
    /// `Some(false)` when live but not the owner.
    pub fn owns(&self, token: &str, id: HomeId) -> Option<bool> {
        self.with_live(token, |s| s.owned.contains(&id))
    }

    /// Forgets `id` everywhere (home deleted).
    pub fn disown(&self, token: &str, id: HomeId) {
        self.with_live(token, |s| {
            s.owned.remove(&id);
            s.pending.remove(&id);
        });
    }

    /// Stashes a dirty report awaiting `POST .../confirm` for `id`.
    pub fn stash_pending(&self, token: &str, id: HomeId, report: InstallReport) {
        self.with_live(token, |s| {
            s.pending.insert(id, Box::new(report));
        });
    }

    /// Takes the stashed report for `id` if it is for `app`.
    pub fn take_pending(&self, token: &str, id: HomeId, app: &str) -> Option<InstallReport> {
        self.with_live(token, |s| {
            if s.pending.get(&id).is_some_and(|r| r.app == app) {
                s.pending.remove(&id).map(|r| *r)
            } else {
                None
            }
        })
        .flatten()
    }

    /// Ends the session explicitly. `true` when it existed.
    pub fn revoke(&self, token: &str) -> bool {
        self.sessions
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(token)
            .is_some()
    }

    /// Drops every expired session; returns how many were reclaimed. The
    /// server's reaper thread calls this periodically.
    pub fn reap(&self) -> usize {
        let mut sessions = self
            .sessions
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let now = Instant::now();
        let before = sessions.len();
        sessions.retain(|_, s| s.expires_at > now);
        before - sessions.len()
    }

    /// Live session count (expired-but-unreaped included).
    pub fn len(&self) -> usize {
        self.sessions
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Whether no session is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_distinct_and_validate() {
        let store = SessionStore::new(Duration::from_secs(60));
        let a = store.issue();
        let b = store.issue();
        assert_ne!(a, b);
        assert_eq!(a.len(), 32);
        assert!(store.validate(&a));
        assert!(!store.validate("0000000000000000feedfacecafebeef"));
    }

    #[test]
    fn ownership_and_pending_flow() {
        let store = SessionStore::new(Duration::from_secs(60));
        let token = store.issue();
        let id = HomeId::new(3);
        assert_eq!(store.owns(&token, id), Some(false));
        assert!(store.adopt(&token, id));
        assert_eq!(store.owns(&token, id), Some(true));

        let report = InstallReport {
            app: "OffApp".into(),
            rules: Vec::new(),
            threats: Vec::new(),
            chains: Vec::new(),
            stats: Default::default(),
            installed: false,
            config: None,
            replaces: None,
            dropped_ranks: Vec::new(),
        };
        store.stash_pending(&token, id, report);
        assert!(store.take_pending(&token, id, "Other").is_none());
        let taken = store.take_pending(&token, id, "OffApp").unwrap();
        assert_eq!(taken.app, "OffApp");
        assert!(store.take_pending(&token, id, "OffApp").is_none());

        store.disown(&token, id);
        assert_eq!(store.owns(&token, id), Some(false));
        assert!(store.revoke(&token));
        assert_eq!(store.owns(&token, id), None);
    }

    #[test]
    fn expiry_is_lazy_and_reapable() {
        let store = SessionStore::new(Duration::from_millis(20));
        let token = store.issue();
        assert!(store.validate(&token));
        std::thread::sleep(Duration::from_millis(40));
        // Lazy: the expired token is refused before any reap runs.
        assert!(!store.validate(&token));
        // And the refusal itself reclaimed it.
        assert_eq!(store.len(), 0);

        let other = store.issue();
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(store.reap(), 1);
        assert!(!store.validate(&other));
    }

    #[test]
    fn validated_use_slides_the_lease() {
        let store = SessionStore::new(Duration::from_millis(80));
        let token = store.issue();
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(40));
            assert!(store.validate(&token), "each use renews the lease");
        }
    }
}
