//! Route dispatch: one function per endpoint, all over the shared
//! [`AppState`].
//!
//! | Route | Auth | Effect |
//! |---|---|---|
//! | `POST /sessions` | — | issue a bearer token |
//! | `DELETE /sessions` | token | revoke the session |
//! | `POST /homes` | token | create a home (session adopts it) |
//! | `GET /homes/{id}` | owner | installed apps |
//! | `DELETE /homes/{id}` | owner | deregister the home |
//! | `POST /homes/{id}/check` | owner | dry-run install check |
//! | `POST /homes/{id}/install` | owner | install (dirty → stashed pending) |
//! | `POST /homes/{id}/confirm` | owner | confirm the stashed report |
//! | `POST /homes/{id}/upgrade` | owner | per-home upgrade |
//! | `POST /homes/{id}/uninstall` | owner | per-home uninstall |
//! | `POST /fleet/install_many` | token | bulk install via the queue executor |
//! | `POST /fleet/upgrades` | token | streamed fleet rollout |
//! | `POST /fleet/uninstall` | token | fleet-wide forced uninstall |
//! | `GET /snapshot` | token | full fleet snapshot (+ telemetry envelope) |
//! | `POST /restore` | token | revive a fleet from a snapshot |
//! | `GET /health` | — | liveness: always 200, body says `ok`/`degraded` |
//! | `GET /ready` | — | readiness: 503 when quarantined or poisoned |
//! | `POST /journal/heal` | token | re-arm a quarantined journal (fresh full checkpoint) |
//! | `GET /stats` | — | fleet + queue + session gauges |
//! | `GET /journal/stats` | — | journal offsets, segments, dirty set |
//! | `GET /metrics` | — | metrics registry (JSON; `?format=prometheus`) |
//! | `GET /analytics/interference` | — | per-app interference-rate table |
//! | `GET /analytics/hot-pairs` | — | verdict-cache hot-pair leaderboard |
//! | `GET /analytics/latency` | — | decision/pair-check latency histograms |
//! | `GET /events/stream` | — | live NDJSON event tail (`?cursor&limit&max_ms`) |
//!
//! Every per-home mutation dispatches through [`FleetExec`], so a full
//! shard queue surfaces as `429` with `Retry-After` **before** any work
//! is admitted — and, when telemetry is on, as a `queue_saturated` event.

use crate::exec::{ExecConfig, FleetExec, RolloutStream};
use crate::http::{Request, Response};
use crate::session::SessionStore;
use crate::wire::{
    bulk_json, force_uninstall_json, hot_pairs_json, install_report_json, need_home_ids, need_str,
    parse_body, uninstall_report_json, ApiError,
};
use hg_persist::FleetSnapshot;
use hg_rules::json::Json;
use hg_service::{Fleet, HgError, HomeId, Journal, JournalState};
use hg_telemetry::{TelemetryBus, TelemetryHub};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Header carrying the bearer token.
pub const SESSION_HEADER: &str = "x-session";

/// Shared server state: the executor (swappable — `POST /restore`
/// replaces the whole fleet) and the session registry.
pub struct AppState {
    exec: RwLock<Arc<FleetExec>>,
    sessions: SessionStore,
    exec_config: ExecConfig,
    telemetry: Option<Arc<TelemetryHub>>,
    journal: Option<Arc<Journal>>,
}

impl AppState {
    /// State over a freshly started executor for `fleet`. With a
    /// `telemetry` hub, the hub's bus is attached to the fleet before any
    /// request is served (and re-attached to every fleet `POST /restore`
    /// swaps in), and the observability routes come alive.
    pub fn new(
        fleet: Arc<Fleet>,
        exec_config: ExecConfig,
        sessions: SessionStore,
        telemetry: Option<Arc<TelemetryHub>>,
    ) -> AppState {
        if let Some(hub) = &telemetry {
            fleet.attach_telemetry(hub.bus().clone());
        }
        AppState {
            exec: RwLock::new(FleetExec::start(fleet, exec_config.clone())),
            sessions,
            exec_config,
            telemetry,
            journal: None,
        }
    }

    /// Attaches a write-ahead journal to the served fleet and remembers it
    /// so `POST /restore` re-journals the swapped-in fleet (the journal is
    /// reset first: a restore starts a new durability timeline) and
    /// `GET /journal/stats` comes alive.
    ///
    /// # Errors
    ///
    /// [`HgError::Journal`] / [`HgError::Poisoned`] from
    /// [`Fleet::attach_journal`] (writing the baseline checkpoint).
    pub fn with_journal(mut self, journal: Arc<Journal>) -> Result<AppState, HgError> {
        self.exec().fleet().attach_journal(journal.clone())?;
        self.journal = Some(journal);
        Ok(self)
    }

    /// The attached journal, when durability is enabled.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.as_ref()
    }

    /// The telemetry hub, when observability is enabled.
    pub fn telemetry(&self) -> Option<&Arc<TelemetryHub>> {
        self.telemetry.as_ref()
    }

    /// The live executor (the restore route swaps it atomically).
    pub fn exec(&self) -> Arc<FleetExec> {
        self.exec
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// The session registry.
    pub fn sessions(&self) -> &SessionStore {
        &self.sessions
    }

    /// Stops the live executor's workers (server shutdown).
    pub fn stop(&self) {
        self.exec().stop();
    }

    fn swap_fleet(&self, fleet: Arc<Fleet>) -> Result<(), HgError> {
        if let Some(hub) = &self.telemetry {
            fleet.attach_telemetry(hub.bus().clone());
        }
        if let Some(journal) = &self.journal {
            // The swapped-in fleet is a new durability timeline: wipe the
            // old fleet's records and re-baseline on the fresh state.
            journal.reset()?;
            fleet.attach_journal(journal.clone())?;
        }
        let fresh = FleetExec::start(fleet, self.exec_config.clone());
        let old = std::mem::replace(
            &mut *self
                .exec
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
            fresh,
        );
        old.stop();
        Ok(())
    }
}

/// A live NDJSON tail of the fleet event bus, produced by
/// `GET /events/stream` and driven by the connection handler: drain from
/// `cursor`, emit one JSON line per event, park on the bus between
/// batches, stop after `limit` events or `max_ms` elapsed. Both bounds
/// are hard-capped at parse time, so a stream can never pin an HTTP
/// worker past its window; a reader slower than the bus's retention
/// simply misses the dropped-oldest events (each line carries `seq`, so
/// gaps are visible).
pub struct EventStream {
    /// The bus to tail.
    pub bus: Arc<TelemetryBus>,
    /// Starting cursor (sequence number; older events already evicted are
    /// skipped).
    pub cursor: u64,
    /// Stop after this many events.
    pub limit: usize,
    /// Stop after this much wall-clock time.
    pub window: Duration,
}

/// What a route produced: a buffered response or a stream to drive.
pub enum Reply {
    /// A complete response.
    Full(Response),
    /// A chunked-stream rollout (the connection handler drives it).
    Stream(RolloutStream),
    /// A chunked NDJSON live event tail (the connection handler drives
    /// it).
    Events(EventStream),
}

impl From<Response> for Reply {
    fn from(response: Response) -> Reply {
        Reply::Full(response)
    }
}

impl From<ApiError> for Reply {
    fn from(error: ApiError) -> Reply {
        Reply::Full(error_response(&error))
    }
}

/// Renders an [`ApiError`] as its JSON response (429s carry
/// `Retry-After`).
pub fn error_response(error: &ApiError) -> Response {
    let response = Response::json(error.status, &error.body());
    if error.status == 429 {
        response.with_header("retry-after", "1")
    } else {
        response
    }
}

/// How long observability routes wait for the collector to catch up with
/// everything already published, so rendered totals are exact.
const SYNC_WINDOW: Duration = Duration::from_secs(2);

/// The telemetry hub, or the 404 every observability route answers when
/// the server runs with telemetry off.
fn need_hub(state: &AppState) -> Result<&Arc<TelemetryHub>, ApiError> {
    state.telemetry().ok_or_else(|| {
        ApiError::new(
            404,
            "telemetry_disabled",
            "this server runs with telemetry disabled",
        )
    })
}

/// Parses an optional non-negative integer query parameter.
fn query_num(req: &Request, name: &str) -> Result<Option<u64>, ApiError> {
    match req.query_param(name) {
        None => Ok(None),
        Some(raw) => raw.parse::<u64>().map(Some).map_err(|_| {
            ApiError::bad_request(format!(
                "query parameter `{name}` must be a non-negative integer, got `{raw}`"
            ))
        }),
    }
}

/// `GET /metrics`: samples the pull-style gauges, waits for the collector
/// to drain the bus, then renders the registry as JSON (default) or
/// Prometheus text (`?format=prometheus`).
fn metrics_route(state: &AppState, req: &Request) -> Result<Reply, ApiError> {
    let hub = need_hub(state)?;
    let exec = state.exec();
    let registry = hub.registry();
    for (index, depth) in exec.shard_depths().into_iter().enumerate() {
        registry.set_gauge(format!("shard_{index}_queue_depth"), depth as i64);
    }
    let busy_shards = exec.shard_occupancy().iter().filter(|busy| **busy).count();
    registry.set_gauge("shard_workers_busy", busy_shards as i64);
    registry.set_gauge("store_queue_depth", exec.store_depth() as i64);
    registry.set_gauge("store_workers_busy", exec.store_busy_workers() as i64);
    registry.set_gauge("queue_capacity", exec.queue_capacity() as i64);
    registry.set_gauge("bus_dropped_events", hub.bus().dropped_events() as i64);
    registry.set_gauge("fleet_homes", exec.fleet().len() as i64);
    hub.sync(SYNC_WINDOW);
    match req.query_param("format") {
        Some("prometheus") => Ok(Response {
            status: 200,
            headers: vec![(
                "content-type".to_string(),
                "text/plain; version=0.0.4".to_string(),
            )],
            body: registry.render_prometheus().into_bytes(),
        }
        .into()),
        None | Some("json") => Ok(Response::json(200, &registry.to_json()).into()),
        Some(other) => Err(ApiError::bad_request(format!(
            "unknown metrics format `{other}` (expected `json` or `prometheus`)"
        ))),
    }
}

fn token<'a>(state: &AppState, req: &'a Request) -> Result<&'a str, ApiError> {
    let token = req
        .header(SESSION_HEADER)
        .ok_or_else(|| ApiError::new(401, "no_session", "missing x-session header"))?;
    if !state.sessions.validate(token) {
        return Err(ApiError::new(
            401,
            "bad_session",
            "unknown or expired session token",
        ));
    }
    Ok(token)
}

fn owned_home(state: &AppState, req: &Request, id: HomeId) -> Result<(), ApiError> {
    let token = token(state, req)?;
    match state.sessions.owns(token, id) {
        Some(true) => Ok(()),
        Some(false) => Err(ApiError::new(
            403,
            "not_owner",
            format!("session does not own {id}"),
        )),
        None => Err(ApiError::new(
            401,
            "bad_session",
            "session expired mid-request",
        )),
    }
}

/// Splits `/homes/{id}` or `/homes/{id}/{action}` into id and action.
fn home_path(path: &str) -> Option<(HomeId, Option<&str>)> {
    let rest = path.strip_prefix("/homes/")?;
    let mut parts = rest.splitn(2, '/');
    let id = parts.next()?.parse::<u64>().ok()?;
    let action = parts.next().filter(|a| !a.is_empty());
    Some((HomeId::new(id), action))
}

/// Dispatches one request. Streaming routes return [`Reply::Stream`] for
/// the connection handler to drive.
pub fn handle(state: &AppState, req: &Request) -> Reply {
    match dispatch(state, req) {
        Ok(reply) => reply,
        Err(error) => error.into(),
    }
}

fn dispatch(state: &AppState, req: &Request) -> Result<Reply, ApiError> {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/sessions") => {
            let token = state.sessions.issue();
            Ok(Response::json(
                201,
                &Json::obj([
                    ("token", Json::str(token)),
                    ("ttl_secs", Json::Num(state.sessions.ttl().as_secs() as i64)),
                ]),
            )
            .into())
        }
        ("DELETE", "/sessions") => {
            let token = token(state, req)?;
            state.sessions.revoke(token);
            Ok(Response::empty(204).into())
        }
        ("POST", "/homes") => {
            let token = token(state, req)?;
            let exec = state.exec();
            let id = exec.fleet().create_home().map_err(ApiError::from)?;
            state.sessions.adopt(token, id);
            Ok(Response::json(201, &Json::obj([("home", Json::Num(id.raw() as i64))])).into())
        }
        ("GET", "/health") => {
            // Liveness: always 200 — a degraded service is still alive and
            // still serving reads; the body says what degraded.
            let (_healthy, body) = health_json(state);
            Ok(Response::json(200, &body).into())
        }
        ("GET", "/ready") => {
            // Readiness: 503 drops the instance out of a load balancer the
            // moment the journal quarantines or a shard poisons.
            let (healthy, body) = health_json(state);
            Ok(Response::json(if healthy { 200 } else { 503 }, &body).into())
        }
        ("POST", "/journal/heal") => {
            token(state, req)?;
            state.journal().ok_or_else(|| {
                ApiError::new(
                    404,
                    "journal_disabled",
                    "this server runs without a write-ahead journal",
                )
            })?;
            let stats = state
                .exec()
                .fleet()
                .heal_journal()
                .map_err(ApiError::from)?;
            Ok(Response::json(
                200,
                &Json::obj([
                    ("healed", Json::Bool(true)),
                    ("offset", Json::Num(stats.offset as i64)),
                    ("homes", Json::Num(stats.homes as i64)),
                ]),
            )
            .into())
        }
        ("GET", "/stats") => Ok(Response::json(200, &stats_json(state)).into()),
        ("GET", "/journal/stats") => {
            let journal = state.journal().ok_or_else(|| {
                ApiError::new(
                    404,
                    "journal_disabled",
                    "this server runs without a write-ahead journal",
                )
            })?;
            Ok(Response::json(200, &Json::obj([("journal", journal.stats_json())])).into())
        }
        ("GET", "/metrics") => metrics_route(state, req),
        ("GET", "/analytics/interference") => {
            let hub = need_hub(state)?;
            hub.sync(SYNC_WINDOW);
            Ok(Response::json(
                200,
                &Json::obj([("interference", hub.registry().interference_json())]),
            )
            .into())
        }
        ("GET", "/analytics/hot-pairs") => {
            need_hub(state)?;
            let limit = query_num(req, "limit")?.unwrap_or(10).clamp(1, 100) as usize;
            let pairs = state
                .exec()
                .fleet()
                .store()
                .verdict_cache()
                .top_pairs(limit);
            Ok(Response::json(200, &Json::obj([("hot_pairs", hot_pairs_json(&pairs))])).into())
        }
        ("GET", "/analytics/latency") => {
            let hub = need_hub(state)?;
            hub.sync(SYNC_WINDOW);
            Ok(Response::json(
                200,
                &Json::obj([(
                    "histograms",
                    hub.registry().histograms_json(&[
                        "mediation_latency_ns",
                        "pair_check_micros_cached",
                        "pair_check_micros_uncached",
                        "install_micros",
                    ]),
                )]),
            )
            .into())
        }
        ("GET", "/events/stream") => {
            let hub = need_hub(state)?;
            let cursor = query_num(req, "cursor")?.unwrap_or(0);
            let limit = query_num(req, "limit")?.unwrap_or(256).min(10_000) as usize;
            let max_ms = query_num(req, "max_ms")?.unwrap_or(1_000).min(30_000);
            Ok(Reply::Events(EventStream {
                bus: hub.bus().clone(),
                cursor,
                limit,
                window: Duration::from_millis(max_ms),
            }))
        }
        ("GET", "/snapshot") => {
            token(state, req)?;
            let exec = state.exec();
            let mut snapshot = exec
                .run_on_store(|fleet| fleet.snapshot())
                .map_err(ApiError::from)?
                .map_err(ApiError::from)?;
            if let Some(hub) = state.telemetry() {
                // Fold in everything published up to the capture, so the
                // envelope's aggregates match the ground truth they rode
                // along with.
                hub.sync(SYNC_WINDOW);
                snapshot.telemetry = Some(hub.registry().export_state());
            }
            Ok(Response {
                status: 200,
                headers: Vec::new(),
                body: snapshot.to_text().into_bytes(),
            }
            .into())
        }
        ("POST", "/restore") => {
            token(state, req)?;
            let text = std::str::from_utf8(&req.body)
                .map_err(|_| ApiError::bad_request("snapshot is not UTF-8"))?;
            let mut snapshot = FleetSnapshot::from_text(text).map_err(ApiError::from)?;
            if let (Some(hub), Some(envelope)) = (state.telemetry(), snapshot.telemetry.take()) {
                hub.registry().absorb_state(&envelope).map_err(|why| {
                    ApiError::bad_request(format!("telemetry envelope refused: {why}"))
                })?;
            }
            let fleet = Arc::new(Fleet::restore(snapshot).map_err(ApiError::from)?);
            let homes = fleet.len();
            state.swap_fleet(fleet).map_err(ApiError::from)?;
            Ok(Response::json(200, &Json::obj([("homes", Json::Num(homes as i64))])).into())
        }
        ("POST", "/fleet/install_many") => {
            token(state, req)?;
            let body = parse_body(&req.body)?;
            let homes = need_home_ids(&body, "homes")?;
            let source = need_str(&body, "source")?.to_string();
            let name = need_str(&body, "name")?.to_string();
            let outcomes = state
                .exec()
                .install_many(homes, source, name)
                .map_err(ApiError::from)?
                .map_err(ApiError::from)?;
            Ok(Response::json(200, &Json::obj([("outcomes", bulk_json(&outcomes))])).into())
        }
        ("POST", "/fleet/upgrades") => {
            token(state, req)?;
            let body = parse_body(&req.body)?;
            let source = need_str(&body, "source")?.to_string();
            let name = need_str(&body, "name")?.to_string();
            let stream = state
                .exec()
                .begin_upgrade(source, name)
                .map_err(ApiError::from)?
                .map_err(ApiError::from)?;
            Ok(Reply::Stream(stream))
        }
        ("POST", "/fleet/uninstall") => {
            token(state, req)?;
            let body = parse_body(&req.body)?;
            let app = need_str(&body, "app")?.to_string();
            let outcome = state.exec().force_uninstall(app).map_err(ApiError::from)?;
            Ok(Response::json(200, &force_uninstall_json(&outcome)).into())
        }
        (method, path) if path.starts_with("/homes/") => {
            let (id, action) = home_path(path)
                .ok_or_else(|| ApiError::new(404, "no_route", format!("no route {path}")))?;
            home_route(state, req, method, id, action)
        }
        (_, path) => Err(ApiError::new(404, "no_route", format!("no route {path}"))),
    }
}

fn home_route(
    state: &AppState,
    req: &Request,
    method: &str,
    id: HomeId,
    action: Option<&str>,
) -> Result<Reply, ApiError> {
    owned_home(state, req, id)?;
    let exec = state.exec();
    match (method, action) {
        ("GET", None) => {
            let apps = exec
                .run_on_home(id, move |fleet| fleet.with_home(id, |h| h.installed_apps()))
                .map_err(ApiError::from)?
                .map_err(ApiError::from)?;
            Ok(Response::json(
                200,
                &Json::obj([
                    ("home", Json::Num(id.raw() as i64)),
                    ("apps", Json::Arr(apps.into_iter().map(Json::Str).collect())),
                ]),
            )
            .into())
        }
        ("DELETE", None) => {
            exec.run_on_home(id, move |fleet| fleet.remove_home(id))
                .map_err(ApiError::from)?
                .map_err(ApiError::from)?;
            if let Some(tok) = req.header(SESSION_HEADER) {
                state.sessions.disown(tok, id);
            }
            Ok(Response::empty(204).into())
        }
        ("POST", Some("check")) => {
            let body = parse_body(&req.body)?;
            let app = need_str(&body, "app")?.to_string();
            let report = exec
                .run_on_home(id, move |fleet| fleet.check_install(id, &app))
                .map_err(ApiError::from)?
                .map_err(ApiError::from)?;
            Ok(Response::json(200, &install_report_json(&report)).into())
        }
        ("POST", Some(verb @ ("install" | "upgrade"))) => {
            let body = parse_body(&req.body)?;
            let source = need_str(&body, "source")?.to_string();
            let name = need_str(&body, "name")?.to_string();
            let upgrade = verb == "upgrade";
            let report = exec
                .run_on_home(id, move |fleet| {
                    if upgrade {
                        fleet.upgrade_app(id, &source, &name, None)
                    } else {
                        fleet.install_app(id, &source, &name, None)
                    }
                })
                .map_err(ApiError::from)?
                .map_err(ApiError::from)?;
            let rendered = install_report_json(&report);
            if !report.installed {
                // Dirty verdict: stash the full report server-side so the
                // confirm route needs only the app name.
                if let Some(tok) = req.header(SESSION_HEADER) {
                    state.sessions.stash_pending(tok, id, report);
                }
            }
            Ok(Response::json(200, &rendered).into())
        }
        ("POST", Some("confirm")) => {
            let body = parse_body(&req.body)?;
            let app = need_str(&body, "app")?;
            let tok = req.header(SESSION_HEADER).unwrap_or_default();
            let pending = state.sessions.take_pending(tok, id, app).ok_or_else(|| {
                ApiError::new(
                    409,
                    "nothing_pending",
                    format!("no pending report for `{app}` on {id}"),
                )
            })?;
            let confirmed = exec
                .run_on_home(id, move |fleet| fleet.confirm_install(id, pending))
                .map_err(ApiError::from)?
                .map_err(ApiError::from)?;
            Ok(Response::json(200, &install_report_json(&confirmed)).into())
        }
        ("POST", Some("uninstall")) => {
            let body = parse_body(&req.body)?;
            let app = need_str(&body, "app")?.to_string();
            let report = exec
                .run_on_home(id, move |fleet| fleet.uninstall_app(id, &app))
                .map_err(ApiError::from)?
                .map_err(ApiError::from)?;
            Ok(Response::json(200, &uninstall_report_json(&report)).into())
        }
        (_, action) => Err(ApiError::new(
            404,
            "no_route",
            format!("no route /homes/{{id}}/{}", action.unwrap_or("")),
        )),
    }
}

/// The health probe body and the verdict behind it: `true` means fully
/// serviceable (journal active or absent, no poisoned shard). Queue
/// saturation is reported but does not fail readiness — a full queue
/// already answers 429 per request and drains on its own.
fn health_json(state: &AppState) -> (bool, Json) {
    let exec = state.exec();
    let fleet = exec.fleet();
    let poisoned = fleet.poisoned_shards();
    let capacity = exec.queue_capacity();
    let max_depth = exec
        .shard_depths()
        .into_iter()
        .chain([exec.store_depth()])
        .max()
        .unwrap_or(0);
    let (journal_json, quarantined) = match state.journal() {
        None => (Json::obj([("enabled", Json::Bool(false))]), false),
        Some(journal) => match journal.state() {
            JournalState::Active => (
                Json::obj([
                    ("enabled", Json::Bool(true)),
                    ("state", Json::str("active")),
                ]),
                false,
            ),
            JournalState::Quarantined {
                durable_offset,
                reason,
            } => (
                Json::obj([
                    ("enabled", Json::Bool(true)),
                    ("state", Json::str("quarantined")),
                    ("durable_offset", Json::Num(durable_offset as i64)),
                    ("reason", Json::str(reason)),
                ]),
                true,
            ),
        },
    };
    let healthy = !quarantined && poisoned == 0;
    let body = Json::obj([
        ("status", Json::str(if healthy { "ok" } else { "degraded" })),
        ("journal", journal_json),
        ("poisoned_shards", Json::Num(poisoned as i64)),
        (
            "queue",
            Json::obj([
                ("capacity", Json::Num(capacity as i64)),
                ("max_depth", Json::Num(max_depth as i64)),
                ("saturated", Json::Bool(max_depth >= capacity)),
            ]),
        ),
    ]);
    (healthy, body)
}

fn stats_json(state: &AppState) -> Json {
    let exec = state.exec();
    let fleet = exec.fleet();
    let capacity = exec.queue_capacity() as i64;
    let depths = exec.shard_depths();
    let occupancy = exec.shard_occupancy();
    Json::obj([
        ("homes", Json::Num(fleet.len() as i64)),
        ("shards", Json::Num(fleet.shard_count() as i64)),
        (
            "store_apps",
            Json::Num(fleet.store().app_names().len() as i64),
        ),
        ("sessions", Json::Num(state.sessions.len() as i64)),
        (
            "shard_queue_depths",
            Json::Arr(depths.iter().map(|d| Json::Num(*d as i64)).collect()),
        ),
        ("store_queue_depth", Json::Num(exec.store_depth() as i64)),
        (
            "shard_queues",
            Json::Arr(
                depths
                    .iter()
                    .zip(occupancy.iter())
                    .map(|(depth, busy)| {
                        Json::obj([
                            ("depth", Json::Num(*depth as i64)),
                            ("capacity", Json::Num(capacity)),
                            ("busy", Json::Bool(*busy)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "store_queue",
            Json::obj([
                ("depth", Json::Num(exec.store_depth() as i64)),
                ("capacity", Json::Num(capacity)),
                ("busy_workers", Json::Num(exec.store_busy_workers() as i64)),
            ]),
        ),
        ("telemetry", Json::Bool(state.telemetry.is_some())),
        ("journal", Json::Bool(state.journal.is_some())),
    ])
}
