//! The JSON wire format: report encodings and the error taxonomy mapping.
//!
//! Everything rides on [`hg_rules::json::Json`] — the same hand-rolled
//! codec rule files and snapshots use — so the API layer introduces no
//! second JSON dialect. Every [`HgError`] maps to one HTTP status
//! ([`ApiError::from`]), so a client can switch on status alone and read
//! the machine-readable `code` for the exact variant.

use hg_detector::{HotPair, Threat};
use hg_rules::json::{Json, JsonError};
use hg_service::{
    BulkOutcomes, ForceUninstall, HgError, InstallReport, ShardRollout, UninstallReport,
    UpgradeRollout,
};

/// A route failure: the status to answer with, a stable machine-readable
/// code, and a human-readable message.
#[derive(Debug)]
pub struct ApiError {
    /// HTTP status.
    pub status: u16,
    /// Stable error code (`unknown_home`, `queue_full`, …).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    /// A fresh error.
    pub fn new(status: u16, code: &'static str, message: impl Into<String>) -> ApiError {
        ApiError {
            status,
            code,
            message: message.into(),
        }
    }

    /// A 400 for a structurally bad request body.
    pub fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError::new(400, "bad_request", message)
    }

    /// The JSON error body every failed route answers with.
    pub fn body(&self) -> Json {
        Json::obj([(
            "error",
            Json::obj([
                ("code", Json::str(self.code)),
                ("message", Json::str(&self.message)),
            ]),
        )])
    }
}

impl From<HgError> for ApiError {
    fn from(error: HgError) -> ApiError {
        hg_error_ref_to_api(&error)
    }
}

impl From<JsonError> for ApiError {
    fn from(error: JsonError) -> ApiError {
        ApiError::new(400, "bad_json", error.to_string())
    }
}

impl From<crate::exec::ExecError> for ApiError {
    fn from(error: crate::exec::ExecError) -> ApiError {
        match error {
            crate::exec::ExecError::Busy { depth } => ApiError::new(
                429,
                "queue_full",
                format!("shard queue full ({depth} jobs deep)"),
            ),
            crate::exec::ExecError::Gone => {
                ApiError::new(503, "executor_gone", "executor stopped or job died")
            }
        }
    }
}

fn threat_json(threat: &Threat) -> Json {
    Json::obj([
        ("kind", Json::str(threat.kind.acronym())),
        (
            "source",
            Json::str(format!("{}#{}", threat.source.app, threat.source.index)),
        ),
        (
            "target",
            Json::str(format!("{}#{}", threat.target.app, threat.target.index)),
        ),
        (
            "actuator",
            threat
                .actuator
                .as_deref()
                .map(Json::str)
                .unwrap_or(Json::Null),
        ),
        ("note", Json::str(&threat.note)),
    ])
}

/// Encodes an install/upgrade report. `pending` mirrors `!installed`: a
/// dirty verdict the caller must confirm (the full report is stashed
/// server-side in the session).
pub fn install_report_json(report: &InstallReport) -> Json {
    Json::obj([
        ("app", Json::str(&report.app)),
        ("installed", Json::Bool(report.installed)),
        ("pending", Json::Bool(!report.installed)),
        (
            "replaces",
            report
                .replaces
                .as_deref()
                .map(Json::str)
                .unwrap_or(Json::Null),
        ),
        (
            "threats",
            Json::Arr(report.threats.iter().map(threat_json).collect()),
        ),
        ("chains", Json::Num(report.chains.len() as i64)),
        (
            "dropped_ranks",
            Json::Arr(
                report
                    .dropped_ranks
                    .iter()
                    .map(|id| Json::str(format!("{}#{}", id.app, id.index)))
                    .collect(),
            ),
        ),
    ])
}

/// Encodes an uninstall report.
pub fn uninstall_report_json(report: &UninstallReport) -> Json {
    Json::obj([
        ("app", Json::str(&report.app)),
        (
            "removed_rules",
            Json::Num(report.removed_rules.len() as i64),
        ),
        ("retired_threats", Json::Num(report.retired_threats as i64)),
        (
            "dropped_ranks",
            Json::Num(report.dropped_ranks.len() as i64),
        ),
    ])
}

/// Encodes per-home bulk outcomes, in request order.
pub fn bulk_json(outcomes: &BulkOutcomes) -> Json {
    Json::Arr(
        outcomes
            .iter()
            .map(|(id, outcome)| match outcome {
                Ok(report) => Json::obj([
                    ("home", Json::Num(id.raw() as i64)),
                    ("report", install_report_json(report)),
                ]),
                Err(error) => {
                    let mapped = hg_error_ref_to_api(error);
                    Json::obj([
                        ("home", Json::Num(id.raw() as i64)),
                        (
                            "error",
                            mapped.body().get("error").cloned().unwrap_or(Json::Null),
                        ),
                    ])
                }
            })
            .collect(),
    )
}

/// Maps a borrowed [`HgError`] (bulk outcomes own their errors) to the
/// same status/code an owned conversion would produce.
fn hg_error_ref_to_api(error: &HgError) -> ApiError {
    let (status, code) = match error {
        HgError::UnknownHome(_) => (404, "unknown_home"),
        HgError::UnknownApp(_) => (404, "unknown_app"),
        HgError::AlreadyInstalled(_) => (409, "already_installed"),
        HgError::UnconfirmedInstall(_) => (409, "unconfirmed_install"),
        HgError::UpgradeRenames { .. } => (409, "upgrade_renames"),
        HgError::Extract { .. } => (422, "extract_failed"),
        HgError::Parse { .. } => (500, "corrupt_rule_file"),
        HgError::Poisoned(_) => (503, "poisoned"),
        HgError::Snapshot(_) => (400, "bad_snapshot"),
        HgError::Journal(_) => (500, "journal_failed"),
        // Retryable: nothing was applied; heal the journal and resend.
        HgError::Degraded(_) => (503, "degraded"),
        _ => (500, "internal"),
    };
    ApiError::new(status, code, error.to_string())
}

/// Encodes one shard's streamed rollout progress line.
pub fn shard_part_json(shard: usize, part: &ShardRollout) -> Json {
    Json::obj([
        ("shard", Json::Num(shard as i64)),
        ("poisoned", Json::Bool(part.poisoned)),
        ("refused", Json::Bool(part.refused)),
        (
            "upgraded",
            Json::Arr(
                part.upgraded
                    .iter()
                    .map(|id| Json::Num(id.raw() as i64))
                    .collect(),
            ),
        ),
        (
            "pending",
            Json::Arr(
                part.pending
                    .iter()
                    .map(|(id, _)| Json::Num(id.raw() as i64))
                    .collect(),
            ),
        ),
        ("skipped", Json::Num(part.skipped as i64)),
        ("failed", Json::Num(part.failed.len() as i64)),
    ])
}

/// Encodes the merged fleet-wide rollout.
pub fn rollout_json(rollout: &UpgradeRollout) -> Json {
    Json::obj([
        ("app", Json::str(&rollout.app)),
        (
            "upgraded",
            Json::Arr(
                rollout
                    .upgraded
                    .iter()
                    .map(|id| Json::Num(id.raw() as i64))
                    .collect(),
            ),
        ),
        (
            "pending",
            Json::Arr(
                rollout
                    .pending
                    .iter()
                    .map(|(id, _)| Json::Num(id.raw() as i64))
                    .collect(),
            ),
        ),
        ("skipped", Json::Num(rollout.skipped as i64)),
        (
            "failed",
            Json::Arr(
                rollout
                    .failed
                    .iter()
                    .map(|(id, e)| {
                        Json::obj([
                            ("home", Json::Num(id.raw() as i64)),
                            ("message", Json::str(e.to_string())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("poisoned_shards", Json::Num(rollout.poisoned_shards as i64)),
        ("refused_shards", Json::Num(rollout.refused_shards as i64)),
        (
            "journal_lapses",
            Json::Num(rollout.journal_lapses.len() as i64),
        ),
    ])
}

/// Encodes a fleet-wide forced uninstall outcome.
pub fn force_uninstall_json(outcome: &ForceUninstall) -> Json {
    Json::obj([
        ("app", Json::str(&outcome.app)),
        (
            "removed",
            Json::Arr(
                outcome
                    .removed
                    .iter()
                    .map(|(id, report)| {
                        Json::obj([
                            ("home", Json::Num(id.raw() as i64)),
                            ("report", uninstall_report_json(report)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("skipped", Json::Num(outcome.skipped as i64)),
        ("failed", Json::Num(outcome.failed.len() as i64)),
        ("poisoned_shards", Json::Num(outcome.poisoned_shards as i64)),
        ("refused_shards", Json::Num(outcome.refused_shards as i64)),
        (
            "journal_lapses",
            Json::Num(outcome.journal_lapses.len() as i64),
        ),
        ("store_retired", Json::Bool(outcome.store_retired)),
        (
            "store_error",
            outcome.store_error.as_ref().map_or(Json::Null, Json::str),
        ),
    ])
}

/// Encodes the verdict-cache hot-pair leaderboard (the
/// `/analytics/hot-pairs` body): which app pairs the fleet re-checks
/// most, and how much interference they carry.
pub fn hot_pairs_json(pairs: &[HotPair]) -> Json {
    Json::Arr(
        pairs
            .iter()
            .map(|pair| {
                Json::obj([
                    ("apps", Json::Arr(pair.apps.iter().map(Json::str).collect())),
                    ("hits", Json::Num(pair.hits as i64)),
                    ("entries", Json::Num(pair.entries as i64)),
                    ("threats", Json::Num(pair.threats as i64)),
                ])
            })
            .collect(),
    )
}

/// Parses a request body as a JSON object.
///
/// # Errors
///
/// A 400 [`ApiError`] for non-UTF-8, non-JSON or non-object bodies.
pub fn parse_body(body: &[u8]) -> Result<Json, ApiError> {
    let text = std::str::from_utf8(body).map_err(|_| ApiError::bad_request("body is not UTF-8"))?;
    if text.trim().is_empty() {
        return Err(ApiError::bad_request("empty body where JSON is required"));
    }
    let json = Json::parse(text)?;
    if !matches!(json, Json::Obj(_)) {
        return Err(ApiError::bad_request("body must be a JSON object"));
    }
    Ok(json)
}

/// Extracts a required string field.
///
/// # Errors
///
/// A 400 [`ApiError`] naming the missing/mistyped field.
pub fn need_str<'a>(body: &'a Json, field: &str) -> Result<&'a str, ApiError> {
    body.get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::bad_request(format!("missing string field `{field}`")))
}

/// Extracts a required array of home ids.
///
/// # Errors
///
/// A 400 [`ApiError`] naming the missing/mistyped field.
pub fn need_home_ids(body: &Json, field: &str) -> Result<Vec<hg_service::HomeId>, ApiError> {
    let arr = body
        .get(field)
        .and_then(Json::as_arr)
        .ok_or_else(|| ApiError::bad_request(format!("missing array field `{field}`")))?;
    arr.iter()
        .map(|v| {
            v.as_num()
                .filter(|n| *n >= 0)
                .map(|n| hg_service::HomeId::new(n as u64))
                .ok_or_else(|| {
                    ApiError::bad_request(format!("`{field}` entries must be non-negative ids"))
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_hg_error_variant_maps_to_a_distinct_intentional_status() {
        use hg_service::HomeId;
        let cases: Vec<(HgError, u16)> = vec![
            (HgError::UnknownHome(HomeId::new(1)), 404),
            (HgError::UnknownApp("X".into()), 404),
            (HgError::AlreadyInstalled("X".into()), 409),
            (HgError::UnconfirmedInstall("X".into()), 409),
            (
                HgError::UpgradeRenames {
                    installed: "A".into(),
                    new: "B".into(),
                },
                409,
            ),
            (
                HgError::Parse {
                    app: "X".into(),
                    detail: "d".into(),
                },
                500,
            ),
            (HgError::Poisoned("shard"), 503),
            (HgError::Snapshot("bad".into()), 400),
            (HgError::Journal("segment 3 torn".into()), 500),
            (HgError::Degraded("journal quarantined".into()), 503),
        ];
        for (error, status) in cases {
            let api = ApiError::from(error);
            assert_eq!(api.status, status, "{}", api.message);
            assert!(api.body().get("error").is_some());
        }
    }

    #[test]
    fn body_parsing_refuses_garbage_with_400() {
        assert_eq!(parse_body(b"{\"a\":1}").unwrap().as_num(), None);
        assert_eq!(parse_body(&[0xff, 0xfe]).unwrap_err().status, 400);
        assert_eq!(parse_body(b"not json").unwrap_err().status, 400);
        assert_eq!(parse_body(b"[1,2]").unwrap_err().status, 400);
        assert_eq!(parse_body(b"").unwrap_err().status, 400);
        let body = parse_body(b"{\"app\": \"X\", \"homes\": [1, 2]}").unwrap();
        assert_eq!(need_str(&body, "app").unwrap(), "X");
        assert_eq!(need_str(&body, "ghost").unwrap_err().status, 400);
        assert_eq!(need_home_ids(&body, "homes").unwrap().len(), 2);
        assert_eq!(need_home_ids(&body, "app").unwrap_err().status, 400);
    }
}
