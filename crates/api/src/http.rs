//! A minimal, strict HTTP/1.1 layer over `std::net`.
//!
//! Hand-rolled for the same reason `hg_rules::json` is: no external
//! dependencies. The parser is deliberately narrow — `GET`/`POST`/`DELETE`
//! only, `Content-Length` bodies only (no `Transfer-Encoding` on
//! requests), hard limits on line length, header count and body size —
//! and every violation maps to a **typed 4xx** rather than a panic or an
//! unbounded read. Responses support keep-alive and, for streamed
//! rollouts, `Transfer-Encoding: chunked` via [`ChunkedWriter`].

use std::io::{BufRead, Write};

/// Parser hard limits. Exceeding any of them is a typed client error,
/// never an allocation proportional to attacker input.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Longest accepted request line (method + path + version), bytes.
    pub max_request_line: usize,
    /// Longest accepted single header line, bytes.
    pub max_header_line: usize,
    /// Most headers accepted on one request.
    pub max_headers: usize,
    /// Largest accepted `Content-Length`, bytes.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_request_line: 4096,
            max_header_line: 4096,
            max_headers: 64,
            max_body: 1 << 20,
        }
    }
}

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET` / `POST` / `DELETE`).
    pub method: String,
    /// The request path, query string stripped.
    pub path: String,
    /// The raw query string (text after `?`, empty when absent).
    pub query: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a (lower-case) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query parameter (`?name=value&…`). A bare `name`
    /// with no `=` yields `Some("")`. No percent-decoding — this API's
    /// parameter values are all token-shaped.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
            (key == name).then_some(value)
        })
    }
}

/// A request the parser refused, mapped to the HTTP status the connection
/// handler answers with before closing.
#[derive(Debug)]
pub struct ParseError {
    /// Response status (4xx/5xx).
    pub status: u16,
    /// Human-readable refusal reason (becomes the JSON error message).
    pub message: String,
}

impl ParseError {
    fn new(status: u16, message: impl Into<String>) -> ParseError {
        ParseError {
            status,
            message: message.into(),
        }
    }
}

/// Reads one line (up to CRLF or LF) with a hard byte cap. `Ok(None)`
/// means clean EOF before any byte.
fn read_limited_line(
    stream: &mut impl BufRead,
    cap: usize,
    what: &str,
    over_status: u16,
) -> Result<Option<String>, ParseError> {
    let mut line: Vec<u8> = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match std::io::Read::read(stream, &mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(ParseError::new(400, format!("truncated {what}")));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let text = String::from_utf8(line)
                        .map_err(|_| ParseError::new(400, format!("{what} is not UTF-8")))?;
                    return Ok(Some(text));
                }
                if line.len() >= cap {
                    return Err(ParseError::new(
                        over_status,
                        format!("{what} exceeds {cap} bytes"),
                    ));
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(ParseError::new(408, format!("read of {what} failed: {e}"))),
        }
    }
}

/// Reads and validates one request. `Ok(None)` is a clean close (the peer
/// hung up between requests on a keep-alive connection).
///
/// # Errors
///
/// A [`ParseError`] carrying the 4xx/5xx status to answer with: `400` for
/// malformed framing, `405` for unknown methods, `408` for read timeouts,
/// `413`/`414`/`431` for exceeded limits, `501` for request bodies framed
/// any way other than `Content-Length`, `505` for unknown HTTP versions.
pub fn read_request(
    stream: &mut impl BufRead,
    limits: &Limits,
) -> Result<Option<Request>, ParseError> {
    let Some(line) = read_limited_line(stream, limits.max_request_line, "request line", 414)?
    else {
        return Ok(None);
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(ParseError::new(400, "malformed request line")),
    };
    if !matches!(method, "GET" | "POST" | "DELETE") {
        return Err(ParseError::new(405, format!("method {method} not allowed")));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(ParseError::new(505, format!("unsupported {version}"))),
    };
    if !target.starts_with('/') {
        return Err(ParseError::new(400, "request target must be origin-form"));
    }
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path.to_string(), query.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    loop {
        let Some(line) = read_limited_line(stream, limits.max_header_line, "header line", 431)?
        else {
            return Err(ParseError::new(400, "truncated header block"));
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(ParseError::new(
                431,
                format!("more than {} headers", limits.max_headers),
            ));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::new(400, "header line without a colon"));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::new(400, "malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let find = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    if find("transfer-encoding").is_some() {
        return Err(ParseError::new(
            501,
            "request bodies must be Content-Length framed",
        ));
    }
    let body_len = match find("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| ParseError::new(400, format!("bad content-length `{v}`")))?,
    };
    if body_len > limits.max_body {
        return Err(ParseError::new(
            413,
            format!("body of {body_len} bytes exceeds {}", limits.max_body),
        ));
    }
    let mut body = vec![0u8; body_len];
    std::io::Read::read_exact(stream, &mut body)
        .map_err(|e| ParseError::new(408, format!("body shorter than content-length: {e}")))?;

    let keep_alive = match find("connection").map(str::to_ascii_lowercase) {
        Some(c) if c.contains("close") => false,
        Some(c) if c.contains("keep-alive") => true,
        _ => http11,
    };
    Ok(Some(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
        keep_alive,
    }))
}

/// Reason phrase for the statuses this API emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// A buffered response: status, extra headers, body.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the framing ones (`content-length`,
    /// `connection`, `content-type`).
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: &hg_rules::json::Json) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.to_text().into_bytes(),
        }
    }

    /// An empty response (e.g. 204).
    pub fn empty(status: u16) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serializes the response, framing with `Content-Length` and the
    /// connection disposition.
    ///
    /// # Errors
    ///
    /// Propagates the transport's I/O errors.
    pub fn write_to(&self, stream: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, reason(self.status));
        if !self
            .headers
            .iter()
            .any(|(name, _)| name.eq_ignore_ascii_case("content-type"))
        {
            head.push_str("content-type: application/json\r\n");
        }
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("content-length: {}\r\n", self.body.len()));
        head.push_str(if keep_alive {
            "connection: keep-alive\r\n\r\n"
        } else {
            "connection: close\r\n\r\n"
        });
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Writes a `Transfer-Encoding: chunked` response incrementally — the
/// transport for streamed rollout progress (one JSON line per chunk).
pub struct ChunkedWriter<'a, W: Write> {
    stream: &'a mut W,
}

impl<'a, W: Write> ChunkedWriter<'a, W> {
    /// Writes the response head and returns the chunk writer.
    ///
    /// # Errors
    ///
    /// Propagates the transport's I/O errors.
    pub fn begin(stream: &'a mut W, status: u16) -> std::io::Result<ChunkedWriter<'a, W>> {
        let head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: application/x-ndjson\r\ntransfer-encoding: chunked\r\nconnection: close\r\n\r\n",
            status,
            reason(status)
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Emits one chunk and flushes it (each progress line must reach the
    /// client before the next shard finishes, not sit in a buffer).
    ///
    /// # Errors
    ///
    /// Propagates the transport's I/O errors.
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the chunk stream.
    ///
    /// # Errors
    ///
    /// Propagates the transport's I/O errors.
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Option<Request>, ParseError> {
        read_request(&mut BufReader::new(raw), &Limits::default())
    }

    #[test]
    fn parses_a_full_post() {
        let req =
            parse(b"POST /homes?verbose=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\n{}")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/homes");
        assert_eq!(req.query, "verbose=1");
        assert_eq!(req.query_param("verbose"), Some("1"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"{}");
        assert!(req.keep_alive);
    }

    #[test]
    fn refusals_are_typed() {
        assert_eq!(parse(b"PATCH / HTTP/1.1\r\n\r\n").unwrap_err().status, 405);
        assert_eq!(parse(b"GET / HTTP/2\r\n\r\n").unwrap_err().status, 505);
        assert_eq!(parse(b"GET foo HTTP/1.1\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                .unwrap_err()
                .status,
            501
        );
        assert_eq!(
            parse(format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(5000)).as_bytes())
                .unwrap_err()
                .status,
            414
        );
        let huge = format!("GET / HTTP/1.1\r\nx: {}\r\n\r\n", "v".repeat(5000));
        assert_eq!(parse(huge.as_bytes()).unwrap_err().status, 431);
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n")
                .unwrap_err()
                .status,
            413
        );
        // Clean EOF before any byte: a closed keep-alive, not an error.
        assert!(parse(b"").unwrap().is_none());
        // Truncated mid-line: an error, not a hang.
        assert_eq!(parse(b"GET /ho").unwrap_err().status, 400);
    }

    #[test]
    fn connection_disposition_follows_version_and_header() {
        let http10 = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!http10.keep_alive);
        let close = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!close.keep_alive);
    }
}
