//! The per-shard work-queue executor.
//!
//! A [`FleetExec`] owns one bounded queue and one dedicated worker thread
//! per fleet shard, plus a small pool draining a separate queue of
//! store-level (fleet-wide) operations. Every job routes by
//! [`Fleet::shard_of`], so two jobs against the same home are serialized
//! on its shard's worker in submission order while jobs against different
//! shards run concurrently — the same independence the shard locks give,
//! but with **admission control**: a full queue rejects at submission
//! time ([`ExecError::Busy`]) instead of queueing unboundedly, which is
//! what the HTTP layer turns into `429 Retry-After`.
//!
//! Fleet-wide sweeps decompose onto the same machinery: a coordinator job
//! on the store pool partitions the request, pushes one per-shard unit
//! ([`Fleet::upgrade_shard`] / [`Fleet::uninstall_shard`] /
//! [`Fleet::install_group`]) to each shard's worker, and merges the parts
//! with the fleet's own deterministic merge helpers — so a queue-dispatched
//! sweep is report-identical to [`Fleet`]'s serial shard walk by
//! construction. Shard workers never wait on the store queue, so the
//! coordinator blocking on shard space cannot deadlock.

use hg_service::{
    BulkOutcomes, Fleet, ForceUninstall, HgError, HomeId, ShardRollout, UpgradeRollout,
};
use hg_telemetry::TelemetryEvent;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Why a submission was not accepted.
#[derive(Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The target queue is at capacity — retry later. Carries the queue
    /// depth observed at rejection time.
    Busy {
        /// Jobs waiting in the refused queue when the push was rejected.
        depth: usize,
    },
    /// The executor has been stopped, or the job died before producing a
    /// result (its worker caught a panic that poisoned the home's shard).
    Gone,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Busy { depth } => write!(f, "queue full ({depth} jobs deep)"),
            ExecError::Gone => write!(f, "executor stopped or job died"),
        }
    }
}

impl std::error::Error for ExecError {}

type Job = Box<dyn FnOnce(&Fleet) + Send>;

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// A bounded multi-producer work queue drained by dedicated workers.
///
/// `try_push` never blocks (admission control for the network edge);
/// `push` blocks until space frees (internal fan-out from a sweep
/// coordinator, whose consumers are guaranteed to drain).
pub struct WorkQueue {
    state: Mutex<QueueState>,
    /// Signaled when a job arrives or the queue closes (workers wait).
    ready: Condvar,
    /// Signaled when a job is taken (blocking producers wait).
    space: Condvar,
    capacity: usize,
}

impl WorkQueue {
    fn new(capacity: usize) -> WorkQueue {
        WorkQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Jobs currently waiting (a backpressure signal; racy by nature).
    pub fn depth(&self) -> usize {
        self.state.lock().map(|s| s.jobs.len()).unwrap_or(0)
    }

    /// Maximum number of waiting jobs before submissions are refused.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn try_push(&self, job: Job) -> Result<(), ExecError> {
        let mut state = self.state.lock().map_err(|_| ExecError::Gone)?;
        if state.closed {
            return Err(ExecError::Gone);
        }
        if state.jobs.len() >= self.capacity {
            return Err(ExecError::Busy {
                depth: state.jobs.len(),
            });
        }
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    fn push(&self, job: Job) -> Result<(), ExecError> {
        let mut state = self.state.lock().map_err(|_| ExecError::Gone)?;
        loop {
            if state.closed {
                return Err(ExecError::Gone);
            }
            if state.jobs.len() < self.capacity {
                state.jobs.push_back(job);
                drop(state);
                self.ready.notify_one();
                return Ok(());
            }
            // Loop re-checks: spurious wakeups and close races are benign.
            state = self.space.wait(state).map_err(|_| ExecError::Gone)?;
        }
    }

    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().ok()?;
        loop {
            if let Some(job) = state.jobs.pop_front() {
                drop(state);
                self.space.notify_one();
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).ok()?;
        }
    }

    fn close(&self) {
        if let Ok(mut state) = self.state.lock() {
            state.closed = true;
        }
        self.ready.notify_all();
        self.space.notify_all();
    }
}

/// Tuning knobs for [`FleetExec::start`].
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Bound of each per-shard queue and of the store-operation queue.
    pub queue_capacity: usize,
    /// Workers draining the store-operation queue (sweep coordinators,
    /// snapshot work). At least 1.
    pub store_workers: usize,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            queue_capacity: 64,
            store_workers: 2,
        }
    }
}

/// The canonical concurrent dispatch path onto a [`Fleet`]: one bounded
/// queue + dedicated worker per shard, plus a store-operation pool. See
/// the [module docs](self) for the dispatch model.
pub struct FleetExec {
    fleet: Arc<Fleet>,
    shard_queues: Vec<Arc<WorkQueue>>,
    store_queue: Arc<WorkQueue>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    stopped: AtomicBool,
    /// Per-shard-worker in-flight job count (0 or 1 — one worker per
    /// shard): the occupancy gauge `GET /stats` samples.
    shard_busy: Vec<Arc<AtomicUsize>>,
    /// Store-pool workers currently running a job.
    store_busy: Arc<AtomicUsize>,
}

impl FleetExec {
    /// Spawns the workers (one per fleet shard + `config.store_workers`)
    /// and returns the executor handle.
    pub fn start(fleet: Arc<Fleet>, config: ExecConfig) -> Arc<FleetExec> {
        let shard_queues: Vec<Arc<WorkQueue>> = (0..fleet.shard_count())
            .map(|_| Arc::new(WorkQueue::new(config.queue_capacity)))
            .collect();
        let store_queue = Arc::new(WorkQueue::new(config.queue_capacity));
        let shard_busy: Vec<Arc<AtomicUsize>> = (0..fleet.shard_count())
            .map(|_| Arc::new(AtomicUsize::new(0)))
            .collect();
        let store_busy = Arc::new(AtomicUsize::new(0));
        let mut workers = Vec::new();
        for (index, queue) in shard_queues.iter().enumerate() {
            workers.push(Self::spawn_worker(
                format!("hg-api-shard-{index}"),
                fleet.clone(),
                queue.clone(),
                shard_busy[index].clone(),
            ));
        }
        for index in 0..config.store_workers.max(1) {
            workers.push(Self::spawn_worker(
                format!("hg-api-store-{index}"),
                fleet.clone(),
                store_queue.clone(),
                store_busy.clone(),
            ));
        }
        Arc::new(FleetExec {
            fleet,
            shard_queues,
            store_queue,
            workers: Mutex::new(workers),
            stopped: AtomicBool::new(false),
            shard_busy,
            store_busy,
        })
    }

    fn spawn_worker(
        name: String,
        fleet: Arc<Fleet>,
        queue: Arc<WorkQueue>,
        busy: Arc<AtomicUsize>,
    ) -> JoinHandle<()> {
        std::thread::Builder::new()
            .name(name)
            .spawn(move || {
                while let Some(job) = queue.pop() {
                    busy.fetch_add(1, Ordering::Relaxed);
                    // A panicking job poisons the shard it held (reported
                    // as `HgError::Poisoned` by later fleet calls); the
                    // worker itself must keep draining its queue.
                    let _ = catch_unwind(AssertUnwindSafe(|| job(&fleet)));
                    busy.fetch_sub(1, Ordering::Relaxed);
                }
            })
            .expect("spawning an executor worker")
    }

    /// The fleet this executor dispatches onto.
    pub fn fleet(&self) -> &Arc<Fleet> {
        &self.fleet
    }

    /// Current depth of every per-shard queue, by shard index.
    pub fn shard_depths(&self) -> Vec<usize> {
        self.shard_queues.iter().map(|q| q.depth()).collect()
    }

    /// Current depth of the store-operation queue.
    pub fn store_depth(&self) -> usize {
        self.store_queue.depth()
    }

    /// Whether each shard's dedicated worker is currently running a job,
    /// by shard index (a point-in-time occupancy sample; racy by nature).
    pub fn shard_occupancy(&self) -> Vec<bool> {
        self.shard_busy
            .iter()
            .map(|b| b.load(Ordering::Relaxed) > 0)
            .collect()
    }

    /// Store-pool workers currently running a job.
    pub fn store_busy_workers(&self) -> usize {
        self.store_busy.load(Ordering::Relaxed)
    }

    /// The bound every queue (per-shard and store) was built with.
    pub fn queue_capacity(&self) -> usize {
        self.store_queue.capacity()
    }

    /// Publishes a [`TelemetryEvent::QueueSaturated`] for a refused
    /// submission (no-op when the fleet has no bus attached). `shard` is
    /// the shard index, or the shard count for the store queue.
    fn publish_saturated(&self, queue: &'static str, shard: usize, depth: usize) {
        if let Some(bus) = self.fleet.telemetry() {
            bus.publish(TelemetryEvent::QueueSaturated {
                queue,
                shard: shard as u64,
                depth: depth as u64,
            });
        }
    }

    /// Submits `f` to the worker owning `id`'s shard and blocks for its
    /// result. Jobs for the same shard run in submission order.
    ///
    /// # Errors
    ///
    /// [`ExecError::Busy`] when the shard's queue is full (nothing was
    /// enqueued); [`ExecError::Gone`] when the executor is stopped or the
    /// job panicked before answering.
    pub fn run_on_home<R>(
        &self,
        id: HomeId,
        f: impl FnOnce(&Fleet) -> R + Send + 'static,
    ) -> Result<R, ExecError>
    where
        R: Send + 'static,
    {
        let (tx, rx) = channel();
        let shard = self.fleet.shard_of(id);
        let queue = &self.shard_queues[shard];
        queue
            .try_push(Box::new(move |fleet| {
                let _ = tx.send(f(fleet));
            }))
            .inspect_err(|refusal| {
                if let ExecError::Busy { depth } = refusal {
                    self.publish_saturated("shard", shard, *depth);
                }
            })?;
        rx.recv().map_err(|_| ExecError::Gone)
    }

    /// Submits `f` to the store-operation pool and blocks for its result.
    ///
    /// # Errors
    ///
    /// As [`FleetExec::run_on_home`], against the store queue.
    pub fn run_on_store<R>(
        &self,
        f: impl FnOnce(&Fleet) -> R + Send + 'static,
    ) -> Result<R, ExecError>
    where
        R: Send + 'static,
    {
        let (tx, rx) = channel();
        self.store_queue
            .try_push(Box::new(move |fleet| {
                let _ = tx.send(f(fleet));
            }))
            .inspect_err(|refusal| {
                if let ExecError::Busy { depth } = refusal {
                    self.publish_saturated("store", self.fleet.shard_count(), *depth);
                }
            })?;
        rx.recv().map_err(|_| ExecError::Gone)
    }

    /// Queue-dispatched [`Fleet::install_many`]: a store-pool coordinator
    /// ingests the source once, partitions the ids by shard, runs one
    /// [`Fleet::install_group`] per shard on that shard's worker, and
    /// reassembles the outcomes in request order — exactly the serial
    /// result.
    ///
    /// # Errors
    ///
    /// Outer [`ExecError`] when the store queue refuses the coordinator;
    /// inner [`HgError::Extract`] when the source fails extraction
    /// (nothing installed anywhere).
    pub fn install_many(
        &self,
        home_ids: Vec<HomeId>,
        source: String,
        name: String,
    ) -> Result<Result<BulkOutcomes, HgError>, ExecError> {
        let queues = self.shard_queues.clone();
        self.run_on_store(move |fleet| {
            fleet.ingest_app(&source, &name)?;
            let mut groups: Vec<Vec<(usize, HomeId)>> = vec![Vec::new(); queues.len()];
            for (pos, &id) in home_ids.iter().enumerate() {
                groups[fleet.shard_of(id)].push((pos, id));
            }
            let source = Arc::new(source);
            let name = Arc::new(name);
            let (tx, rx) = channel();
            let mut submitted = 0usize;
            for (shard, group) in groups.into_iter().enumerate() {
                if group.is_empty() {
                    continue;
                }
                let (tx, source, name) = (tx.clone(), source.clone(), name.clone());
                let pushed = queues[shard].push(Box::new(move |fleet| {
                    let ids: Vec<HomeId> = group.iter().map(|&(_, id)| id).collect();
                    let outcomes = fleet.install_group(&ids, &source, &name, None);
                    let _ = tx.send((group, outcomes));
                }));
                if pushed.is_ok() {
                    submitted += 1;
                }
            }
            drop(tx);
            let mut slots: Vec<Option<(HomeId, Result<_, HgError>)>> =
                home_ids.iter().map(|_| None).collect();
            for _ in 0..submitted {
                let Ok((group, outcomes)) = rx.recv() else {
                    break;
                };
                for ((pos, _), outcome) in group.into_iter().zip(outcomes) {
                    slots[pos] = Some(outcome);
                }
            }
            Ok(slots
                .into_iter()
                .zip(&home_ids)
                .map(|(slot, &id)| {
                    // A slot stays empty only if its shard worker died
                    // mid-group (panic poisoned the shard).
                    slot.unwrap_or((id, Err(HgError::Poisoned("fleet shard"))))
                })
                .collect())
        })
    }

    /// Queue-dispatched [`Fleet::force_uninstall`]: per-shard
    /// [`Fleet::uninstall_shard`] units fanned out by a store-pool
    /// coordinator, merged with [`ForceUninstall::merge`], then the
    /// store-level purge.
    ///
    /// # Errors
    ///
    /// [`ExecError`] when the store queue refuses the coordinator.
    pub fn force_uninstall(&self, app: String) -> Result<ForceUninstall, ExecError> {
        let queues = self.shard_queues.clone();
        self.run_on_store(move |fleet| {
            let app = Arc::new(app);
            let (tx, rx) = channel();
            let mut submitted = 0usize;
            for (shard, queue) in queues.iter().enumerate() {
                let (tx, app) = (tx.clone(), app.clone());
                if queue
                    .push(Box::new(move |fleet| {
                        let _ = tx.send(fleet.uninstall_shard(shard, &app));
                    }))
                    .is_ok()
                {
                    submitted += 1;
                }
            }
            drop(tx);
            let parts: Vec<_> = (0..submitted).filter_map(|_| rx.recv().ok()).collect();
            let mut out = ForceUninstall::merge(app.as_str(), parts);
            match fleet.retire_store_app(&app) {
                Ok(retired) => out.store_retired = retired,
                Err(error) => out.store_error = Some(error.to_string()),
            }
            out
        })
    }

    /// Begins a queue-dispatched upgrade rollout, streaming per-shard
    /// progress. The new source is ingested (and a renaming submission
    /// refused) **before** any shard is touched, on the calling thread, so
    /// publication errors surface as typed failures rather than mid-stream
    /// aborts; then one [`Fleet::upgrade_shard`] unit is pushed to every
    /// shard's worker and the returned [`RolloutStream`] yields each
    /// part as it completes.
    ///
    /// # Errors
    ///
    /// Outer [`ExecError::Gone`] when the executor is stopped; inner
    /// [`HgError::Extract`] / [`HgError::UpgradeRenames`] from ingestion
    /// (no home touched). Rollouts are fleet admin operations and bypass
    /// admission control: shard pushes block for space instead of
    /// refusing.
    pub fn begin_upgrade(
        &self,
        source: String,
        name: String,
    ) -> Result<Result<RolloutStream, HgError>, ExecError> {
        if self.stopped.load(Ordering::Relaxed) {
            return Err(ExecError::Gone);
        }
        if let Err(error) = self.fleet.ingest_app_as(&source, &name) {
            return Ok(Err(error));
        }
        let source = Arc::new(source);
        let name = Arc::new(name);
        let (tx, rx) = channel();
        let mut submitted = 0usize;
        for (shard, queue) in self.shard_queues.iter().enumerate() {
            let (tx, source, app) = (tx.clone(), source.clone(), name.clone());
            if queue
                .push(Box::new(move |fleet| {
                    let _ = tx.send((shard, fleet.upgrade_shard(shard, &source, &app)));
                }))
                .is_ok()
            {
                submitted += 1;
            }
        }
        Ok(Ok(RolloutStream {
            app: name.as_str().to_string(),
            rx,
            remaining: submitted,
            parts: Vec::new(),
        }))
    }

    /// The synchronous form of [`FleetExec::begin_upgrade`]: dispatches
    /// through the queues and blocks for the fully merged rollout.
    ///
    /// # Errors
    ///
    /// As [`FleetExec::begin_upgrade`].
    pub fn propagate_upgrade(
        &self,
        source: String,
        name: String,
    ) -> Result<Result<UpgradeRollout, HgError>, ExecError> {
        Ok(self
            .begin_upgrade(source, name)?
            .map(|stream| stream.finish()))
    }

    /// Closes every queue and joins the workers. Jobs already queued are
    /// abandoned unrun (their submitters observe [`ExecError::Gone`]).
    /// Idempotent; also invoked on drop.
    pub fn stop(&self) {
        if self.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        for queue in &self.shard_queues {
            queue.close();
        }
        self.store_queue.close();
        let workers = std::mem::take(
            &mut *self
                .workers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for worker in workers {
            let _ = worker.join();
        }
    }
}

impl Drop for FleetExec {
    fn drop(&mut self) {
        self.stop();
    }
}

/// An in-flight streamed upgrade rollout: per-shard parts arrive as their
/// workers finish. Drain with [`RolloutStream::next_part`] (progress
/// reporting) and close with [`RolloutStream::finish`] for the merged
/// fleet-wide [`UpgradeRollout`] — identical to the synchronous sweep's.
pub struct RolloutStream {
    app: String,
    rx: Receiver<(usize, ShardRollout)>,
    remaining: usize,
    parts: Vec<ShardRollout>,
}

impl RolloutStream {
    /// The app being rolled out.
    pub fn app(&self) -> &str {
        &self.app
    }

    /// Shard parts not yet received.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Blocks for the next completed shard's part, or `None` when every
    /// part has been received (a shard whose worker died counts as
    /// received-empty: its homes are reported poisoned by later calls, and
    /// the stream must still terminate).
    pub fn next_part(&mut self) -> Option<(usize, &ShardRollout)> {
        while self.remaining > 0 {
            self.remaining -= 1;
            match self.rx.recv() {
                Ok((shard, part)) => {
                    self.parts.push(part);
                    let part = self.parts.last().expect("just pushed");
                    return Some((shard, part));
                }
                Err(_) => {
                    self.remaining = 0;
                }
            }
        }
        None
    }

    /// Drains any remaining parts and merges everything received into the
    /// fleet-wide rollout.
    pub fn finish(mut self) -> UpgradeRollout {
        while self.next_part().is_some() {}
        UpgradeRollout::merge(self.app.clone(), self.parts)
    }
}
