//! The telemetry hub: one bus, one registry, one collector thread.
//!
//! [`TelemetryHub::start`] wires the three together: publishers get the
//! bus handle ([`TelemetryHub::bus`]), scrapers read the registry
//! ([`TelemetryHub::registry`]), and a background collector drains the
//! bus into the registry so aggregation cost lands on its own thread —
//! never on a detection or HTTP worker. [`TelemetryHub::sync`] lets a
//! scraper (or a reconciliation test) wait until everything published so
//! far has been folded in, which is what makes `GET /metrics` totals
//! exact rather than eventually-consistent.

use crate::bus::TelemetryBus;
use crate::metrics::MetricsRegistry;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How long the collector parks between drains when nobody is asking for
/// exact numbers. The collector never registers as a bus waiter, so
/// publishers never pay the wake-up bell (or a context switch to this
/// thread) for it — hot paths just push and move on, and the aggregation
/// cost lands in one deferred batch per tick. [`TelemetryHub::sync`]
/// pokes the collector's own condvar for an immediate drain, so scrapes
/// stay exact without publishers ever touching that condvar. Default bus
/// retention (8 × 4096) covers a full tick of fleet-bench publish bursts.
const COLLECT_TICK: Duration = Duration::from_millis(100);

/// The collector's private alarm clock: `park` sleeps out the tick,
/// `poke` ends the nap early. Only `sync`/`stop` ever poke — publishers
/// have no handle to this, which is what keeps the publish path free of
/// condvar traffic no matter how fast events flow.
#[derive(Debug, Default)]
struct Nudge {
    poked: Mutex<bool>,
    bell: Condvar,
}

impl Nudge {
    fn poke(&self) {
        *self.poked.lock().unwrap_or_else(PoisonError::into_inner) = true;
        self.bell.notify_all();
    }

    /// Parks for up to `timeout`, returning early if poked (before or
    /// during the nap). Consumes the pending poke either way.
    fn park(&self, timeout: Duration) {
        let mut poked = self.poked.lock().unwrap_or_else(PoisonError::into_inner);
        let deadline = Instant::now() + timeout;
        while !*poked {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                break;
            };
            let (guard, _) = self
                .bell
                .wait_timeout(poked, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            poked = guard;
        }
        *poked = false;
    }
}

/// The assembled observability pipeline (see the [module docs](self)).
#[derive(Debug)]
pub struct TelemetryHub {
    bus: Arc<TelemetryBus>,
    registry: Arc<MetricsRegistry>,
    /// One past the newest sequence number the collector has ingested.
    consumed: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    nudge: Arc<Nudge>,
    collector: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl TelemetryHub {
    /// Starts a hub with a default-sized bus and a fresh registry.
    pub fn start() -> Arc<TelemetryHub> {
        TelemetryHub::start_with(Arc::new(TelemetryBus::new()))
    }

    /// Starts a hub collecting from a caller-built bus.
    pub fn start_with(bus: Arc<TelemetryBus>) -> Arc<TelemetryHub> {
        let registry = Arc::new(MetricsRegistry::new());
        let consumed = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let nudge = Arc::new(Nudge::default());
        let collector = {
            let (bus, registry) = (bus.clone(), registry.clone());
            let (consumed, stop) = (consumed.clone(), stop.clone());
            let nudge = nudge.clone();
            std::thread::Builder::new()
                .name("hg-telemetry-collector".to_string())
                .spawn(move || {
                    let mut batch = Vec::new();
                    loop {
                        let cursor = consumed.load(Ordering::Acquire);
                        batch.clear();
                        let next = bus.drain_since(cursor, &mut batch);
                        for (_, event) in &batch {
                            registry.ingest(event);
                        }
                        // Events that fell out of retention before this
                        // drain are consumed by definition: the cursor
                        // tracks the bus head, not just what was read.
                        let head = bus.next_seq().max(next);
                        consumed.store(head, Ordering::Release);
                        if stop.load(Ordering::Acquire) {
                            // One final drain already happened above with
                            // the stop flag set; everything retained at
                            // shutdown is in the registry.
                            if bus.next_seq() == head {
                                break;
                            }
                            continue;
                        }
                        nudge.park(COLLECT_TICK);
                    }
                })
                .expect("spawn telemetry collector")
        };
        Arc::new(TelemetryHub {
            bus,
            registry,
            consumed,
            stop,
            nudge,
            collector: Mutex::new(Some(collector)),
        })
    }

    /// The publish side.
    pub fn bus(&self) -> &Arc<TelemetryBus> {
        &self.bus
    }

    /// The aggregate side.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Blocks until every event published before this call has been folded
    /// into the registry (or `timeout` elapses); returns whether the
    /// registry caught up. This is the exactness handshake `GET /metrics`
    /// uses before rendering.
    pub fn sync(&self, timeout: Duration) -> bool {
        let target = self.bus.next_seq();
        let deadline = Instant::now() + timeout;
        while self.consumed.load(Ordering::Acquire) < target {
            if Instant::now() >= deadline {
                return false;
            }
            self.nudge.poke();
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// Stops the collector after a final drain: the poke cuts any
    /// in-progress nap short, the collector notices the flag, drains what
    /// is retained and exits. Idempotent; also run on drop.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        self.nudge.poke();
        if let Some(handle) = self
            .collector
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryHub {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TelemetryEvent;

    #[test]
    fn collector_folds_published_events_into_the_registry() {
        let hub = TelemetryHub::start();
        for home in 0..10 {
            hub.bus().publish(TelemetryEvent::HomeCreated { home });
        }
        assert!(hub.sync(Duration::from_secs(5)), "collector must catch up");
        assert_eq!(hub.registry().counter("homes_created_total"), 10);
        assert_eq!(hub.registry().counter("events_consumed_total"), 10);
        hub.stop();
        // Idempotent stop.
        hub.stop();
    }

    #[test]
    fn stop_drains_whatever_is_still_retained() {
        let hub = TelemetryHub::start();
        for home in 0..100 {
            hub.bus().publish(TelemetryEvent::HomeCreated { home });
        }
        hub.stop();
        assert_eq!(hub.registry().counter("homes_created_total"), 100);
    }
}
