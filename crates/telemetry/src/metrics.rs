//! The metrics registry: bus events folded into counters, gauges,
//! fixed-bucket histograms and the paper's fleet-scale analytics.
//!
//! A [`MetricsRegistry`] is a pure consumer — it subscribes to nothing by
//! itself; the [`TelemetryHub`](crate::TelemetryHub) collector thread
//! drains the bus and feeds [`MetricsRegistry::ingest`]. Everything lives
//! behind one mutex (ingest is a handful of map bumps, far off any hot
//! path), and the whole aggregate state round-trips through a JSON
//! envelope ([`MetricsRegistry::export_state`] /
//! [`MetricsRegistry::absorb_state`]) so counters and histograms ride
//! fleet snapshots and restore warm.
//!
//! The derived tables answer the paper's fleet questions directly:
//! the per-app interference table is Fig. 8 at fleet scale (which store
//! apps interfere, and how often), and the latency histograms split
//! pair-check cost by cache outcome (Fig. 9's reuse economics).

use crate::event::TelemetryEvent;
use hg_rules::json::Json;
use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

/// Bucket upper bounds (inclusive) per histogram name. The last implicit
/// bucket is `+Inf`.
fn bounds_for(name: &str) -> &'static [u64] {
    match name {
        "install_micros" => &[
            50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
        ],
        "mediation_latency_ns" => &[
            250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
        ],
        "pair_check_micros_cached" => &[1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000],
        "pair_check_micros_uncached" => &[
            5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000,
        ],
        _ => &[1, 10, 100, 1_000, 10_000, 100_000],
    }
}

/// A fixed-bucket histogram: per-bucket counts (last bucket is `+Inf`),
/// weighted observation count and value sum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Inclusive bucket upper bounds.
    pub bounds: &'static [u64],
    /// Per-bucket counts; `counts[bounds.len()]` is the `+Inf` bucket.
    pub counts: Vec<u64>,
    /// Weighted observations.
    pub count: u64,
    /// Weighted value sum.
    pub sum: u128,
}

impl Histogram {
    fn new(bounds: &'static [u64]) -> Histogram {
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    fn observe(&mut self, value: u64, weight: u64) {
        let slot = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += weight;
        self.count += weight;
        self.sum += value as u128 * weight as u128;
    }

    /// Weighted mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (`0.0..=100.0`), linearly interpolated
    /// within the covering bucket — the standard fixed-bucket estimate
    /// (what a Prometheus `histogram_quantile` computes). Observations in
    /// the open-ended `+Inf` bucket clamp to the last finite bound; an
    /// empty histogram reports 0.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 || self.bounds.is_empty() {
            return 0.0;
        }
        let rank = p.clamp(0.0, 100.0) / 100.0 * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &bucket) in self.counts.iter().enumerate() {
            let next = cumulative + bucket;
            if (next as f64) >= rank && bucket > 0 {
                let upper = match self.bounds.get(i) {
                    Some(&bound) => bound as f64,
                    // +Inf bucket: no upper edge to interpolate toward.
                    None => return self.bounds[self.bounds.len() - 1] as f64,
                };
                let lower = if i == 0 {
                    0.0
                } else {
                    self.bounds[i - 1] as f64
                };
                let into = (rank - cumulative as f64).max(0.0) / bucket as f64;
                return lower + (upper - lower) * into.min(1.0);
            }
            cumulative = next;
        }
        self.bounds[self.bounds.len() - 1] as f64
    }
}

/// One app's row in the fleet interference table (paper Fig. 8).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppInterference {
    /// Install/upgrade attempts the app was the subject of.
    pub installs: u64,
    /// Attempts that surfaced interference (dirty verdicts).
    pub dirty: u64,
    /// Threats the app was a member of (either side of the pair).
    pub threats: u64,
}

impl AppInterference {
    /// Dirty attempts as a fraction of all attempts (0.0 when none).
    pub fn rate(&self) -> f64 {
        if self.installs == 0 {
            0.0
        } else {
            self.dirty as f64 / self.installs as f64
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    /// Threats by kind acronym.
    threat_kinds: BTreeMap<String, u64>,
    /// Mediation decisions by final verdict.
    verdicts: BTreeMap<String, u64>,
    /// Pull-style gauges, set by whoever scrapes (queue depths, bus drops).
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<&'static str, Histogram>,
    interference: BTreeMap<String, AppInterference>,
}

impl Inner {
    fn bump(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    fn observe(&mut self, name: &'static str, value: u64, weight: u64) {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(bounds_for(name)))
            .observe(value, weight);
    }
}

/// The fleet metrics registry (see the [module docs](self)).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

// Lock recovery: every mutation is a self-contained map bump, so a
// panicking ingester cannot leave half-written aggregates — recover the
// map rather than propagating poison into the collector and every route.
fn lock(inner: &Mutex<Inner>) -> std::sync::MutexGuard<'_, Inner> {
    inner.lock().unwrap_or_else(PoisonError::into_inner)
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Folds one bus event into the aggregates.
    pub fn ingest(&self, event: &TelemetryEvent) {
        let mut inner = lock(&self.inner);
        inner.bump("events_consumed_total", 1);
        match event {
            TelemetryEvent::HomeCreated { .. } => inner.bump("homes_created_total", 1),
            TelemetryEvent::InstallCompleted {
                app,
                installed,
                upgrade,
                threats,
                pairs,
                solves,
                cache_hits,
                cache_misses,
                lowered_hits,
                solver_fallbacks,
                micros,
                ..
            } => {
                inner.bump("installs_total", 1);
                inner.bump(
                    if *installed {
                        "installs_clean_total"
                    } else {
                        "installs_dirty_total"
                    },
                    1,
                );
                if *upgrade {
                    inner.bump("upgrades_total", 1);
                }
                inner.bump("pairs_checked_total", *pairs);
                inner.bump("solves_total", *solves);
                inner.bump("cache_hits_total", *cache_hits);
                inner.bump("cache_misses_total", *cache_misses);
                inner.bump("lowered_hits_total", *lowered_hits);
                inner.bump("solver_fallbacks_total", *solver_fallbacks);
                inner.observe("install_micros", *micros, 1);
                let row = inner.interference.entry(app.clone()).or_default();
                row.installs += 1;
                if !installed {
                    row.dirty += 1;
                }
                let _ = threats; // counted by the per-threat events
            }
            TelemetryEvent::ThreatDetected {
                kind,
                source_app,
                target_app,
                ..
            } => {
                inner.bump("threats_total", 1);
                *inner.threat_kinds.entry((*kind).to_string()).or_insert(0) += 1;
                inner
                    .interference
                    .entry(source_app.clone())
                    .or_default()
                    .threats += 1;
                if target_app != source_app {
                    inner
                        .interference
                        .entry(target_app.clone())
                        .or_default()
                        .threats += 1;
                }
            }
            TelemetryEvent::UninstallCompleted {
                removed_rules,
                retired_threats,
                ..
            } => {
                inner.bump("uninstalls_total", 1);
                inner.bump("uninstall_rules_removed_total", *removed_rules);
                inner.bump("uninstall_threats_retired_total", *retired_threats);
            }
            TelemetryEvent::MediationDecision {
                verdict,
                latency_ns,
                ..
            } => {
                inner.bump("mediation_events_total", 1);
                if *verdict != "allow" {
                    inner.bump("mediation_mediated_total", 1);
                }
                *inner.verdicts.entry((*verdict).to_string()).or_insert(0) += 1;
                inner.observe("mediation_latency_ns", *latency_ns, 1);
            }
            TelemetryEvent::CacheProbe {
                hit,
                micros,
                weight,
                ..
            } => {
                inner.bump("cache_probes_total", *weight);
                inner.observe(
                    if *hit {
                        "pair_check_micros_cached"
                    } else {
                        "pair_check_micros_uncached"
                    },
                    *micros,
                    *weight,
                );
            }
            TelemetryEvent::SweepShardDone { homes, .. } => {
                inner.bump("sweep_shards_total", 1);
                inner.bump("sweep_homes_total", *homes);
            }
            TelemetryEvent::SnapshotTaken { micros, .. } => {
                inner.bump("snapshots_total", 1);
                inner.bump("snapshot_micros_total", *micros);
            }
            TelemetryEvent::QueueSaturated { .. } => inner.bump("queue_saturated_total", 1),
            TelemetryEvent::JournalAppended { records, bytes } => {
                inner.bump("journal_appends_total", 1);
                inner.bump("journal_records_total", *records);
                inner.bump("journal_bytes_total", *bytes);
            }
            TelemetryEvent::JournalSynced { micros } => {
                inner.bump("journal_syncs_total", 1);
                inner.bump("journal_sync_micros_total", *micros);
            }
            TelemetryEvent::JournalCheckpoint { homes, micros, .. } => {
                inner.bump("journal_checkpoints_total", 1);
                inner.bump("journal_checkpoint_homes_total", *homes);
                inner.bump("journal_checkpoint_micros_total", *micros);
            }
            TelemetryEvent::JournalReplayed { records, micros } => {
                inner.bump("journal_replays_total", 1);
                inner.bump("journal_replayed_records_total", *records);
                inner.bump("journal_replay_micros_total", *micros);
            }
            TelemetryEvent::IoRetry { attempts, .. } => {
                inner.bump("io_retry_events_total", 1);
                inner.bump("io_retries_total", *attempts);
            }
            TelemetryEvent::JournalDegraded { .. } => inner.bump("journal_degraded_total", 1),
            TelemetryEvent::JournalHealed { .. } => inner.bump("journal_healed_total", 1),
        }
    }

    /// One monotonic counter (0 when never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        lock(&self.inner).counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a pull-style gauge (queue depths, occupancy, bus drop counts —
    /// sampled by the scraper at render time, not event-driven).
    pub fn set_gauge(&self, name: impl Into<String>, value: i64) {
        lock(&self.inner).gauges.insert(name.into(), value);
    }

    /// One gauge's last sampled value.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        lock(&self.inner).gauges.get(name).copied()
    }

    /// One histogram's current shape.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        lock(&self.inner).histograms.get(name).cloned()
    }

    /// The interference table, highest rate first (rate ties break toward
    /// more attempts, then app name — a stable, meaningful leaderboard).
    pub fn interference_table(&self) -> Vec<(String, AppInterference)> {
        let inner = lock(&self.inner);
        let mut rows: Vec<(String, AppInterference)> = inner
            .interference
            .iter()
            .map(|(app, row)| (app.clone(), *row))
            .collect();
        rows.sort_by(|(app_a, a), (app_b, b)| {
            b.rate()
                .partial_cmp(&a.rate())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.installs.cmp(&a.installs))
                .then(app_a.cmp(app_b))
        });
        rows
    }

    /// The interference table as JSON rows, highest rate first (the
    /// `/analytics/interference` body).
    pub fn interference_json(&self) -> Json {
        Json::Arr(
            self.interference_table()
                .into_iter()
                .map(|(app, row)| interference_row_json(&app, &row))
                .collect(),
        )
    }

    /// The named histograms as a JSON object (the `/analytics/latency`
    /// body); names with no observations yet are omitted.
    pub fn histograms_json(&self, names: &[&str]) -> Json {
        let inner = lock(&self.inner);
        Json::Obj(
            names
                .iter()
                .filter_map(|name| {
                    inner
                        .histograms
                        .get_key_value(*name)
                        .map(|(key, h)| ((*key).to_string(), histogram_json(h)))
                })
                .collect(),
        )
    }

    /// The full registry as flat JSON (the `GET /metrics` body).
    pub fn to_json(&self) -> Json {
        let inner = lock(&self.inner);
        let counters = Json::Obj(
            inner
                .counters
                .iter()
                .map(|(k, v)| ((*k).to_string(), Json::Num(*v as i64)))
                .collect(),
        );
        let gauges = Json::Obj(
            inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                .collect(),
        );
        let kinds = Json::Obj(
            inner
                .threat_kinds
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v as i64)))
                .collect(),
        );
        let verdicts = Json::Obj(
            inner
                .verdicts
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v as i64)))
                .collect(),
        );
        let histograms = Json::Obj(
            inner
                .histograms
                .iter()
                .map(|(name, h)| ((*name).to_string(), histogram_json(h)))
                .collect(),
        );
        drop(inner);
        let interference = Json::Arr(
            self.interference_table()
                .into_iter()
                .map(|(app, row)| interference_row_json(&app, &row))
                .collect(),
        );
        Json::obj([
            ("counters", counters),
            ("gauges", gauges),
            ("threats_by_kind", kinds),
            ("mediation_by_verdict", verdicts),
            ("histograms", histograms),
            ("interference", interference),
        ])
    }

    /// A Prometheus-style text rendering (`GET /metrics?format=prometheus`):
    /// `hg_`-prefixed counters and gauges, cumulative `_bucket{le=…}`
    /// histogram series, and the interference table as labeled gauges.
    pub fn render_prometheus(&self) -> String {
        let inner = lock(&self.inner);
        let mut out = String::new();
        for (name, value) in &inner.counters {
            out.push_str(&format!("# TYPE hg_{name} counter\nhg_{name} {value}\n"));
        }
        for (kind, value) in &inner.threat_kinds {
            out.push_str(&format!(
                "hg_threats_by_kind_total{{kind=\"{kind}\"}} {value}\n"
            ));
        }
        for (verdict, value) in &inner.verdicts {
            out.push_str(&format!(
                "hg_mediation_by_verdict_total{{verdict=\"{verdict}\"}} {value}\n"
            ));
        }
        for (name, value) in &inner.gauges {
            out.push_str(&format!("# TYPE hg_{name} gauge\nhg_{name} {value}\n"));
        }
        for (name, h) in &inner.histograms {
            out.push_str(&format!("# TYPE hg_{name} histogram\n"));
            let mut cumulative = 0u64;
            for (bound, count) in h.bounds.iter().zip(&h.counts) {
                cumulative += count;
                out.push_str(&format!(
                    "hg_{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"
                ));
            }
            out.push_str(&format!("hg_{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("hg_{name}_sum {}\n", h.sum));
            out.push_str(&format!("hg_{name}_count {}\n", h.count));
        }
        drop(inner);
        for (app, row) in self.interference_table() {
            out.push_str(&format!(
                "hg_app_interference_rate{{app=\"{app}\"}} {:.6}\n",
                row.rate()
            ));
            out.push_str(&format!(
                "hg_app_installs_total{{app=\"{app}\"}} {}\n",
                row.installs
            ));
        }
        out
    }

    /// Exports every aggregate as a versioned JSON payload — the
    /// `telemetry` envelope a fleet snapshot carries. Gauges are omitted:
    /// they are re-sampled live, not historical.
    pub fn export_state(&self) -> Json {
        let inner = lock(&self.inner);
        Json::obj([
            ("v", Json::Num(1)),
            (
                "counters",
                Json::Obj(
                    inner
                        .counters
                        .iter()
                        .map(|(k, v)| ((*k).to_string(), Json::Num(*v as i64)))
                        .collect(),
                ),
            ),
            (
                "threat_kinds",
                Json::Obj(
                    inner
                        .threat_kinds
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as i64)))
                        .collect(),
                ),
            ),
            (
                "verdicts",
                Json::Obj(
                    inner
                        .verdicts
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as i64)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    inner
                        .histograms
                        .iter()
                        .map(|(name, h)| {
                            (
                                (*name).to_string(),
                                Json::obj([
                                    (
                                        "counts",
                                        Json::Arr(
                                            h.counts.iter().map(|c| Json::Num(*c as i64)).collect(),
                                        ),
                                    ),
                                    ("count", Json::Num(h.count as i64)),
                                    ("sum", Json::Num(h.sum as i64)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "interference",
                Json::Obj(
                    inner
                        .interference
                        .iter()
                        .map(|(app, row)| {
                            (
                                app.clone(),
                                Json::obj([
                                    ("installs", Json::Num(row.installs as i64)),
                                    ("dirty", Json::Num(row.dirty as i64)),
                                    ("threats", Json::Num(row.threats as i64)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Absorbs a previously exported payload **additively** — restoring
    /// into a fresh registry reproduces the exported aggregates exactly;
    /// events ingested after the restore keep accumulating on top (the
    /// warm-restart cut-over). Unknown fields and histogram names are
    /// ignored; a non-`v:1` payload is refused.
    ///
    /// # Errors
    ///
    /// A human-readable description of the structural mismatch.
    pub fn absorb_state(&self, state: &Json) -> Result<(), String> {
        if state.get("v").and_then(Json::as_num) != Some(1) {
            return Err("unsupported telemetry state version".to_string());
        }
        let mut inner = lock(&self.inner);
        if let Some(Json::Obj(counters)) = state.get("counters") {
            for (name, value) in counters {
                let Some(value) = value.as_num().filter(|v| *v >= 0) else {
                    return Err(format!("counter `{name}` is not a non-negative number"));
                };
                // Intern through the known-name table: counter keys are
                // &'static str, so only names this build knows can revive.
                if let Some(known) = KNOWN_COUNTERS.iter().find(|k| **k == name.as_str()) {
                    *inner.counters.entry(known).or_insert(0) += value as u64;
                }
            }
        }
        if let Some(Json::Obj(kinds)) = state.get("threat_kinds") {
            for (kind, value) in kinds {
                let add = value.as_num().unwrap_or(0).max(0) as u64;
                *inner.threat_kinds.entry(kind.clone()).or_insert(0) += add;
            }
        }
        if let Some(Json::Obj(verdicts)) = state.get("verdicts") {
            for (verdict, value) in verdicts {
                let add = value.as_num().unwrap_or(0).max(0) as u64;
                *inner.verdicts.entry(verdict.clone()).or_insert(0) += add;
            }
        }
        if let Some(Json::Obj(histograms)) = state.get("histograms") {
            for (name, h) in histograms {
                let Some(known) = KNOWN_HISTOGRAMS.iter().find(|k| **k == name.as_str()) else {
                    continue;
                };
                let counts: Vec<u64> = h
                    .get("counts")
                    .and_then(Json::as_arr)
                    .map(|arr| {
                        arr.iter()
                            .map(|c| c.as_num().unwrap_or(0).max(0) as u64)
                            .collect()
                    })
                    .unwrap_or_default();
                let slot = inner
                    .histograms
                    .entry(known)
                    .or_insert_with(|| Histogram::new(bounds_for(known)));
                if counts.len() != slot.counts.len() {
                    return Err(format!("histogram `{name}` has a mismatched bucket layout"));
                }
                for (mine, theirs) in slot.counts.iter_mut().zip(&counts) {
                    *mine += theirs;
                }
                slot.count += h.get("count").and_then(Json::as_num).unwrap_or(0).max(0) as u64;
                slot.sum += h.get("sum").and_then(Json::as_num).unwrap_or(0).max(0) as u128;
            }
        }
        if let Some(Json::Obj(interference)) = state.get("interference") {
            for (app, row) in interference {
                let get =
                    |field: &str| row.get(field).and_then(Json::as_num).unwrap_or(0).max(0) as u64;
                let entry = inner.interference.entry(app.clone()).or_default();
                entry.installs += get("installs");
                entry.dirty += get("dirty");
                entry.threats += get("threats");
            }
        }
        Ok(())
    }
}

/// Counter names a restore may revive (keys are `&'static str`, so the
/// envelope's strings must intern through this table).
const KNOWN_COUNTERS: &[&str] = &[
    "events_consumed_total",
    "homes_created_total",
    "installs_total",
    "installs_clean_total",
    "installs_dirty_total",
    "upgrades_total",
    "uninstalls_total",
    "uninstall_rules_removed_total",
    "uninstall_threats_retired_total",
    "pairs_checked_total",
    "solves_total",
    "cache_hits_total",
    "cache_misses_total",
    "lowered_hits_total",
    "solver_fallbacks_total",
    "cache_probes_total",
    "threats_total",
    "mediation_events_total",
    "mediation_mediated_total",
    "sweep_shards_total",
    "sweep_homes_total",
    "snapshots_total",
    "snapshot_micros_total",
    "queue_saturated_total",
    "journal_appends_total",
    "journal_records_total",
    "journal_bytes_total",
    "journal_syncs_total",
    "journal_sync_micros_total",
    "journal_checkpoints_total",
    "journal_checkpoint_homes_total",
    "journal_checkpoint_micros_total",
    "journal_replays_total",
    "journal_replayed_records_total",
    "journal_replay_micros_total",
    "io_retry_events_total",
    "io_retries_total",
    "journal_degraded_total",
    "journal_healed_total",
];

const KNOWN_HISTOGRAMS: &[&str] = &[
    "install_micros",
    "mediation_latency_ns",
    "pair_check_micros_cached",
    "pair_check_micros_uncached",
];

fn histogram_json(h: &Histogram) -> Json {
    Json::obj([
        (
            "buckets",
            Json::Arr(
                h.bounds
                    .iter()
                    .zip(&h.counts)
                    .map(|(bound, count)| {
                        Json::obj([
                            ("le", Json::Num(*bound as i64)),
                            ("count", Json::Num(*count as i64)),
                        ])
                    })
                    .chain(std::iter::once(Json::obj([
                        ("le", Json::Null),
                        ("count", Json::Num(*h.counts.last().unwrap_or(&0) as i64)),
                    ])))
                    .collect(),
            ),
        ),
        ("count", Json::Num(h.count as i64)),
        ("sum", Json::Num(h.sum as i64)),
        ("mean", Json::Num(h.mean() as i64)),
        ("p50", Json::Num(h.percentile(50.0).round() as i64)),
        ("p95", Json::Num(h.percentile(95.0).round() as i64)),
        ("p99", Json::Num(h.percentile(99.0).round() as i64)),
    ])
}

fn interference_row_json(app: &str, row: &AppInterference) -> Json {
    Json::obj([
        ("app", Json::str(app)),
        ("installs", Json::Num(row.installs as i64)),
        ("dirty", Json::Num(row.dirty as i64)),
        (
            "rate_pct",
            Json::Num((row.rate() * 10_000.0).round() as i64),
        ),
        ("threats", Json::Num(row.threats as i64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn install(app: &str, installed: bool) -> TelemetryEvent {
        TelemetryEvent::InstallCompleted {
            home: 0,
            app: app.to_string(),
            installed,
            upgrade: false,
            threats: u64::from(!installed),
            pairs: 3,
            solves: 1,
            cache_hits: 2,
            cache_misses: 1,
            lowered_hits: 1,
            solver_fallbacks: 1,
            micros: 420,
        }
    }

    #[test]
    fn counters_and_interference_aggregate() {
        let reg = MetricsRegistry::new();
        reg.ingest(&install("A", true));
        reg.ingest(&install("A", false));
        reg.ingest(&install("B", true));
        reg.ingest(&TelemetryEvent::ThreatDetected {
            home: 0,
            kind: "AR",
            source_app: "A".into(),
            target_app: "B".into(),
        });
        assert_eq!(reg.counter("installs_total"), 3);
        assert_eq!(reg.counter("installs_dirty_total"), 1);
        assert_eq!(reg.counter("cache_hits_total"), 6);
        assert_eq!(reg.counter("lowered_hits_total"), 3);
        assert_eq!(reg.counter("solver_fallbacks_total"), 3);
        assert_eq!(reg.counter("threats_total"), 1);
        let table = reg.interference_table();
        assert_eq!(table[0].0, "A", "A has the higher interference rate");
        assert!((table[0].1.rate() - 0.5).abs() < 1e-9);
        assert_eq!(table[0].1.threats, 1);
        assert_eq!(table[1].1.threats, 1, "both pair members are charged");
        // Renders in both formats without panicking, with the data present.
        let json = reg.to_json();
        assert!(json.get("counters").is_some());
        let prom = reg.render_prometheus();
        assert!(prom.contains("hg_installs_total 3"));
        assert!(prom.contains("hg_app_interference_rate{app=\"A\"} 0.5"));
    }

    #[test]
    fn histograms_bucket_weighted_observations() {
        let reg = MetricsRegistry::new();
        reg.ingest(&TelemetryEvent::CacheProbe {
            hit: true,
            tier: "lowered",
            micros: 3,
            weight: 64,
        });
        reg.ingest(&TelemetryEvent::CacheProbe {
            hit: false,
            tier: "solver",
            micros: 9_000,
            weight: 1,
        });
        let cached = reg.histogram("pair_check_micros_cached").unwrap();
        assert_eq!(cached.count, 64, "a sampled probe stands for 64 checks");
        assert_eq!(cached.counts[2], 64, "3µs lands in the ≤5 bucket");
        let uncached = reg.histogram("pair_check_micros_uncached").unwrap();
        assert_eq!(uncached.count, 1);
        assert!(uncached.mean() > 8_999.0);
    }

    #[test]
    fn percentiles_interpolate_within_buckets() {
        let mut h = Histogram::new(bounds_for("mediation_latency_ns"));
        assert_eq!(h.percentile(50.0), 0.0, "empty histogram reports 0");
        // 100 observations spread uniformly through the ≤1000ns bucket
        // (lower edge 500): the interpolated median sits mid-bucket.
        h.observe(750, 100);
        assert!((h.percentile(50.0) - 750.0).abs() < 1.0, "p50 ≈ 750");
        assert!((h.percentile(100.0) - 1_000.0).abs() < 1e-9);
        // Skewed tail: 90 fast (≤250 bucket), 10 slow (≤25000 bucket).
        let mut h = Histogram::new(bounds_for("mediation_latency_ns"));
        h.observe(100, 90);
        h.observe(20_000, 10);
        let p50 = h.percentile(50.0);
        assert!(p50 <= 250.0, "median stays in the fast bucket, got {p50}");
        let p95 = h.percentile(95.0);
        assert!(
            (10_000.0..=25_000.0).contains(&p95),
            "p95 lands in the slow bucket, got {p95}"
        );
        assert!(h.percentile(99.0) >= p95);
        // An observation past the last bound clamps to the last finite edge.
        let mut h = Histogram::new(bounds_for("pair_check_micros_cached"));
        h.observe(1_000_000, 4);
        assert_eq!(h.percentile(50.0), 1_000.0);
        // Registry JSON carries the percentile fields.
        let reg = MetricsRegistry::new();
        reg.ingest(&TelemetryEvent::MediationDecision {
            home: 0,
            kind: "AR",
            verdict: "allow",
            latency_ns: 700,
        });
        let json = reg.histograms_json(&["mediation_latency_ns"]);
        let h = json.get("mediation_latency_ns").unwrap();
        assert!(h.get("p50").and_then(Json::as_num).is_some());
        assert!(h.get("p95").and_then(Json::as_num).is_some());
        assert!(h.get("p99").and_then(Json::as_num).is_some());
    }

    #[test]
    fn journal_events_fold_into_counters() {
        let reg = MetricsRegistry::new();
        reg.ingest(&TelemetryEvent::JournalAppended {
            records: 1,
            bytes: 200,
        });
        reg.ingest(&TelemetryEvent::JournalAppended {
            records: 1,
            bytes: 100,
        });
        reg.ingest(&TelemetryEvent::JournalSynced { micros: 40 });
        reg.ingest(&TelemetryEvent::JournalCheckpoint {
            offset: 2,
            homes: 5,
            full: true,
            micros: 900,
        });
        reg.ingest(&TelemetryEvent::JournalReplayed {
            records: 2,
            micros: 300,
        });
        assert_eq!(reg.counter("journal_appends_total"), 2);
        assert_eq!(reg.counter("journal_records_total"), 2);
        assert_eq!(reg.counter("journal_bytes_total"), 300);
        assert_eq!(reg.counter("journal_syncs_total"), 1);
        assert_eq!(reg.counter("journal_checkpoints_total"), 1);
        assert_eq!(reg.counter("journal_checkpoint_homes_total"), 5);
        assert_eq!(reg.counter("journal_replays_total"), 1);
        assert_eq!(reg.counter("journal_replayed_records_total"), 2);
        // Journal counters survive the snapshot envelope.
        let state = reg.export_state();
        let fresh = MetricsRegistry::new();
        fresh.absorb_state(&state).unwrap();
        assert_eq!(fresh.counter("journal_bytes_total"), 300);
    }

    #[test]
    fn export_absorb_round_trips_every_aggregate() {
        let reg = MetricsRegistry::new();
        reg.ingest(&install("A", false));
        reg.ingest(&TelemetryEvent::ThreatDetected {
            home: 0,
            kind: "CT",
            source_app: "A".into(),
            target_app: "A".into(),
        });
        reg.ingest(&TelemetryEvent::MediationDecision {
            home: 0,
            kind: "CT",
            verdict: "suppress",
            latency_ns: 700,
        });
        reg.set_gauge("shard_queue_depth_0", 3);

        let state = reg.export_state();
        let fresh = MetricsRegistry::new();
        fresh.absorb_state(&state).unwrap();
        // Every counter and histogram revives exactly; gauges don't ride.
        assert_eq!(fresh.export_state().to_text(), state.to_text());
        assert_eq!(fresh.counter("installs_total"), 1);
        assert_eq!(fresh.counter("mediation_mediated_total"), 1);
        assert_eq!(fresh.histogram("mediation_latency_ns").unwrap().count, 1);
        assert_eq!(fresh.gauge("shard_queue_depth_0"), None);
        // The restored registry keeps accumulating — the cut-over.
        fresh.ingest(&install("A", true));
        assert_eq!(fresh.counter("installs_total"), 2);
        // Version gate.
        assert!(fresh
            .absorb_state(&Json::obj([("v", Json::Num(2))]))
            .is_err());
    }
}
