//! # hg-telemetry — fleet observability for HomeGuard
//!
//! The fleet detects, mediates, caches and serves — this crate is where
//! it finally *measures*. Three pieces, std-only like the rest of the
//! service stack:
//!
//! * [`TelemetryBus`] — a bounded, lock-sharded event bus the hot paths
//!   publish [`TelemetryEvent`]s into through a cheap
//!   `Option<Arc<TelemetryBus>>` handle. `None` is the zero-cost default;
//!   overflow drops the oldest event and counts it, so a slow consumer
//!   costs history, never throughput.
//! * [`MetricsRegistry`] — counters, gauges, fixed-bucket histograms and
//!   the paper's fleet analytics (per-app interference table, latency
//!   splits), folded in off the hot path and snapshot-able as a JSON
//!   envelope for warm restarts.
//! * [`TelemetryHub`] — bus + registry + the collector thread between
//!   them, with a [`sync`](TelemetryHub::sync) handshake that makes
//!   scrape-time totals exact.
//!
//! The design invariant, enforced by the differential test in
//! `tests/telemetry_differential.rs`: telemetry is a **pure observer**.
//! Attaching a bus changes no report, no trace and no snapshot bit;
//! detaching it leaves behind nothing but an un-taken measurement.

pub mod bus;
pub mod event;
pub mod hub;
pub mod metrics;

pub use bus::TelemetryBus;
pub use event::TelemetryEvent;
pub use hub::TelemetryHub;
pub use metrics::{AppInterference, Histogram, MetricsRegistry};
