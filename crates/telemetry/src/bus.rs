//! The bounded, lock-sharded fleet event bus.
//!
//! [`TelemetryBus`] is the single pipe every instrumented hot path
//! publishes into, designed around one invariant: **publishing never
//! blocks detection, mediation or lifecycle work**. Publishers stamp a
//! global sequence number ([`AtomicU64`]) and push into one of N
//! mutex-guarded rings chosen by that stamp, so concurrent publishers
//! mostly touch different locks and each push is a few instructions under
//! an uncontended mutex. A full ring **drops its oldest event** (counted
//! in [`TelemetryBus::dropped_events`]) rather than waiting for a
//! consumer — a slow or absent reader costs history, never throughput.
//!
//! Consumers are cursor-based: [`TelemetryBus::drain_since`] collects
//! every retained event with `seq >= cursor` across the shards, in
//! sequence order. Because retention is bounded, a consumer that falls
//! behind simply observes a gap in sequence numbers — the drop-oldest
//! policy made visible. [`TelemetryBus::wait_for_events`] parks a
//! consumer until something newer than its cursor arrives; publishers
//! only ring the wake-up bell when a waiter is registered, keeping the
//! no-consumer publish path free of condvar traffic.

use crate::event::TelemetryEvent;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Default ring count (matches the fleet's default shard width).
const DEFAULT_SHARDS: usize = 8;
/// Default per-ring retention. Sized so the default bus (8 rings) holds
/// ~32k events — enough to absorb a full collector tick of fleet-bench
/// publish bursts without shedding history.
const DEFAULT_CAPACITY: usize = 4096;

/// A retained event: its global sequence stamp plus the payload.
type Stamped = (u64, TelemetryEvent);

/// The fleet event bus (see the [module docs](self)).
#[derive(Debug)]
pub struct TelemetryBus {
    rings: Box<[Mutex<VecDeque<Stamped>>]>,
    /// Per-ring retention bound; overflow drops the ring's oldest event.
    capacity: usize,
    /// The global sequence stamp — the next event's number.
    seq: AtomicU64,
    published: AtomicU64,
    dropped: AtomicU64,
    /// Registered consumers currently parked (or about to park) in
    /// [`TelemetryBus::wait_for_events`]. Publishers skip the bell
    /// entirely while this is zero.
    waiters: AtomicUsize,
    gate: Mutex<()>,
    bell: Condvar,
}

impl Default for TelemetryBus {
    fn default() -> Self {
        TelemetryBus::new()
    }
}

impl TelemetryBus {
    /// A bus with default sharding and retention (8 rings × 4096 events).
    pub fn new() -> TelemetryBus {
        TelemetryBus::with_config(DEFAULT_SHARDS, DEFAULT_CAPACITY)
    }

    /// A bus with explicit ring count and per-ring retention (both clamped
    /// to at least 1 — tests size retention down to exercise drop-oldest).
    pub fn with_config(shards: usize, capacity: usize) -> TelemetryBus {
        TelemetryBus {
            rings: (0..shards.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            published: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            waiters: AtomicUsize::new(0),
            gate: Mutex::new(()),
            bell: Condvar::new(),
        }
    }

    /// Publishes one event. Never blocks beyond one uncontended mutex:
    /// a full ring sheds its oldest event instead of waiting.
    pub fn publish(&self, event: TelemetryEvent) {
        self.publish_batch(std::iter::once(event));
    }

    /// Publishes a group of related events under one sequence reservation,
    /// **one ring lock** and one bell ring. Hot paths that emit several
    /// events per operation (an install report plus its per-pair threats)
    /// use this so each operation costs one lock acquisition instead of
    /// one per event, a parked stream reader is woken once, and the group
    /// occupies a contiguous sequence range. The whole batch lands in the
    /// ring picked by its base stamp — ring choice is lock sharding, not
    /// ordering; [`TelemetryBus::drain_since`] re-establishes global
    /// sequence order across rings.
    pub fn publish_batch<I>(&self, events: I)
    where
        I: IntoIterator<Item = TelemetryEvent>,
        I::IntoIter: ExactSizeIterator,
    {
        let events = events.into_iter();
        let count = events.len() as u64;
        if count == 0 {
            return;
        }
        let base = self.seq.fetch_add(count, Ordering::Relaxed);
        {
            let ring = &self.rings[(base % self.rings.len() as u64) as usize];
            let mut ring = ring.lock().unwrap_or_else(PoisonError::into_inner);
            for (offset, event) in events.enumerate() {
                if ring.len() >= self.capacity {
                    ring.pop_front();
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
                ring.push_back((base + offset as u64, event));
            }
        }
        self.published.fetch_add(count, Ordering::Relaxed);
        // The ring lock is released before the bell: a parked consumer
        // woken here re-locks rings without lock-order inversion.
        if self.waiters.load(Ordering::Acquire) > 0 {
            let _gate = self.gate.lock().unwrap_or_else(PoisonError::into_inner);
            self.bell.notify_all();
        }
    }

    /// The next sequence number a publish would be stamped with — i.e.
    /// events `< next_seq()` have all been published (some possibly
    /// already dropped).
    pub fn next_seq(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events published over the bus's lifetime.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Events shed by the drop-oldest overflow policy.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Collects every retained event with `seq >= cursor`, in sequence
    /// order, and returns the cursor to resume from (one past the newest
    /// event seen — `cursor` itself when nothing was newer). A consumer
    /// that fell behind retention sees a sequence gap, not an error.
    pub fn drain_since(&self, cursor: u64, out: &mut Vec<(u64, TelemetryEvent)>) -> u64 {
        let start = out.len();
        for ring in self.rings.iter() {
            let ring = ring.lock().unwrap_or_else(PoisonError::into_inner);
            for (seq, event) in ring.iter() {
                if *seq >= cursor {
                    out.push((*seq, event.clone()));
                }
            }
        }
        out[start..].sort_unstable_by_key(|(seq, _)| *seq);
        out.last().map_or(cursor, |(seq, _)| seq + 1)
    }

    /// Whether any retained event is at or past `cursor`.
    fn has_newer(&self, cursor: u64) -> bool {
        self.rings.iter().any(|ring| {
            ring.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .back()
                .is_some_and(|(seq, _)| *seq >= cursor)
        })
    }

    /// Parks the caller until an event at or past `cursor` is retained or
    /// `timeout` elapses; returns whether something newer is available.
    /// Spurious-wakeup safe; publishers pay for the bell only while a
    /// consumer is parked here.
    pub fn wait_for_events(&self, cursor: u64, timeout: Duration) -> bool {
        if self.has_newer(cursor) {
            return true;
        }
        self.waiters.fetch_add(1, Ordering::AcqRel);
        let mut gate = self.gate.lock().unwrap_or_else(PoisonError::into_inner);
        let deadline = std::time::Instant::now() + timeout;
        let newer = loop {
            // Checked under the gate: a publish between the check and the
            // wait must take the gate to ring the bell, so it cannot slip
            // past unobserved.
            if self.has_newer(cursor) {
                break true;
            }
            let Some(remaining) = deadline.checked_duration_since(std::time::Instant::now()) else {
                break false;
            };
            let (g, wait) = self
                .bell
                .wait_timeout(gate, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            gate = g;
            if wait.timed_out() {
                break self.has_newer(cursor);
            }
        };
        drop(gate);
        self.waiters.fetch_sub(1, Ordering::AcqRel);
        newer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn probe(n: u64) -> TelemetryEvent {
        TelemetryEvent::CacheProbe {
            hit: false,
            tier: "solver",
            micros: n,
            weight: 1,
        }
    }

    #[test]
    fn drain_returns_events_in_sequence_order() {
        let bus = TelemetryBus::with_config(4, 64);
        for n in 0..20 {
            bus.publish(probe(n));
        }
        let mut out = Vec::new();
        let cursor = bus.drain_since(0, &mut out);
        assert_eq!(cursor, 20);
        assert_eq!(out.len(), 20);
        let seqs: Vec<u64> = out.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, (0..20).collect::<Vec<_>>());
        // Resuming from the returned cursor sees only what came after.
        bus.publish(probe(99));
        let mut next = Vec::new();
        let cursor = bus.drain_since(cursor, &mut next);
        assert_eq!(cursor, 21);
        assert_eq!(next, vec![(20, probe(99))]);
        // Nothing newer: the cursor holds still.
        assert_eq!(bus.drain_since(cursor, &mut Vec::new()), cursor);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        // One ring of 4: publishing 10 retains the newest 4.
        let bus = TelemetryBus::with_config(1, 4);
        for n in 0..10 {
            bus.publish(probe(n));
        }
        assert_eq!(bus.dropped_events(), 6);
        assert_eq!(bus.published(), 10);
        let mut out = Vec::new();
        bus.drain_since(0, &mut out);
        let seqs: Vec<u64> = out.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "drop-oldest keeps the tail");
    }

    #[test]
    fn batch_publish_stamps_a_contiguous_range_and_mixes_with_singles() {
        let bus = TelemetryBus::with_config(4, 64);
        bus.publish(probe(0));
        bus.publish_batch((1..=5).map(probe).collect::<Vec<_>>());
        bus.publish_batch(Vec::<TelemetryEvent>::new());
        bus.publish(probe(6));
        let mut out = Vec::new();
        let cursor = bus.drain_since(0, &mut out);
        assert_eq!(cursor, 7, "an empty batch reserves no sequence numbers");
        let seqs: Vec<u64> = out.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, (0..7).collect::<Vec<_>>());
        assert_eq!(
            out[3],
            (3, probe(3)),
            "the batch occupies a contiguous range"
        );
    }

    #[test]
    fn wait_for_events_wakes_on_publish_and_times_out_idle() {
        let bus = Arc::new(TelemetryBus::new());
        // Idle bus: the wait times out empty-handed.
        assert!(!bus.wait_for_events(0, Duration::from_millis(10)));

        let publisher = bus.clone();
        let waiter = std::thread::spawn(move || {
            // Generous timeout: the publish below must cut it short.
            publisher.wait_for_events(0, Duration::from_secs(30))
        });
        // Give the waiter a moment to park, then publish.
        std::thread::sleep(Duration::from_millis(20));
        bus.publish(probe(1));
        assert!(waiter.join().unwrap(), "publish must wake the waiter");
        // A cursor already satisfied returns immediately.
        assert!(bus.wait_for_events(0, Duration::from_secs(30)));
    }

    #[test]
    fn concurrent_publishers_never_lose_sequence_numbers() {
        let bus = Arc::new(TelemetryBus::with_config(4, 10_000));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let bus = bus.clone();
            handles.push(std::thread::spawn(move || {
                for n in 0..500 {
                    bus.publish(probe(n));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut out = Vec::new();
        let cursor = bus.drain_since(0, &mut out);
        assert_eq!(cursor, 2000);
        assert_eq!(out.len(), 2000);
        assert_eq!(bus.dropped_events(), 0);
        // Every sequence number exactly once.
        let seqs: Vec<u64> = out.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, (0..2000).collect::<Vec<_>>());
    }
}
