//! The typed fleet event vocabulary.
//!
//! Every observable moment in the fleet — a lifecycle operation finishing,
//! a threat surfacing, a mediation decision, a cache probe — is one
//! [`TelemetryEvent`] published into the [`TelemetryBus`](crate::TelemetryBus).
//! Events are plain owned data: cheap to clone, comparable in tests, and
//! renderable as one NDJSON line each for `/events/stream`.

use hg_rules::json::Json;

/// One fleet observability event. Field conventions: `home` is the raw
/// [`HomeId`](hg_rules::rule::RuleId) routing key (0 for a standalone
/// session outside any fleet), `micros`/`latency_ns` are wall-clock,
/// `kind` strings are the paper's threat acronyms (AR, GC, CT, SD, LT,
/// EC, DC).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelemetryEvent {
    /// A home was registered in the fleet.
    HomeCreated {
        /// Raw home id.
        home: u64,
    },
    /// An install or upgrade attempt ran its detection pass to completion
    /// (clean → auto-confirmed; dirty → pending a user confirmation).
    InstallCompleted {
        /// Raw home id.
        home: u64,
        /// The app checked.
        app: String,
        /// Whether the attempt auto-confirmed (no interference).
        installed: bool,
        /// Whether this was an upgrade of an installed app.
        upgrade: bool,
        /// Threats in the report.
        threats: u64,
        /// Pairs checked.
        pairs: u64,
        /// Constraint solves run.
        solves: u64,
        /// Pair verdicts answered from the fleet cache.
        cache_hits: u64,
        /// Pair verdicts computed fresh.
        cache_misses: u64,
        /// Overlap questions answered by the lowered pair-check tier.
        lowered_hits: u64,
        /// Overlap questions the lowered tier passed to the full solver.
        solver_fallbacks: u64,
        /// Wall-clock cost of the whole attempt.
        micros: u64,
    },
    /// One threat surfaced by a detection pass.
    ThreatDetected {
        /// Raw home id.
        home: u64,
        /// Threat-kind acronym (paper Table I).
        kind: &'static str,
        /// Source-side app.
        source_app: String,
        /// Target-side app.
        target_app: String,
    },
    /// An app was uninstalled from a home.
    UninstallCompleted {
        /// Raw home id.
        home: u64,
        /// The app removed.
        app: String,
        /// Rules unposted.
        removed_rules: u64,
        /// Allowed threats retired with it.
        retired_threats: u64,
    },
    /// The runtime enforcer mediated one intercepted event.
    MediationDecision {
        /// Raw home id.
        home: u64,
        /// Threat-kind acronym of the governing point (`-` when the event
        /// took the non-member fast path).
        kind: &'static str,
        /// Final decision: `allow`, `suppress` or `defer`.
        verdict: &'static str,
        /// Wall-clock decision time.
        latency_ns: u64,
    },
    /// A sampled pair-check timing probe (hits are 1-in-N sampled with
    /// `weight` N; misses are all timed with weight 1).
    CacheProbe {
        /// Whether the fleet verdict cache answered.
        hit: bool,
        /// Which tier decided the verdict: `lowered`, `solver` or `mixed`
        /// (on a hit, the tier that originally produced the cached entry).
        tier: &'static str,
        /// Wall-clock pair-check time.
        micros: u64,
        /// How many pair checks this probe stands for.
        weight: u64,
    },
    /// One shard's slice of a fleet-wide sweep finished.
    SweepShardDone {
        /// Shard index.
        shard: u64,
        /// Sweep kind: `upgrade` or `uninstall`.
        op: &'static str,
        /// Homes visited in the shard.
        homes: u64,
        /// Wall-clock shard time.
        micros: u64,
    },
    /// A consistent fleet snapshot was captured.
    SnapshotTaken {
        /// Homes in the snapshot.
        homes: u64,
        /// Wall-clock capture time.
        micros: u64,
    },
    /// A work queue refused a job at capacity (the HTTP 429 path).
    QueueSaturated {
        /// Which queue: `shard` or `store`.
        queue: &'static str,
        /// Shard index (the shard count stands in for the store pool).
        shard: u64,
        /// Queue depth at refusal.
        depth: u64,
    },
    /// Records were appended durably to the write-ahead journal.
    JournalAppended {
        /// Records appended.
        records: u64,
        /// Framed bytes written.
        bytes: u64,
    },
    /// The journal flushed its backend to stable storage.
    JournalSynced {
        /// Wall-clock flush time.
        micros: u64,
    },
    /// A journal checkpoint document was written.
    JournalCheckpoint {
        /// Journal offset the checkpoint covers.
        offset: u64,
        /// Homes exported into the document.
        homes: u64,
        /// Whether it was a full image (vs a delta).
        full: bool,
        /// Wall-clock export-and-write time.
        micros: u64,
    },
    /// Crash recovery replayed journal records onto a materialized
    /// checkpoint image.
    JournalReplayed {
        /// Records replayed.
        records: u64,
        /// Wall-clock replay time.
        micros: u64,
    },
    /// A journal backend write was retried after transient I/O failures.
    IoRetry {
        /// Which operation retried: `append`, `sync` or `checkpoint`.
        op: String,
        /// Retry attempts this operation consumed (beyond the first try).
        attempts: u64,
    },
    /// The journal exhausted its I/O retries (or hit a permanent error)
    /// and quarantined itself; the service is serving degraded.
    JournalDegraded {
        /// The last offset the journal can still vouch for.
        offset: u64,
        /// What tripped the quarantine.
        reason: String,
    },
    /// A quarantined journal healed: a fresh full checkpoint re-armed it
    /// on a recovered backend.
    JournalHealed {
        /// The offset the healing checkpoint covers.
        offset: u64,
    },
}

impl TelemetryEvent {
    /// Stable machine-readable event-type tag.
    pub fn tag(&self) -> &'static str {
        match self {
            TelemetryEvent::HomeCreated { .. } => "home_created",
            TelemetryEvent::InstallCompleted { .. } => "install_completed",
            TelemetryEvent::ThreatDetected { .. } => "threat_detected",
            TelemetryEvent::UninstallCompleted { .. } => "uninstall_completed",
            TelemetryEvent::MediationDecision { .. } => "mediation_decision",
            TelemetryEvent::CacheProbe { .. } => "cache_probe",
            TelemetryEvent::SweepShardDone { .. } => "sweep_shard_done",
            TelemetryEvent::SnapshotTaken { .. } => "snapshot_taken",
            TelemetryEvent::QueueSaturated { .. } => "queue_saturated",
            TelemetryEvent::JournalAppended { .. } => "journal_appended",
            TelemetryEvent::JournalSynced { .. } => "journal_synced",
            TelemetryEvent::JournalCheckpoint { .. } => "journal_checkpoint",
            TelemetryEvent::JournalReplayed { .. } => "journal_replayed",
            TelemetryEvent::IoRetry { .. } => "io_retry",
            TelemetryEvent::JournalDegraded { .. } => "journal_degraded",
            TelemetryEvent::JournalHealed { .. } => "journal_healed",
        }
    }

    /// Encodes the event as one flat JSON object (an NDJSON stream line),
    /// stamped with its bus sequence number.
    pub fn to_json(&self, seq: u64) -> Json {
        let mut fields = vec![
            ("seq".to_string(), Json::Num(seq as i64)),
            ("type".to_string(), Json::str(self.tag())),
        ];
        match self {
            TelemetryEvent::HomeCreated { home } => {
                fields.push(("home".into(), Json::Num(*home as i64)));
            }
            TelemetryEvent::InstallCompleted {
                home,
                app,
                installed,
                upgrade,
                threats,
                pairs,
                solves,
                cache_hits,
                cache_misses,
                lowered_hits,
                solver_fallbacks,
                micros,
            } => {
                fields.extend([
                    ("home".to_string(), Json::Num(*home as i64)),
                    ("app".to_string(), Json::str(app)),
                    ("installed".to_string(), Json::Bool(*installed)),
                    ("upgrade".to_string(), Json::Bool(*upgrade)),
                    ("threats".to_string(), Json::Num(*threats as i64)),
                    ("pairs".to_string(), Json::Num(*pairs as i64)),
                    ("solves".to_string(), Json::Num(*solves as i64)),
                    ("cache_hits".to_string(), Json::Num(*cache_hits as i64)),
                    ("cache_misses".to_string(), Json::Num(*cache_misses as i64)),
                    ("lowered_hits".to_string(), Json::Num(*lowered_hits as i64)),
                    (
                        "solver_fallbacks".to_string(),
                        Json::Num(*solver_fallbacks as i64),
                    ),
                    ("micros".to_string(), Json::Num(*micros as i64)),
                ]);
            }
            TelemetryEvent::ThreatDetected {
                home,
                kind,
                source_app,
                target_app,
            } => {
                fields.extend([
                    ("home".to_string(), Json::Num(*home as i64)),
                    ("kind".to_string(), Json::str(*kind)),
                    ("source_app".to_string(), Json::str(source_app)),
                    ("target_app".to_string(), Json::str(target_app)),
                ]);
            }
            TelemetryEvent::UninstallCompleted {
                home,
                app,
                removed_rules,
                retired_threats,
            } => {
                fields.extend([
                    ("home".to_string(), Json::Num(*home as i64)),
                    ("app".to_string(), Json::str(app)),
                    (
                        "removed_rules".to_string(),
                        Json::Num(*removed_rules as i64),
                    ),
                    (
                        "retired_threats".to_string(),
                        Json::Num(*retired_threats as i64),
                    ),
                ]);
            }
            TelemetryEvent::MediationDecision {
                home,
                kind,
                verdict,
                latency_ns,
            } => {
                fields.extend([
                    ("home".to_string(), Json::Num(*home as i64)),
                    ("kind".to_string(), Json::str(*kind)),
                    ("verdict".to_string(), Json::str(*verdict)),
                    ("latency_ns".to_string(), Json::Num(*latency_ns as i64)),
                ]);
            }
            TelemetryEvent::CacheProbe {
                hit,
                tier,
                micros,
                weight,
            } => {
                fields.extend([
                    ("hit".to_string(), Json::Bool(*hit)),
                    ("tier".to_string(), Json::str(*tier)),
                    ("micros".to_string(), Json::Num(*micros as i64)),
                    ("weight".to_string(), Json::Num(*weight as i64)),
                ]);
            }
            TelemetryEvent::SweepShardDone {
                shard,
                op,
                homes,
                micros,
            } => {
                fields.extend([
                    ("shard".to_string(), Json::Num(*shard as i64)),
                    ("op".to_string(), Json::str(*op)),
                    ("homes".to_string(), Json::Num(*homes as i64)),
                    ("micros".to_string(), Json::Num(*micros as i64)),
                ]);
            }
            TelemetryEvent::SnapshotTaken { homes, micros } => {
                fields.extend([
                    ("homes".to_string(), Json::Num(*homes as i64)),
                    ("micros".to_string(), Json::Num(*micros as i64)),
                ]);
            }
            TelemetryEvent::QueueSaturated {
                queue,
                shard,
                depth,
            } => {
                fields.extend([
                    ("queue".to_string(), Json::str(*queue)),
                    ("shard".to_string(), Json::Num(*shard as i64)),
                    ("depth".to_string(), Json::Num(*depth as i64)),
                ]);
            }
            TelemetryEvent::JournalAppended { records, bytes } => {
                fields.extend([
                    ("records".to_string(), Json::Num(*records as i64)),
                    ("bytes".to_string(), Json::Num(*bytes as i64)),
                ]);
            }
            TelemetryEvent::JournalSynced { micros } => {
                fields.push(("micros".to_string(), Json::Num(*micros as i64)));
            }
            TelemetryEvent::JournalCheckpoint {
                offset,
                homes,
                full,
                micros,
            } => {
                fields.extend([
                    ("offset".to_string(), Json::Num(*offset as i64)),
                    ("homes".to_string(), Json::Num(*homes as i64)),
                    ("full".to_string(), Json::Bool(*full)),
                    ("micros".to_string(), Json::Num(*micros as i64)),
                ]);
            }
            TelemetryEvent::JournalReplayed { records, micros } => {
                fields.extend([
                    ("records".to_string(), Json::Num(*records as i64)),
                    ("micros".to_string(), Json::Num(*micros as i64)),
                ]);
            }
            TelemetryEvent::IoRetry { op, attempts } => {
                fields.extend([
                    ("op".to_string(), Json::str(op)),
                    ("attempts".to_string(), Json::Num(*attempts as i64)),
                ]);
            }
            TelemetryEvent::JournalDegraded { offset, reason } => {
                fields.extend([
                    ("offset".to_string(), Json::Num(*offset as i64)),
                    ("reason".to_string(), Json::str(reason)),
                ]);
            }
            TelemetryEvent::JournalHealed { offset } => {
                fields.push(("offset".to_string(), Json::Num(*offset as i64)));
            }
        }
        Json::Obj(fields.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_event_encodes_with_seq_and_type() {
        let events = [
            TelemetryEvent::HomeCreated { home: 3 },
            TelemetryEvent::InstallCompleted {
                home: 1,
                app: "OnApp".into(),
                installed: true,
                upgrade: false,
                threats: 0,
                pairs: 4,
                solves: 2,
                cache_hits: 2,
                cache_misses: 2,
                lowered_hits: 1,
                solver_fallbacks: 1,
                micros: 120,
            },
            TelemetryEvent::ThreatDetected {
                home: 1,
                kind: "AR",
                source_app: "A".into(),
                target_app: "B".into(),
            },
            TelemetryEvent::UninstallCompleted {
                home: 1,
                app: "A".into(),
                removed_rules: 2,
                retired_threats: 1,
            },
            TelemetryEvent::MediationDecision {
                home: 1,
                kind: "AR",
                verdict: "suppress",
                latency_ns: 900,
            },
            TelemetryEvent::CacheProbe {
                hit: true,
                tier: "lowered",
                micros: 2,
                weight: 64,
            },
            TelemetryEvent::SweepShardDone {
                shard: 5,
                op: "upgrade",
                homes: 12,
                micros: 800,
            },
            TelemetryEvent::SnapshotTaken {
                homes: 64,
                micros: 1500,
            },
            TelemetryEvent::QueueSaturated {
                queue: "shard",
                shard: 2,
                depth: 64,
            },
            TelemetryEvent::JournalAppended {
                records: 1,
                bytes: 180,
            },
            TelemetryEvent::JournalSynced { micros: 45 },
            TelemetryEvent::JournalCheckpoint {
                offset: 96,
                homes: 12,
                full: false,
                micros: 2200,
            },
            TelemetryEvent::JournalReplayed {
                records: 34,
                micros: 5100,
            },
            TelemetryEvent::IoRetry {
                op: "append".into(),
                attempts: 2,
            },
            TelemetryEvent::JournalDegraded {
                offset: 41,
                reason: "injected: disk full".into(),
            },
            TelemetryEvent::JournalHealed { offset: 41 },
        ];
        for (n, event) in events.iter().enumerate() {
            let json = event.to_json(n as u64);
            assert_eq!(json.get("seq").and_then(Json::as_num), Some(n as i64));
            assert_eq!(
                json.get("type").and_then(Json::as_str),
                Some(event.tag()),
                "tag must match encoding"
            );
            // Round-trips through the wire codec.
            let back = Json::parse(&json.to_text()).unwrap();
            assert_eq!(back.get("type").and_then(Json::as_str), Some(event.tag()));
        }
    }
}
