//! # hg-detector — CAI threat detection engine
//!
//! Implements paper §VI: given the rules of installed apps, detect the seven
//! Cross-App Interference threat categories of Table I:
//!
//! | Category | Kinds | Section |
//! |---|---|---|
//! | Action-Interference | Actuator Race (AR), Goal Conflict (GC) | §VI-A |
//! | Trigger-Interference | Covert Triggering (CT), Self Disabling (SD), Loop Triggering (LT) | §VI-B |
//! | Condition-Interference | Enabling (EC), Disabling (DC) | §VI-C |
//!
//! plus chained (indirect) threats through user-allowed pairs (§VI-D,
//! [`chained`]).
//!
//! Detection per pair is candidate filtering (action analysis over the
//! M_AR/M_GC maps from `hg-capability`) followed by overlapping-condition
//! detection via `hg-solver`, with solver-result reuse across threat kinds
//! as in the paper's Fig. 9.
//!
//! For serving installs against a large population, the per-pair filter is
//! lifted into a persistent candidate index ([`index`]) driven by the
//! incremental [`DetectionEngine`] ([`incremental`]): installed rules are
//! prepared (unified + faceted) once, and a new rule visits only the
//! index-colliding subset — provably reporting the same threat set as the
//! exhaustive pairwise sweep.
//!
//! # Examples
//!
//! ```
//! use hg_detector::{Detector, ThreatKind};
//! use hg_symexec::{extract, ExtractorConfig};
//!
//! // Two apps race on the same (type-unified) light.
//! let a = extract(r#"
//!     input "m", "capability.motionSensor"
//!     input "lamp", "capability.switch", title: "lamp"
//!     def installed() { subscribe(m, "motion", h) }
//!     def h(evt) { if (evt.value == "active") { lamp.on() } }
//! "#, "A", &ExtractorConfig::default()).unwrap();
//! let b = extract(r#"
//!     input "m", "capability.motionSensor"
//!     input "lamp", "capability.switch", title: "lamp"
//!     def installed() { subscribe(m, "motion", h) }
//!     def h(evt) { if (evt.value == "active") { lamp.off() } }
//! "#, "B", &ExtractorConfig::default()).unwrap();
//!
//! let detector = Detector::store_wide();
//! let (threats, _) = detector.detect_pair(&a.rules[0], &b.rules[0]);
//! assert!(threats.iter().any(|t| t.kind == ThreatKind::ActuatorRace));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chained;
pub mod engine;
pub mod incremental;
pub mod index;
pub mod lowering;
pub mod overlap;
pub mod report;
pub mod verdict_cache;

pub use chained::{find_chains, Chain, Edge};
pub use engine::Detector;
pub use incremental::DetectionEngine;
pub use index::{actuator_key, CandidateIndex, PreparedRule};
pub use lowering::LoweredProgram;
pub use overlap::{OverlapSolver, Unification, UserValues};
pub use report::{DecisionTier, DetectStats, Threat, ThreatKind};
pub use verdict_cache::{CacheStats, HotPair, PairKey, VerdictCache};
