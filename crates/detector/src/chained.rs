//! Chained CAI threat detection (paper §VI-D).
//!
//! Users may accept a pairwise interference and install anyway; HomeGuard
//! records such pairs in an *Allowed* list. When a new rule arrives, the
//! detector must find *indirect* interference: chains `r1 → r2 → ... → rn`
//! through previously-allowed edges, e.g. `CurlingIron` triggering
//! `SwitchChangesMode` triggering `MakeItSo`'s door unlock (§VIII-B).

use crate::report::{Threat, ThreatKind};
use hg_rules::rule::RuleId;
use std::collections::BTreeMap;

/// A directed interference edge usable in chains: CT (action fires the next
/// rule) and EC (action enables the next rule's condition).
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// The interfering rule.
    pub from: RuleId,
    /// The interfered-with rule.
    pub to: RuleId,
    /// The pairwise threat kind the edge came from.
    pub kind: ThreatKind,
}

impl Edge {
    /// Extracts chainable edges from pairwise threats. Only the directed,
    /// execution-propagating kinds form chains.
    pub fn from_threats(threats: &[Threat]) -> Vec<Edge> {
        threats
            .iter()
            .filter(|t| {
                matches!(
                    t.kind,
                    ThreatKind::CovertTriggering | ThreatKind::EnablingCondition
                )
            })
            .map(|t| Edge {
                from: t.source.clone(),
                to: t.target.clone(),
                kind: t.kind,
            })
            .collect()
    }
}

/// A chain of rules connected by interference edges — a *covert rule* whose
/// trigger is the head's trigger and whose action is the tail's action.
#[derive(Debug, Clone, PartialEq)]
pub struct Chain {
    /// The rules along the chain, head first.
    pub rules: Vec<RuleId>,
    /// The edge kinds along the chain (`rules.len() - 1` entries).
    pub kinds: Vec<ThreatKind>,
}

impl Chain {
    /// Chain length in edges.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the chain is empty (never produced by the finder).
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }
}

impl std::fmt::Display for Chain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                write!(f, " ={}=> ", self.kinds[i - 1].acronym())?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

/// Finds all chains of length ≥ 2 edges (indirect interference) up to
/// `max_len` edges, with no repeated rule (loops are reported by LT
/// detection, not here).
pub fn find_chains(edges: &[Edge], max_len: usize) -> Vec<Chain> {
    let mut adjacency: BTreeMap<&RuleId, Vec<&Edge>> = BTreeMap::new();
    for e in edges {
        adjacency.entry(&e.from).or_default().push(e);
    }
    let mut chains = Vec::new();
    for start in adjacency.keys().copied() {
        let mut path = vec![start.clone()];
        let mut kinds = Vec::new();
        dfs(
            start,
            &adjacency,
            &mut path,
            &mut kinds,
            max_len,
            &mut chains,
        );
    }
    chains
}

fn dfs(
    node: &RuleId,
    adjacency: &BTreeMap<&RuleId, Vec<&Edge>>,
    path: &mut Vec<RuleId>,
    kinds: &mut Vec<ThreatKind>,
    max_len: usize,
    chains: &mut Vec<Chain>,
) {
    if kinds.len() >= max_len {
        return;
    }
    let Some(next_edges) = adjacency.get(node) else {
        return;
    };
    for edge in next_edges {
        if path.contains(&edge.to) {
            continue;
        }
        path.push(edge.to.clone());
        kinds.push(edge.kind);
        if kinds.len() >= 2 {
            chains.push(Chain {
                rules: path.clone(),
                kinds: kinds.clone(),
            });
        }
        dfs(&edge.to, adjacency, path, kinds, max_len, chains);
        path.pop();
        kinds.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(app: &str) -> RuleId {
        RuleId::new(app, 0)
    }

    fn edge(a: &str, b: &str) -> Edge {
        Edge {
            from: rid(a),
            to: rid(b),
            kind: ThreatKind::CovertTriggering,
        }
    }

    #[test]
    fn finds_three_rule_chain() {
        // CurlingIron -> SwitchChangesMode -> MakeItSo (paper §VIII-B #2).
        let edges = vec![
            edge("CurlingIron", "SwitchChangesMode"),
            edge("SwitchChangesMode", "MakeItSo"),
        ];
        let chains = find_chains(&edges, 4);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].rules.len(), 3);
        assert_eq!(chains[0].len(), 2);
        let s = chains[0].to_string();
        assert!(s.contains("CurlingIron"), "{s}");
        assert!(s.contains("=CT=>"), "{s}");
    }

    #[test]
    fn no_chain_from_single_edge() {
        let chains = find_chains(&[edge("A", "B")], 4);
        assert!(chains.is_empty());
    }

    #[test]
    fn cycles_do_not_loop_forever() {
        let edges = vec![edge("A", "B"), edge("B", "A"), edge("B", "C")];
        let chains = find_chains(&edges, 8);
        // A->B->C is the only simple chain of length >= 2 plus B->A->B is
        // blocked by the repeat check.
        assert!(chains.iter().any(|c| c.rules.len() == 3));
        assert!(chains.iter().all(|c| {
            let mut seen = std::collections::BTreeSet::new();
            c.rules.iter().all(|r| seen.insert(r.clone()))
        }));
    }

    #[test]
    fn max_len_caps_depth() {
        let edges = vec![
            edge("A", "B"),
            edge("B", "C"),
            edge("C", "D"),
            edge("D", "E"),
        ];
        let chains = find_chains(&edges, 2);
        assert!(chains.iter().all(|c| c.len() <= 2));
        let deep = find_chains(&edges, 8);
        assert!(deep.iter().any(|c| c.len() == 4));
    }

    #[test]
    fn edges_filter_to_directed_kinds() {
        let threats = vec![
            Threat {
                kind: ThreatKind::CovertTriggering,
                source: rid("A"),
                target: rid("B"),
                witness: None,
                actuator: None,
                property: None,
                note: String::new(),
            },
            Threat {
                kind: ThreatKind::ActuatorRace,
                source: rid("A"),
                target: rid("C"),
                witness: None,
                actuator: None,
                property: None,
                note: String::new(),
            },
            Threat {
                kind: ThreatKind::EnablingCondition,
                source: rid("B"),
                target: rid("C"),
                witness: None,
                actuator: None,
                property: None,
                note: String::new(),
            },
        ];
        let edges = Edge::from_threats(&threats);
        assert_eq!(edges.len(), 2);
    }
}
