//! Threat kinds and detection reports (paper Table I).

use hg_capability::domains::EnvProperty;
use hg_rules::rule::RuleId;
use hg_solver::Assignment;
use std::fmt;

/// The seven CAI threat categories of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ThreatKind {
    /// Actuator Race: contradictory actions on the same actuator.
    ActuatorRace,
    /// Goal Conflict: actions with contradictory goals on different actuators.
    GoalConflict,
    /// Covert Triggering: a rule's action triggers another rule.
    CovertTriggering,
    /// Self Disabling: a rule triggers another rule that undoes it.
    SelfDisabling,
    /// Loop Triggering: two rules trigger each other with contradictory
    /// actions.
    LoopTriggering,
    /// Enabling-Condition interference.
    EnablingCondition,
    /// Disabling-Condition interference.
    DisablingCondition,
}

impl ThreatKind {
    /// All kinds, in Table I order.
    pub const ALL: [ThreatKind; 7] = [
        ThreatKind::ActuatorRace,
        ThreatKind::GoalConflict,
        ThreatKind::CovertTriggering,
        ThreatKind::SelfDisabling,
        ThreatKind::LoopTriggering,
        ThreatKind::EnablingCondition,
        ThreatKind::DisablingCondition,
    ];

    /// The paper's two-letter acronym.
    pub fn acronym(&self) -> &'static str {
        match self {
            ThreatKind::ActuatorRace => "AR",
            ThreatKind::GoalConflict => "GC",
            ThreatKind::CovertTriggering => "CT",
            ThreatKind::SelfDisabling => "SD",
            ThreatKind::LoopTriggering => "LT",
            ThreatKind::EnablingCondition => "EC",
            ThreatKind::DisablingCondition => "DC",
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            ThreatKind::ActuatorRace => "Actuator Race",
            ThreatKind::GoalConflict => "Goal Conflict",
            ThreatKind::CovertTriggering => "Covert Triggering",
            ThreatKind::SelfDisabling => "Self Disabling",
            ThreatKind::LoopTriggering => "Loop Triggering",
            ThreatKind::EnablingCondition => "Enabling-Condition Interference",
            ThreatKind::DisablingCondition => "Disabling-Condition Interference",
        }
    }

    /// Whether the relation is directed (R1 interferes with R2, not
    /// necessarily vice versa).
    pub fn is_directed(&self) -> bool {
        matches!(
            self,
            ThreatKind::CovertTriggering
                | ThreatKind::SelfDisabling
                | ThreatKind::EnablingCondition
                | ThreatKind::DisablingCondition
        )
    }
}

impl fmt::Display for ThreatKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name(), self.acronym())
    }
}

/// One detected threat between two rules.
///
/// For directed kinds, `source` is R1 (the interfering rule) and `target`
/// is R2 (the interfered-with rule).
#[derive(Debug, Clone, PartialEq)]
pub struct Threat {
    /// Threat category.
    pub kind: ThreatKind,
    /// The interfering rule.
    pub source: RuleId,
    /// The interfered-with rule.
    pub target: RuleId,
    /// A concrete situation in which the interference manifests, when the
    /// solver produced one.
    pub witness: Option<Assignment>,
    /// The actuator both rules fight over (AR/SD/LT), as a display string.
    pub actuator: Option<String>,
    /// The conflicting goal property (GC) or interference channel (CT/EC/DC
    /// via the environment).
    pub property: Option<EnvProperty>,
    /// Free-text explanation assembled by the detector.
    pub note: String,
}

impl fmt::Display for Threat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} -> {}: {}",
            self.kind.acronym(),
            self.source,
            self.target,
            self.note
        )
    }
}

/// Counters for the Fig. 9 efficiency analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectStats {
    /// Rule pairs examined.
    pub pairs: u64,
    /// Pairs that survived candidate filtering per threat kind.
    pub candidates: u64,
    /// Constraint-solver invocations.
    pub solves: u64,
    /// Solver invocations avoided by reusing a previous result (the green
    /// dotted reuse edges of Fig. 9).
    pub reused: u64,
    /// Rule pairs never visited at all because the candidate index proved
    /// they cannot interact. Each such pair would have cost at least one
    /// merged-situation solve in a filterless detector, so this is the
    /// index's solver-invocation saving.
    pub pruned: u64,
    /// Pair verdicts answered from the fleet-shared
    /// [`VerdictCache`](crate::VerdictCache): filtering, model build and
    /// solving were all skipped. The other counters of a hit pair report
    /// the memoized *logical* effort, so cached and uncached runs agree on
    /// everything but the hit/miss markers.
    pub cache_hits: u64,
    /// Pair verdicts computed fresh and published to the cache. Zero when
    /// no cache is attached.
    pub cache_misses: u64,
    /// Overlap questions answered by the lowered pair-check tier (a
    /// compiled [`LoweredProgram`](crate::LoweredProgram) pair decided
    /// without building a solver model). Each such answer is bit-identical
    /// to what the solver would have produced, so `solves` still counts it.
    pub lowered_hits: u64,
    /// Overlap questions the lowered tier refused (unlowerable shape or a
    /// check-time refusal), answered by the full `OverlapSolver` instead.
    pub solver_fallbacks: u64,
}

impl DetectStats {
    /// Merges another counter set into this one.
    pub fn absorb(&mut self, other: DetectStats) {
        self.pairs += other.pairs;
        self.candidates += other.candidates;
        self.solves += other.solves;
        self.reused += other.reused;
        self.pruned += other.pruned;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.lowered_hits += other.lowered_hits;
        self.solver_fallbacks += other.solver_fallbacks;
    }

    /// This counter set with the cache hit/miss and tier markers zeroed —
    /// the *logical* detection effort, identical between a cached and an
    /// uncached run, and between a lowered and a solver-forced run, over
    /// the same population (the differential harnesses compare exactly
    /// this projection).
    pub fn logical(mut self) -> DetectStats {
        self.cache_hits = 0;
        self.cache_misses = 0;
        self.lowered_hits = 0;
        self.solver_fallbacks = 0;
        self
    }

    /// Which tier decided this counter set's overlap questions.
    pub fn deciding_tier(&self) -> DecisionTier {
        if self.lowered_hits > 0 && self.solver_fallbacks == 0 {
            DecisionTier::Lowered
        } else if self.lowered_hits == 0 {
            DecisionTier::Solver
        } else {
            DecisionTier::Mixed
        }
    }
}

/// Which tier of the pair-check pipeline produced a verdict: the lowered
/// evaluator alone, the full solver alone, or a mix (some questions
/// lowered, some refused to the solver).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionTier {
    /// Every overlap question was answered by the lowered evaluator.
    Lowered,
    /// Every overlap question fell through to the full solver (including
    /// pairs that asked no overlap question at all).
    Solver,
    /// Some questions lowered, others refused to the solver.
    Mixed,
}

impl DecisionTier {
    /// Short wire/telemetry name.
    pub fn name(&self) -> &'static str {
        match self {
            DecisionTier::Lowered => "lowered",
            DecisionTier::Solver => "solver",
            DecisionTier::Mixed => "mixed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acronyms_match_table_i() {
        let acr: Vec<_> = ThreatKind::ALL.iter().map(|k| k.acronym()).collect();
        assert_eq!(acr, vec!["AR", "GC", "CT", "SD", "LT", "EC", "DC"]);
    }

    #[test]
    fn directedness() {
        assert!(ThreatKind::CovertTriggering.is_directed());
        assert!(ThreatKind::EnablingCondition.is_directed());
        assert!(!ThreatKind::ActuatorRace.is_directed());
        assert!(!ThreatKind::LoopTriggering.is_directed());
    }

    #[test]
    fn display_forms() {
        let t = Threat {
            kind: ThreatKind::ActuatorRace,
            source: RuleId::new("A", 0),
            target: RuleId::new("B", 1),
            witness: None,
            actuator: Some("window1".into()),
            property: None,
            note: "opposite commands".into(),
        };
        let s = t.to_string();
        assert!(s.contains("[AR]"));
        assert!(s.contains("A#0"));
        assert!(s.contains("B#1"));
    }

    #[test]
    fn stats_absorb() {
        let mut a = DetectStats {
            pairs: 1,
            candidates: 2,
            solves: 3,
            reused: 4,
            pruned: 5,
            cache_hits: 6,
            cache_misses: 7,
            lowered_hits: 8,
            solver_fallbacks: 9,
        };
        a.absorb(DetectStats {
            pairs: 10,
            candidates: 20,
            solves: 30,
            reused: 40,
            pruned: 50,
            cache_hits: 60,
            cache_misses: 70,
            lowered_hits: 80,
            solver_fallbacks: 90,
        });
        assert_eq!(
            a,
            DetectStats {
                pairs: 11,
                candidates: 22,
                solves: 33,
                reused: 44,
                pruned: 55,
                cache_hits: 66,
                cache_misses: 77,
                lowered_hits: 88,
                solver_fallbacks: 99,
            }
        );
        // The logical projection strips the cache and tier markers.
        assert_eq!(
            a.logical(),
            DetectStats {
                cache_hits: 0,
                cache_misses: 0,
                lowered_hits: 0,
                solver_fallbacks: 0,
                ..a
            }
        );
    }

    #[test]
    fn deciding_tier_classifies() {
        let mut s = DetectStats::default();
        assert_eq!(s.deciding_tier(), DecisionTier::Solver);
        s.lowered_hits = 2;
        assert_eq!(s.deciding_tier(), DecisionTier::Lowered);
        s.solver_fallbacks = 1;
        assert_eq!(s.deciding_tier(), DecisionTier::Mixed);
        assert_eq!(DecisionTier::Lowered.name(), "lowered");
        assert_eq!(DecisionTier::Mixed.name(), "mixed");
        assert_eq!(DecisionTier::Solver.name(), "solver");
    }
}
