//! Device unification, domain declaration, and overlapping-condition
//! detection (paper §VI-A2).
//!
//! Before two rules' formulas can be merged, their device references must be
//! *unified*: the detector must know when two input slots denote the same
//! physical device. In deployment that comes from the 128-bit device ids the
//! configuration collector gathered; in store-wide analysis (paper §VIII-B)
//! two slots of the same device type are assumed bindable to the same device.

use hg_capability::capability;
use hg_capability::domains::{scaled, AttrDomain};
use hg_rules::constraint::Formula;
use hg_rules::rule::{Action, ActionSubject, Rule, Trigger};
use hg_rules::value::Value;
use hg_rules::varid::{DeviceRef, VarId};
use hg_solver::{Model, Outcome};
use std::borrow::Borrow;
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// Borrowed-lookup adapter for `(String, String)`-keyed maps.
///
/// The recorders key bindings and user values by owned `(app, input)`
/// pairs, but the detection hot paths look them up with borrowed `&str`s
/// straight out of a [`VarId`] — and `BTreeMap::get` cannot borrow a
/// `(String, String)` as `(&str, &str)`. This trait bridges the gap the
/// standard way: both tuple forms implement it, the owned key [`Borrow`]s
/// the trait object, and the trait object carries the tuple's ordering, so
/// `map.get(&(app, name) as &dyn SlotKey)` finds the owned entry without
/// cloning two `String`s per lookup.
trait SlotKey {
    /// The app component.
    fn app(&self) -> &str;
    /// The input/slot component.
    fn slot(&self) -> &str;
}

impl SlotKey for (String, String) {
    fn app(&self) -> &str {
        &self.0
    }
    fn slot(&self) -> &str {
        &self.1
    }
}

impl SlotKey for (&str, &str) {
    fn app(&self) -> &str {
        self.0
    }
    fn slot(&self) -> &str {
        self.1
    }
}

impl<'a> Borrow<dyn SlotKey + 'a> for (String, String) {
    fn borrow(&self) -> &(dyn SlotKey + 'a) {
        self
    }
}

impl PartialEq for dyn SlotKey + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.app() == other.app() && self.slot() == other.slot()
    }
}

impl Eq for dyn SlotKey + '_ {}

impl PartialOrd for dyn SlotKey + '_ {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for dyn SlotKey + '_ {
    // Must agree with the derived lexicographic order of the owned tuple,
    // or lookups would walk the wrong side of the tree.
    fn cmp(&self, other: &Self) -> Ordering {
        self.app()
            .cmp(other.app())
            .then_with(|| self.slot().cmp(other.slot()))
    }
}

/// Allocation-free lookup in an `(app, input)`-keyed map.
fn slot_get<'m, V>(map: &'m BTreeMap<(String, String), V>, app: &str, slot: &str) -> Option<&'m V> {
    map.get(&(app, slot) as &dyn SlotKey)
}

/// How device slots are resolved to concrete devices.
#[derive(Debug, Clone, Default)]
pub enum Unification {
    /// Use collected configuration: `(app, input) → device id`.
    Bindings(BTreeMap<(String, String), String>),
    /// Assume two slots of the same device type are the same device
    /// (store-wide analysis, §VIII-B).
    #[default]
    ByType,
}

impl Unification {
    /// Resolves a device reference to its canonical bound form.
    pub fn resolve(&self, d: &DeviceRef) -> DeviceRef {
        match d {
            DeviceRef::Bound { .. } => d.clone(),
            DeviceRef::Unbound {
                app,
                input,
                capability,
                kind,
            } => match self {
                Unification::Bindings(map) => match slot_get(map, app, input) {
                    Some(id) => DeviceRef::bound(id.clone()),
                    None => d.clone(),
                },
                Unification::ByType => DeviceRef::Bound {
                    device_id: format!("type:{capability}/{}", kind.name()),
                },
            },
        }
    }

    /// Rewrites a rule so every device reference is resolved.
    pub fn unify_rule(&self, rule: &Rule) -> Rule {
        let map_var = |v: &VarId| -> VarId {
            match v {
                VarId::DeviceAttr { device, attribute } => VarId::DeviceAttr {
                    device: self.resolve(device),
                    attribute: attribute.clone(),
                },
                other => other.clone(),
            }
        };
        let map_formula = |f: &Formula| f.map_vars(&map_var);
        let trigger = match &rule.trigger {
            Trigger::DeviceEvent {
                subject,
                attribute,
                constraint,
            } => Trigger::DeviceEvent {
                subject: self.resolve(subject),
                attribute: attribute.clone(),
                constraint: constraint.as_ref().map(map_formula),
            },
            Trigger::ModeChange { constraint } => Trigger::ModeChange {
                constraint: constraint.as_ref().map(map_formula),
            },
            other => other.clone(),
        };
        let actions = rule
            .actions
            .iter()
            .map(|a| Action {
                subject: match &a.subject {
                    ActionSubject::Device(d) => ActionSubject::Device(self.resolve(d)),
                    other => other.clone(),
                },
                ..a.clone()
            })
            .collect();
        Rule {
            id: rule.id.clone(),
            trigger,
            condition: hg_rules::rule::Condition {
                data_constraints: rule.condition.data_constraints.clone(),
                predicate: map_formula(&rule.condition.predicate),
            },
            actions,
        }
    }
}

/// Configuration values collected at install time: `(app, input) → value`.
pub type UserValues = BTreeMap<(String, String), Value>;

/// Builds a solver model declaring domains for every variable the formulas
/// mention, substituting collected user-input values first.
///
/// The solver context (modes + user values) is sealed behind accessors:
/// every mutation goes through a setter, so the 128-bit modes fingerprint
/// the verdict-cache key needs can be maintained **once per change**
/// instead of being rehashed per pair visit.
#[derive(Debug, Clone)]
pub struct OverlapSolver {
    /// The home's location modes.
    modes: Vec<String>,
    /// Pre-hashed content fingerprint of `modes` (see
    /// [`OverlapSolver::modes_fingerprint`]), maintained by the setters.
    modes_fp: u128,
    /// Collected user-configured values.
    user_values: UserValues,
}

impl Default for OverlapSolver {
    fn default() -> Self {
        OverlapSolver::with_modes(["Home", "Away", "Night"])
    }
}

impl OverlapSolver {
    /// A solver over the given location modes and no collected values.
    pub fn with_modes(modes: impl IntoIterator<Item = impl Into<String>>) -> OverlapSolver {
        let mut solver = OverlapSolver {
            modes: Vec::new(),
            modes_fp: 0,
            user_values: UserValues::new(),
        };
        solver.set_modes(modes);
        solver
    }

    /// The home's location modes.
    pub fn modes(&self) -> &[String] {
        &self.modes
    }

    /// Replaces the home's location modes (and refreshes the cached modes
    /// fingerprint).
    pub fn set_modes(&mut self, modes: impl IntoIterator<Item = impl Into<String>>) {
        self.modes = modes.into_iter().map(Into::into).collect();
        self.modes_fp = crate::verdict_cache::fingerprint128(|h| {
            use std::hash::Hash;
            self.modes.hash(h);
        });
    }

    /// The 128-bit content fingerprint of the mode list, computed once per
    /// [`set_modes`](OverlapSolver::set_modes) call. The verdict-cache pair
    /// key hashes this instead of re-walking every mode string per pair —
    /// the pre-hash that sealing the fields made sound.
    pub fn modes_fingerprint(&self) -> u128 {
        self.modes_fp
    }

    /// The collected configuration values.
    pub fn user_values(&self) -> &UserValues {
        &self.user_values
    }

    /// Replaces the collected configuration values wholesale.
    pub fn set_user_values(&mut self, values: UserValues) {
        self.user_values = values;
    }

    /// Records one collected configuration value.
    pub fn set_user_value(
        &mut self,
        app: impl Into<String>,
        input: impl Into<String>,
        value: Value,
    ) {
        self.user_values.insert((app.into(), input.into()), value);
    }
    /// Substitutes collected configuration values into a formula. The
    /// lookup borrows the variable's `&str` components directly — no
    /// `String` clones per [`VarId::UserInput`] visit (this closure runs
    /// for every variable of every formula of every solved pair).
    pub fn substitute(&self, f: &Formula) -> Formula {
        f.substitute(&|v| match v {
            VarId::UserInput { app, name } => self.user_value(app, name).cloned(),
            _ => None,
        })
    }

    /// The collected configuration value for one user input, looked up
    /// without cloning the key.
    pub fn user_value(&self, app: &str, name: &str) -> Option<&Value> {
        slot_get(&self.user_values, app, name)
    }

    /// Solves the conjunction of `formulas` after substitution and domain
    /// declaration. This is the paper's overlapping-condition detection.
    pub fn solve(&self, formulas: &[&Formula]) -> Outcome {
        let merged = Formula::and(formulas.iter().map(|f| self.substitute(f)));
        let mut model = Model::new();
        self.declare_domains(&mut model, &merged);
        model.solve(&merged)
    }

    /// Declares domains for every variable in `f`.
    pub fn declare_domains(&self, model: &mut Model, f: &Formula) {
        for var in f.variables() {
            if model.is_declared(&var) {
                continue;
            }
            match &var {
                VarId::DeviceAttr { device, attribute } => {
                    if let Some(domain) = attr_domain(device, attribute) {
                        match domain {
                            AttrDomain::Enum(values) => {
                                model.declare_enum(var.clone(), values.iter().copied());
                            }
                            AttrDomain::Numeric { min, max, .. } => {
                                model.declare_int(var.clone(), min, max);
                            }
                            AttrDomain::Text => {}
                        }
                    }
                }
                VarId::Env(p) => {
                    let (lo, hi) = env_bounds(p);
                    model.declare_int(var.clone(), lo, hi);
                }
                VarId::Mode => {
                    model.declare_enum(var.clone(), self.modes.iter().map(String::as_str));
                }
                VarId::TimeOfDay => {
                    model.declare_int(var.clone(), 0, scaled(24 * 60));
                }
                VarId::DayOfWeek => {
                    model.declare_int(var.clone(), 0, scaled(6));
                }
                // User inputs, state and opaque sources keep inferred
                // domains.
                _ => {}
            }
        }
    }
}

/// The attribute's domain, looked up through any capability that declares it
/// (preferring the device's own capability when known).
pub(crate) fn attr_domain(device: &DeviceRef, attribute: &str) -> Option<AttrDomain> {
    if let Some(capname) = device.capability() {
        if let Some(cap) = capability::lookup(capname) {
            if let Some(attr) = cap.attribute(attribute) {
                return Some(attr.domain);
            }
        }
    }
    // Synthetic `type:capability/kind` ids keep the capability in the id.
    if let DeviceRef::Bound { device_id } = device {
        if let Some(rest) = device_id.strip_prefix("type:") {
            if let Some((capname, _)) = rest.split_once('/') {
                if let Some(cap) = capability::lookup(capname) {
                    if let Some(attr) = cap.attribute(attribute) {
                        return Some(attr.domain);
                    }
                }
            }
        }
    }
    capability::capabilities_with_attribute(attribute)
        .first()
        .and_then(|c| c.attribute(attribute))
        .map(|a| a.domain)
}

/// Physical bounds for environment properties (scaled).
pub fn env_bounds(property: &str) -> (i64, i64) {
    match property {
        "temperature" => (scaled(-40), scaled(150)),
        "illuminance" => (0, scaled(100_000)),
        "humidity" => (0, scaled(100)),
        "power" => (0, scaled(20_000)),
        "noise" => (0, scaled(200)),
        "airQuality" => (0, scaled(10_000)),
        _ => (scaled(-1_000_000), scaled(1_000_000)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hg_capability::device_kind::DeviceKind;
    use hg_rules::constraint::{CmpOp, Term};

    fn slot(app: &str, input: &str, kind: DeviceKind) -> DeviceRef {
        DeviceRef::Unbound {
            app: app.into(),
            input: input.into(),
            capability: "switch".into(),
            kind,
        }
    }

    #[test]
    fn by_type_unifies_same_kind() {
        let u = Unification::ByType;
        let a = u.resolve(&slot("A", "tv1", DeviceKind::Tv));
        let b = u.resolve(&slot("B", "tele", DeviceKind::Tv));
        let c = u.resolve(&slot("B", "lamp", DeviceKind::Light));
        assert!(a.same_device(&b));
        assert!(!a.same_device(&c));
    }

    #[test]
    fn bindings_unify_configured_devices() {
        let mut map = BTreeMap::new();
        map.insert(("A".to_string(), "tv1".to_string()), "0e0b".to_string());
        map.insert(("B".to_string(), "tele".to_string()), "0e0b".to_string());
        map.insert(("B".to_string(), "lamp".to_string()), "ffff".to_string());
        let u = Unification::Bindings(map);
        let a = u.resolve(&slot("A", "tv1", DeviceKind::Tv));
        let b = u.resolve(&slot("B", "tele", DeviceKind::Tv));
        let c = u.resolve(&slot("B", "lamp", DeviceKind::Light));
        assert!(a.same_device(&b));
        assert!(!a.same_device(&c));
        // Unconfigured slots stay unbound.
        let d = u.resolve(&slot("C", "x", DeviceKind::Tv));
        assert!(matches!(d, DeviceRef::Unbound { .. }));
    }

    #[test]
    fn substitution_uses_collected_config() {
        let mut solver = OverlapSolver::default();
        solver.set_user_value("A", "threshold", Value::Num(scaled(30)));
        let f = Formula::cmp(
            Term::var(VarId::env("temperature")),
            CmpOp::Gt,
            Term::var(VarId::UserInput {
                app: "A".into(),
                name: "threshold".into(),
            }),
        );
        let sub = solver.substitute(&f);
        assert!(sub.to_string().contains("> 30"), "{sub}");
    }

    #[test]
    fn solve_declares_device_attr_domain() {
        let solver = OverlapSolver::default();
        let dev = Unification::ByType.resolve(&slot("A", "sw", DeviceKind::Light));
        let var = VarId::device_attr(dev, "switch");
        // switch == "on" is satisfiable; "sideways" is not in the domain.
        let ok = Formula::var_eq(var.clone(), Value::sym("on"));
        assert!(solver.solve(&[&ok]).is_sat());
        let bad = Formula::var_eq(var, Value::sym("sideways"));
        assert_eq!(solver.solve(&[&bad]), Outcome::Unsat);
    }

    #[test]
    fn solve_env_bounds() {
        let solver = OverlapSolver::default();
        let too_hot = Formula::cmp(
            Term::var(VarId::env("temperature")),
            CmpOp::Gt,
            Term::num(scaled(200)),
        );
        assert_eq!(solver.solve(&[&too_hot]), Outcome::Unsat);
    }

    #[test]
    fn mode_domain_from_home_config() {
        let solver = OverlapSolver::default();
        let ok = Formula::var_eq(VarId::Mode, Value::sym("Night"));
        assert!(solver.solve(&[&ok]).is_sat());
        let bad = Formula::var_eq(VarId::Mode, Value::sym("Party"));
        assert_eq!(solver.solve(&[&bad]), Outcome::Unsat);
    }

    #[test]
    fn unify_rule_rewrites_everything() {
        let tv = slot("A", "tv1", DeviceKind::Tv);
        let rule = Rule {
            id: hg_rules::rule::RuleId::new("A", 0),
            trigger: Trigger::DeviceEvent {
                subject: tv.clone(),
                attribute: "switch".into(),
                constraint: Some(Formula::var_eq(
                    VarId::device_attr(tv.clone(), "switch"),
                    Value::sym("on"),
                )),
            },
            condition: hg_rules::rule::Condition {
                data_constraints: vec![],
                predicate: Formula::var_eq(
                    VarId::device_attr(tv.clone(), "switch"),
                    Value::sym("on"),
                ),
            },
            actions: vec![Action::device(tv, "off")],
        };
        let unified = Unification::ByType.unify_rule(&rule);
        assert!(matches!(
            unified.trigger.subject().unwrap(),
            DeviceRef::Bound { .. }
        ));
        for v in unified.condition.predicate.variables() {
            assert!(matches!(
                v,
                VarId::DeviceAttr {
                    device: DeviceRef::Bound { .. },
                    ..
                }
            ));
        }
        assert!(matches!(
            unified.actions[0].subject,
            ActionSubject::Device(DeviceRef::Bound { .. })
        ));
    }
}
