//! Pairwise CAI threat detection (paper §VI).
//!
//! Detection is a two-stage pipeline per rule pair: cheap *candidate
//! filtering* from the action analysis maps (M_AR, M_GC), then
//! *overlapping-condition detection* with the constraint solver. Solver
//! results are reused across threat kinds exactly as Fig. 9's green dotted
//! edges describe: CT/SD/LT reuse the AR overlap result, DC reuses EC's.

use crate::index::{prepare_with, PreparedRule};
use crate::lowering::{self, LoweredProgram};
use crate::overlap::{OverlapSolver, Unification};
use crate::report::{DetectStats, Threat, ThreatKind};
use crate::verdict_cache::{fingerprint128, PairKey, VerdictCache};
use hg_capability::capability::{self, AttrEffect};
use hg_capability::contradiction::{contradiction, Contradiction};
use hg_capability::device_kind::DeviceKind;
use hg_capability::domains::{EnvProperty, Sign};
use hg_rules::constraint::{CmpOp, Formula, Term};
use hg_rules::rule::{Action, ActionSubject, Rule, Trigger};
use hg_rules::varid::{DeviceRef, VarId};
use hg_solver::Outcome;
use hg_telemetry::{TelemetryBus, TelemetryEvent};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Cache-hit probes are 1-in-N sampled (each carries weight N): timing a
/// ~1µs cached pair check with two `Instant` reads on every hit would
/// cost more than the check itself. Misses are all timed — the fresh
/// solve they measure dwarfs the clock reads.
const HIT_PROBE_SAMPLE: u64 = 64;

/// The CAI threat detector.
#[derive(Debug, Clone)]
pub struct Detector {
    /// Device slot unification strategy.
    pub unification: Unification,
    /// Overlap solver (modes + collected configuration values).
    pub solver: OverlapSolver,
    /// Whether the lowered pair-check tier is consulted between the
    /// verdict-cache probe and the full solver (see [`crate::lowering`]).
    /// Defaults to on unless the `HG_LOWERED_PAIRS` environment variable
    /// disables it process-wide (`off`/`0`/`false`); differential tests
    /// clear it per-detector to run solver-forced twins.
    pub lowered_pairs: bool,
    /// The fleet-shared pair-verdict cache, when one is attached (the
    /// [`RuleStore`]-owned `Arc` threaded through every home's detector).
    /// `None` runs every pair fresh — the ground truth the cached path is
    /// differentially tested against.
    ///
    /// [`RuleStore`]: https://docs.rs/homeguard-core
    pub cache: Option<Arc<VerdictCache>>,
    /// Fleet event bus for sampled [`TelemetryEvent::CacheProbe`] timing
    /// probes. `None` (the default) publishes nothing and pays nothing —
    /// not even a clock read.
    pub bus: Option<Arc<TelemetryBus>>,
    /// Probe sampling tick, shared across clones of this detector so the
    /// 1-in-N hit sampling stays 1-in-N fleet-wide.
    pub probe_tick: Arc<AtomicU64>,
}

impl Default for Detector {
    fn default() -> Detector {
        Detector {
            unification: Unification::default(),
            solver: OverlapSolver::default(),
            lowered_pairs: lowered_pairs_env(),
            cache: None,
            bus: None,
            probe_tick: Arc::default(),
        }
    }
}

/// The process-wide `HG_LOWERED_PAIRS` operator override, read once:
/// `off`, `0` or `false` forces every pair check onto the full solver.
fn lowered_pairs_env() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var("HG_LOWERED_PAIRS").as_deref(),
            Ok("off") | Ok("0") | Ok("false")
        )
    })
}

impl Detector {
    /// A detector for store-wide analysis (type-based unification).
    pub fn store_wide() -> Detector {
        Detector::default()
    }

    /// This detector with the fleet-shared verdict cache attached.
    pub fn with_cache(mut self, cache: Arc<VerdictCache>) -> Detector {
        self.cache = Some(cache);
        self
    }

    /// This detector publishing sampled pair-check timing probes into the
    /// fleet event bus.
    pub fn with_bus(mut self, bus: Arc<TelemetryBus>) -> Detector {
        self.bus = Some(bus);
        self
    }

    /// Detects all CAI threats between two rules (both directions for the
    /// directed categories).
    pub fn detect_pair(&self, r1: &Rule, r2: &Rule) -> (Vec<Threat>, DetectStats) {
        let p1 = prepare_with(self, r1);
        let p2 = prepare_with(self, r2);
        self.detect_pair_prepared(&p1, &p2)
    }

    /// Detects all CAI threats between two [`PreparedRule`]s, skipping the
    /// per-pair unification work. This is the inner loop of the incremental
    /// [`DetectionEngine`](crate::DetectionEngine): rules are prepared once
    /// per session and reused across every candidate pair.
    pub fn detect_pair_prepared(
        &self,
        p1: &PreparedRule,
        p2: &PreparedRule,
    ) -> (Vec<Threat>, DetectStats) {
        let mut threats = Vec::new();
        let stats = self.detect_pair_prepared_into(p1, p2, &mut threats);
        (threats, stats)
    }

    /// [`detect_pair_prepared`](Self::detect_pair_prepared) appending into
    /// a caller-owned buffer, so a sweep over many candidate pairs reuses
    /// one threat vector instead of allocating per pair. Consults the
    /// attached [`VerdictCache`] first: a hit replays the memoized threats
    /// and logical effort counters (marked `cache_hits = 1`) without
    /// filtering or solving; a miss computes fresh and publishes the
    /// verdict for every other home sharing the cache.
    pub fn detect_pair_prepared_into(
        &self,
        p1: &PreparedRule,
        p2: &PreparedRule,
        out: &mut Vec<Threat>,
    ) -> DetectStats {
        let Some(cache) = &self.cache else {
            return self.detect_pair_fresh(p1, p2, out);
        };
        // Decide the sampled hit probe *before* the lookup so the clock
        // covers it; `probe_at` stays `None` whenever no bus is attached,
        // keeping the telemetry-off path free of atomics and clock reads.
        let probe_at = self.bus.as_ref().and_then(|_| {
            self.probe_tick
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(HIT_PROBE_SAMPLE)
                .then(Instant::now)
        });
        let key = self.pair_key(p1, p2);
        if let Some((threats, stats, tier)) = cache.lookup_full(&key) {
            if let (Some(bus), Some(started)) = (&self.bus, probe_at) {
                bus.publish(TelemetryEvent::CacheProbe {
                    hit: true,
                    tier: tier.name(),
                    micros: started.elapsed().as_micros() as u64,
                    weight: HIT_PROBE_SAMPLE,
                });
            }
            out.extend(threats);
            return DetectStats {
                cache_hits: 1,
                ..stats
            };
        }
        let fresh_at = self.bus.as_ref().map(|_| Instant::now());
        let start = out.len();
        let stats = self.detect_pair_fresh(p1, p2, out);
        if let (Some(bus), Some(started)) = (&self.bus, fresh_at) {
            bus.publish(TelemetryEvent::CacheProbe {
                hit: false,
                tier: stats.deciding_tier().name(),
                micros: started.elapsed().as_micros() as u64,
                weight: 1,
            });
        }
        cache.insert(
            key,
            [&p1.orig.id.app, &p2.orig.id.app],
            out[start..].to_vec(),
            stats,
        );
        DetectStats {
            cache_misses: 1,
            ..stats
        }
    }

    /// The cache key of an ordered prepared pair: both rules' content
    /// fingerprints plus the solver context — location modes and the
    /// collected configuration values for exactly the user inputs the two
    /// rules reference. Homes differing only in configuration the pair
    /// never reads produce the same key and share the entry; any
    /// difference a verdict could observe changes it. The mode list is
    /// folded in through the solver's **pre-hashed** fingerprint
    /// ([`OverlapSolver::modes_fingerprint`]): the fields are sealed behind
    /// setters that maintain the fingerprint, so the per-pair cost is one
    /// `u128` hash instead of re-walking every mode string.
    fn pair_key(&self, p1: &PreparedRule, p2: &PreparedRule) -> PairKey {
        let ctx = fingerprint128(|h| {
            self.solver.modes_fingerprint().hash(h);
            for var in p1.user_inputs().chain(p2.user_inputs()) {
                if let VarId::UserInput { app, name } = var {
                    var.hash(h);
                    self.solver.user_value(app, name).hash(h);
                }
            }
        });
        PairKey {
            fp1: p1.fingerprint(),
            fp2: p2.fingerprint(),
            ctx,
        }
    }

    /// The uncached pair detection pipeline (candidate filtering, then
    /// overlap solving with Fig. 9's reuse edges).
    fn detect_pair_fresh(
        &self,
        p1: &PreparedRule,
        p2: &PreparedRule,
        out: &mut Vec<Threat>,
    ) -> DetectStats {
        let mut cx = PairCx {
            detector: self,
            pair: [p1, p2],
            stats: DetectStats {
                pairs: 1,
                ..Default::default()
            },
            situation_overlap: None,
            condition_overlap: None,
        };
        cx.detect_actuator_race(out);
        cx.detect_goal_conflict(out);
        let ct_12 = cx.detect_trigger_interference(0, 1, out);
        let ct_21 = cx.detect_trigger_interference(1, 0, out);
        cx.detect_self_disabling(ct_12, ct_21, out);
        cx.detect_loop_triggering(ct_12, ct_21, out);
        cx.detect_condition_interference(0, 1, out);
        cx.detect_condition_interference(1, 0, out);
        cx.stats
    }

    /// Pairwise detection over a whole rule population.
    pub fn detect_all(&self, rules: &[Rule]) -> (Vec<Threat>, DetectStats) {
        let mut threats = Vec::new();
        let mut stats = DetectStats::default();
        for i in 0..rules.len() {
            for j in (i + 1)..rules.len() {
                let (t, s) = self.detect_pair(&rules[i], &rules[j]);
                threats.extend(t);
                stats.absorb(s);
            }
        }
        (threats, stats)
    }
}

struct PairCx<'a> {
    detector: &'a Detector,
    pair: [&'a PreparedRule; 2],
    stats: DetectStats,
    /// Cached result of the merged situation solve (AR's overlap check),
    /// reused by CT/SD/LT.
    situation_overlap: Option<Outcome>,
    /// Cached conditions-only overlap (GC and the CT environment channel).
    condition_overlap: Option<Outcome>,
}

impl<'a> PairCx<'a> {
    /// The i-th rule as extracted. Returned at the pair's lifetime (not
    /// the borrow's), so detection loops can iterate rule internals while
    /// calling `&mut self` solver helpers.
    fn orig(&self, i: usize) -> &'a Rule {
        let p: &'a PreparedRule = self.pair[i];
        &p.orig
    }

    /// The i-th rule with device slots resolved.
    fn unified(&self, i: usize) -> &'a Rule {
        let p: &'a PreparedRule = self.pair[i];
        &p.unified
    }

    /// A full-solver overlap solve. When the lowered tier is enabled this
    /// is by definition a fallback — either the question's shape never
    /// lowered, the pairwise check refused, or the question (effect and
    /// trigger-channel solves) is outside the lowered fragment entirely —
    /// so `solver_fallbacks` counts every solver-answered question and
    /// `lowered_hits / (lowered_hits + solver_fallbacks)` is an honest
    /// coverage ratio.
    fn solve(&mut self, formulas: &[&Formula]) -> Outcome {
        self.stats.solves += 1;
        if self.detector.lowered_pairs {
            self.stats.solver_fallbacks += 1;
        }
        self.detector.solver.solve(formulas)
    }

    /// Answers one overlap question through the tiered pipeline: the
    /// lowered evaluator when both sides compiled and the pairwise check
    /// decides (bit-identical to the solver by construction), the full
    /// solver otherwise. A lowered answer still counts as a `solve` so
    /// the logical effort counters match a solver-forced twin exactly.
    fn tiered_solve(
        &mut self,
        lowered: (Option<&LoweredProgram>, Option<&LoweredProgram>),
        formulas: &[&Formula],
    ) -> Outcome {
        if self.detector.lowered_pairs {
            if let (Some(a), Some(b)) = lowered {
                if let Some(outcome) = lowering::check_pair(a, b, &self.detector.solver) {
                    self.stats.solves += 1;
                    self.stats.lowered_hits += 1;
                    return outcome;
                }
            }
        }
        self.solve(formulas)
    }

    /// The overlap of both rules' full situations (trigger constraints plus
    /// conditions), computed once and reused. The situation conjunctions
    /// themselves were precomputed at preparation — no per-pair formula
    /// cloning — and so were their lowered programs.
    fn situation_overlap(&mut self) -> Outcome {
        if let Some(o) = self.situation_overlap.clone() {
            self.stats.reused += 1;
            return o;
        }
        let p1: &'a PreparedRule = self.pair[0];
        let p2: &'a PreparedRule = self.pair[1];
        let outcome = self.tiered_solve(
            (p1.lowered_situation(), p2.lowered_situation()),
            &[p1.situation(), p2.situation()],
        );
        self.situation_overlap = Some(outcome.clone());
        outcome
    }

    /// Conditions-only overlap (no trigger constraints): Table I requires
    /// `C1 ∩ C2 ≠ ∅` for GC and the trigger-interference kinds. Cached.
    fn condition_overlap(&mut self) -> Outcome {
        if let Some(o) = self.condition_overlap.clone() {
            self.stats.reused += 1;
            return o;
        }
        let p1: &'a PreparedRule = self.pair[0];
        let p2: &'a PreparedRule = self.pair[1];
        let c1 = &self.unified(0).condition.predicate;
        let c2 = &self.unified(1).condition.predicate;
        let outcome =
            self.tiered_solve((p1.lowered_condition(), p2.lowered_condition()), &[c1, c2]);
        self.condition_overlap = Some(outcome.clone());
        outcome
    }

    // ----- Action-Interference threats (§VI-A) -------------------------------

    fn detect_actuator_race(&mut self, out: &mut Vec<Threat>) {
        let r1 = self.unified(0);
        let r2 = self.unified(1);
        let mut found = false;
        for (i1, a1) in r1.actuations().enumerate() {
            for a2 in r2.actuations() {
                if found {
                    break;
                }
                let Some(conflict) = actions_contradict(a1, a2) else {
                    continue;
                };
                // AR requires the rules to take effect together: identical
                // trigger events, or a delayed command that can land while
                // the other rule fires.
                let coincide = triggers_coincide(&r1.trigger, &r2.trigger)
                    || a1.when_secs > 0
                    || a2.when_secs > 0;
                if !coincide {
                    continue;
                }
                self.stats.candidates += 1;
                let outcome = self.situation_overlap();
                if let Outcome::Sat(witness) = outcome {
                    found = true;
                    out.push(Threat {
                        kind: ThreatKind::ActuatorRace,
                        source: r1.id.clone(),
                        target: r2.id.clone(),
                        witness: Some(witness),
                        actuator: Some(action_subject_name(self.orig(0), i1)),
                        property: None,
                        note: format!(
                            "`{}` and `{}` race on the same actuator ({})",
                            a1.command,
                            a2.command,
                            describe_conflict(conflict)
                        ),
                    });
                }
            }
        }
    }

    fn detect_goal_conflict(&mut self, out: &mut Vec<Threat>) {
        let mut reported: Vec<EnvProperty> = Vec::new();
        // Unified subjects ride along with the original actions: the
        // unified rule's action list is the original's mapped through
        // `Unification::resolve`, so no per-pair re-resolution (and no
        // synthetic-id allocation) is needed.
        for (a1, u1) in self.orig(0).actuations().zip(self.unified(0).actuations()) {
            for (a2, u2) in self.orig(1).actuations().zip(self.unified(1).actuations()) {
                // Same-actuator conflicts are Actuator Races, not GCs.
                if let (Some(d1), Some(d2)) = (u1.subject.device(), u2.subject.device()) {
                    if d1.same_device(d2) {
                        continue;
                    }
                }
                let (Some(k1), Some(k2)) = (action_kind(a1), action_kind(a2)) else {
                    continue;
                };
                for prop in EnvProperty::ALL {
                    if reported.contains(&prop) {
                        continue;
                    }
                    let (Some(s1), Some(s2)) = (
                        k1.effect_on(&a1.command, prop),
                        k2.effect_on(&a2.command, prop),
                    ) else {
                        continue;
                    };
                    if s1 != s2.opposite() {
                        continue;
                    }
                    self.stats.candidates += 1;
                    if let Outcome::Sat(witness) = self.condition_overlap() {
                        reported.push(prop);
                        out.push(Threat {
                            kind: ThreatKind::GoalConflict,
                            source: self.unified(0).id.clone(),
                            target: self.unified(1).id.clone(),
                            witness: Some(witness),
                            actuator: None,
                            property: Some(prop),
                            note: format!(
                                "`{}` on {} ({s1}{prop}) conflicts with `{}` on {} ({s2}{prop})",
                                a1.command,
                                k1.name(),
                                a2.command,
                                k2.name(),
                            ),
                        });
                    }
                }
            }
        }
    }

    // ----- Trigger-Interference threats (§VI-B) -------------------------------

    /// Detects CT from rule `src` to rule `dst`; returns whether a CT pair
    /// was established (used by SD/LT).
    fn detect_trigger_interference(
        &mut self,
        src: usize,
        dst: usize,
        out: &mut Vec<Threat>,
    ) -> bool {
        let src_unified = self.unified(src);
        let src_orig = self.orig(src);
        let dst_unified = self.unified(dst);
        let Some(t2_var) = dst_unified.trigger.observed_var() else {
            return false;
        };
        let t2_constraint = dst_unified.trigger.constraint();
        let mut found = false;
        for (a_unified, a_orig) in src_unified.actuations().zip(src_orig.actuations()) {
            if found {
                break;
            }
            // Channel 1: the command directly writes the observed variable.
            for (var, effect) in direct_effects(a_unified) {
                if var != t2_var {
                    continue;
                }
                self.stats.candidates += 1;
                // Effect value must satisfy T2's constraint together with
                // both conditions. Reuses the AR situation solve when no
                // effect refinement is needed.
                let c1 = &src_unified.condition.predicate;
                let c2 = &dst_unified.condition.predicate;
                let mut parts = vec![&effect, c1, c2];
                if let Some(t2c) = t2_constraint {
                    parts.push(t2c);
                }
                let outcome = self.solve(&parts);
                if let Outcome::Sat(witness) = outcome {
                    found = true;
                    out.push(Threat {
                        kind: ThreatKind::CovertTriggering,
                        source: src_unified.id.clone(),
                        target: dst_unified.id.clone(),
                        witness: Some(witness),
                        actuator: None,
                        property: None,
                        note: format!(
                            "`{}` changes `{var}`, which triggers {}",
                            a_unified.command, dst_unified.id
                        ),
                    });
                    break;
                }
            }
            if found {
                break;
            }
            // Channel 2: the command moves an environment feature a sensor
            // reports, and the movement direction can fire T2.
            let Some(kind) = action_kind(a_orig) else {
                continue;
            };
            for fx in kind.goal_effects() {
                if fx.command != a_orig.command {
                    continue;
                }
                let env_var = VarId::env(fx.property.name());
                if env_var != t2_var {
                    continue;
                }
                if !direction_compatible(t2_constraint, &t2_var, fx.sign) {
                    continue;
                }
                self.stats.candidates += 1;
                let outcome = self.condition_overlap();
                if let Outcome::Sat(witness) = outcome {
                    found = true;
                    out.push(Threat {
                        kind: ThreatKind::CovertTriggering,
                        source: src_unified.id.clone(),
                        target: dst_unified.id.clone(),
                        witness: Some(witness),
                        actuator: None,
                        property: Some(fx.property),
                        note: format!(
                            "`{}` on {} moves {} ({}), which can trigger {}",
                            a_orig.command,
                            kind.name(),
                            fx.property,
                            fx.sign,
                            dst_unified.id
                        ),
                    });
                    break;
                }
            }
        }
        found
    }

    fn detect_self_disabling(&mut self, ct_12: bool, ct_21: bool, out: &mut Vec<Threat>) {
        for (src, dst, ct) in [(0usize, 1usize, ct_12), (1, 0, ct_21)] {
            if !ct {
                continue;
            }
            // R_dst's action must undo R_src's action on the same actuator.
            if let Some((actuator, note)) =
                first_contradictory_pair(self.unified(src), self.unified(dst))
            {
                // Reuse the action-analysis + CT overlap results: no fresh
                // solving needed (Fig. 9).
                self.stats.reused += 1;
                out.push(Threat {
                    kind: ThreatKind::SelfDisabling,
                    source: self.unified(src).id.clone(),
                    target: self.unified(dst).id.clone(),
                    witness: None,
                    actuator: Some(actuator),
                    property: None,
                    note: format!(
                        "{} covertly triggers {}, whose action undoes it ({note})",
                        self.unified(src).id,
                        self.unified(dst).id
                    ),
                });
            }
        }
    }

    fn detect_loop_triggering(&mut self, ct_12: bool, ct_21: bool, out: &mut Vec<Threat>) {
        if !(ct_12 && ct_21) {
            return;
        }
        if let Some((actuator, note)) = first_contradictory_pair(self.unified(0), self.unified(1)) {
            self.stats.reused += 1;
            out.push(Threat {
                kind: ThreatKind::LoopTriggering,
                source: self.unified(0).id.clone(),
                target: self.unified(1).id.clone(),
                witness: None,
                actuator: Some(actuator),
                property: None,
                note: format!("mutual triggering with contradictory actions ({note})"),
            });
        }
    }

    // ----- Condition-Interference threats (§VI-C) -------------------------------

    fn detect_condition_interference(&mut self, src: usize, dst: usize, out: &mut Vec<Threat>) {
        let src_unified = self.unified(src);
        let src_orig = self.orig(src);
        let dst_unified = self.unified(dst);
        let c2 = &dst_unified.condition.predicate;
        if *c2 == Formula::True {
            return;
        }
        let c2_vars = c2.variables();
        let mut reported_ec = false;
        let mut reported_dc = false;
        for (a_unified, a_orig) in src_unified.actuations().zip(src_orig.actuations()) {
            if reported_ec && reported_dc {
                break;
            }
            // Channel 1: direct attribute writes mentioned by C2.
            for (var, effect) in direct_effects(a_unified) {
                if !c2_vars.contains(&var) {
                    continue;
                }
                self.stats.candidates += 1;
                // EC solve; DC reuses its result (Fig. 9).
                let outcome = self.solve(&[&effect, c2]);
                self.stats.reused += 1; // the DC decision reuses this solve
                let (kind, already) = match outcome {
                    Outcome::Sat(_) => (ThreatKind::EnablingCondition, &mut reported_ec),
                    _ => (ThreatKind::DisablingCondition, &mut reported_dc),
                };
                if *already {
                    continue;
                }
                *already = true;
                out.push(Threat {
                    kind,
                    source: src_unified.id.clone(),
                    target: dst_unified.id.clone(),
                    witness: outcome.witness().cloned(),
                    actuator: None,
                    property: None,
                    note: format!(
                        "`{}` sets `{var}`, which {} the condition of {}",
                        a_unified.command,
                        if kind == ThreatKind::EnablingCondition {
                            "can satisfy"
                        } else {
                            "falsifies"
                        },
                        dst_unified.id
                    ),
                });
            }
            // Channel 2: environment movement vs. C2's numeric thresholds.
            let Some(kind_dev) = action_kind(a_orig) else {
                continue;
            };
            for fx in kind_dev.goal_effects() {
                if fx.command != a_orig.command {
                    continue;
                }
                let env_var = VarId::env(fx.property.name());
                if !c2_vars.contains(&env_var) {
                    continue;
                }
                self.stats.candidates += 1;
                for (threat_kind, flag) in classify_env_condition_effect(c2, &env_var, fx.sign) {
                    let already = match threat_kind {
                        ThreatKind::EnablingCondition => &mut reported_ec,
                        _ => &mut reported_dc,
                    };
                    if *already || !flag {
                        continue;
                    }
                    *already = true;
                    out.push(Threat {
                        kind: threat_kind,
                        source: src_unified.id.clone(),
                        target: dst_unified.id.clone(),
                        witness: None,
                        actuator: None,
                        property: Some(fx.property),
                        note: format!(
                            "`{}` on {} moves {} ({}), which {} the condition of {}",
                            a_orig.command,
                            kind_dev.name(),
                            fx.property,
                            fx.sign,
                            if threat_kind == ThreatKind::EnablingCondition {
                                "can enable"
                            } else {
                                "can disable"
                            },
                            dst_unified.id
                        ),
                    });
                }
            }
        }
    }
}

// ----- helpers ------------------------------------------------------------------

/// The classified device kind of an action's original (pre-unification)
/// subject.
pub(crate) fn action_kind(a: &Action) -> Option<DeviceKind> {
    match &a.subject {
        ActionSubject::Device(DeviceRef::Unbound { kind, .. }) => Some(*kind),
        ActionSubject::Device(DeviceRef::Bound { device_id }) => {
            // Synthetic type ids carry the kind.
            let rest = device_id.strip_prefix("type:")?;
            let (_, kind_name) = rest.split_once('/')?;
            DeviceKind::ALL.into_iter().find(|k| k.name() == kind_name)
        }
        _ => None,
    }
}

/// Whether two actions contradict on the same actuator.
fn actions_contradict(a1: &Action, a2: &Action) -> Option<Contradiction> {
    match (&a1.subject, &a2.subject) {
        (ActionSubject::Device(d1), ActionSubject::Device(d2)) => {
            if !d1.same_device(d2) {
                return None;
            }
            // Prefer the device's own capability for contradiction lookup.
            if let Some(cap) = device_capability(d1) {
                if cap.command(&a1.command).is_some() && cap.command(&a2.command).is_some() {
                    match contradiction(cap, &a1.command, &a2.command) {
                        Contradiction::Direct => return Some(Contradiction::Direct),
                        Contradiction::ParamDependent => {
                            if a1.params == a2.params && a1.params.iter().all(is_const_term) {
                                return None;
                            }
                            return Some(Contradiction::ParamDependent);
                        }
                        Contradiction::None => return None,
                    }
                }
            }
            // Fall back to any capability defining both commands.
            for cap in capability::CAPABILITIES {
                if cap.command(&a1.command).is_some() && cap.command(&a2.command).is_some() {
                    match contradiction(cap, &a1.command, &a2.command) {
                        Contradiction::None => continue,
                        Contradiction::Direct => return Some(Contradiction::Direct),
                        Contradiction::ParamDependent => {
                            // Same parameterized command: races only when the
                            // parameters can differ.
                            if a1.params == a2.params && a1.params.iter().all(is_const_term) {
                                return None;
                            }
                            return Some(Contradiction::ParamDependent);
                        }
                    }
                }
            }
            None
        }
        (ActionSubject::LocationMode, ActionSubject::LocationMode) => {
            if a1.params == a2.params && a1.params.iter().all(is_const_term) {
                None
            } else {
                Some(Contradiction::ParamDependent)
            }
        }
        _ => None,
    }
}

fn is_const_term(t: &Term) -> bool {
    t.as_const().is_some()
}

fn describe_conflict(c: Contradiction) -> &'static str {
    match c {
        Contradiction::Direct => "opposite commands",
        Contradiction::ParamDependent => "conflicting parameters",
        Contradiction::None => "no conflict",
    }
}

/// Whether two triggers can fire from the same event.
fn triggers_coincide(t1: &Trigger, t2: &Trigger) -> bool {
    match (t1, t2) {
        (Trigger::DeviceEvent { .. }, Trigger::DeviceEvent { .. }) => {
            t1.observed_var() == t2.observed_var()
        }
        (Trigger::ModeChange { .. }, Trigger::ModeChange { .. }) => true,
        (Trigger::Periodic { period_secs: p1 }, Trigger::Periodic { period_secs: p2 }) => p1 == p2,
        (
            Trigger::TimeOfDay {
                at_minutes: Some(m1),
                ..
            },
            Trigger::TimeOfDay {
                at_minutes: Some(m2),
                ..
            },
        ) => m1 == m2,
        (Trigger::AppTouch, Trigger::AppTouch) => true,
        _ => false,
    }
}

/// The direct world-state writes of an action: `(variable, effect formula)`.
pub(crate) fn direct_effects(a: &Action) -> Vec<(VarId, Formula)> {
    let mut out = Vec::new();
    match &a.subject {
        ActionSubject::Device(dev) => {
            // Prefer the device's own capability; fall back to the first
            // capability defining the command with effects.
            let own = device_capability(dev).filter(|cap| cap.command(&a.command).is_some());
            let cap = own.or_else(|| {
                capability::CAPABILITIES.iter().find(|c| {
                    c.command(&a.command)
                        .map(|cmd| !cmd.effects.is_empty())
                        .unwrap_or(false)
                })
            });
            let Some(cap) = cap else { return out };
            let Some(cmd) = cap.command(&a.command) else {
                return out;
            };
            for eff in cmd.effects {
                match eff {
                    AttrEffect::SetConst { attribute, value } => {
                        let var = VarId::canonical_attr(dev, attribute);
                        out.push((
                            var.clone(),
                            Formula::cmp(Term::Var(var), CmpOp::Eq, Term::sym(value.to_string())),
                        ));
                    }
                    AttrEffect::SetParam {
                        attribute,
                        param_index,
                    } => {
                        if let Some(p) = a.params.get(*param_index) {
                            let var = VarId::canonical_attr(dev, attribute);
                            out.push((
                                var.clone(),
                                Formula::cmp(Term::Var(var), CmpOp::Eq, p.clone()),
                            ));
                        }
                    }
                }
            }
        }
        ActionSubject::LocationMode => {
            if let Some(p) = a.params.first() {
                out.push((
                    VarId::Mode,
                    Formula::cmp(Term::Var(VarId::Mode), CmpOp::Eq, p.clone()),
                ));
            }
        }
        _ => {}
    }
    out
}

/// The capability a device reference was granted with, resolving synthetic
/// `type:capability/kind` ids.
fn device_capability(dev: &DeviceRef) -> Option<&'static hg_capability::capability::Capability> {
    if let Some(name) = dev.capability() {
        return capability::lookup(name);
    }
    if let DeviceRef::Bound { device_id } = dev {
        if let Some(rest) = device_id.strip_prefix("type:") {
            if let Some((name, _)) = rest.split_once('/') {
                return capability::lookup(name);
            }
        }
    }
    None
}

/// Whether a trigger constraint is compatible with the environment moving in
/// `sign` direction: a `> c` trigger needs an increase, `< c` a decrease,
/// `==`/no-constraint accepts both.
fn direction_compatible(constraint: Option<&Formula>, var: &VarId, sign: Sign) -> bool {
    let Some(c) = constraint else { return true };
    let mut compatible = false;
    let mut any_atom = false;
    scan_atoms(c, &mut |lhs, op, rhs| {
        let (op, touches) = match (lhs, rhs) {
            (Term::Var(v), _) if v == var => (op, true),
            (_, Term::Var(v)) if v == var => (op.flip(), true),
            _ => (op, false),
        };
        if !touches {
            return;
        }
        any_atom = true;
        compatible |= matches!(
            (op, sign),
            (CmpOp::Gt | CmpOp::Ge, Sign::Inc)
                | (CmpOp::Lt | CmpOp::Le, Sign::Dec)
                | (CmpOp::Eq | CmpOp::Ne, _)
        );
    });
    !any_atom || compatible
}

/// Classifies how moving `var` in `sign` direction affects a condition:
/// returns flags for (EnablingCondition, DisablingCondition).
fn classify_env_condition_effect(c2: &Formula, var: &VarId, sign: Sign) -> [(ThreatKind, bool); 2] {
    let mut enables = false;
    let mut disables = false;
    scan_atoms(c2, &mut |lhs, op, rhs| {
        let (op, touches) = match (lhs, rhs) {
            (Term::Var(v), _) if v == var => (op, true),
            (_, Term::Var(v)) if v == var => (op.flip(), true),
            _ => (op, false),
        };
        if !touches {
            return;
        }
        match (op, sign) {
            (CmpOp::Gt | CmpOp::Ge, Sign::Inc) | (CmpOp::Lt | CmpOp::Le, Sign::Dec) => {
                enables = true;
            }
            (CmpOp::Gt | CmpOp::Ge, Sign::Dec) | (CmpOp::Lt | CmpOp::Le, Sign::Inc) => {
                disables = true;
            }
            (CmpOp::Eq | CmpOp::Ne, _) => {
                // Movement can cross an equality in either direction.
                enables = true;
                disables = true;
            }
        }
    });
    [
        (ThreatKind::EnablingCondition, enables),
        (ThreatKind::DisablingCondition, disables),
    ]
}

fn scan_atoms(f: &Formula, visit: &mut impl FnMut(&Term, CmpOp, &Term)) {
    match f {
        Formula::Cmp { lhs, op, rhs } => visit(lhs, *op, rhs),
        Formula::And(parts) | Formula::Or(parts) => {
            for p in parts {
                scan_atoms(p, visit);
            }
        }
        Formula::Not(inner) => scan_atoms(inner, visit),
        _ => {}
    }
}

/// First contradictory action pair between two rules (for SD/LT notes).
fn first_contradictory_pair(r1: &Rule, r2: &Rule) -> Option<(String, String)> {
    for a1 in r1.actuations() {
        for a2 in r2.actuations() {
            if actions_contradict(a1, a2).is_some() {
                let actuator = match a1.subject.device() {
                    Some(d) => d.to_string(),
                    None => "location mode".to_string(),
                };
                return Some((actuator, format!("`{}` vs `{}`", a1.command, a2.command)));
            }
        }
    }
    None
}

/// Display name for the i-th actuation subject of a rule (pre-unification,
/// so the user sees the input slot name).
fn action_subject_name(rule: &Rule, index: usize) -> String {
    rule.actuations()
        .nth(index)
        .map(|a| match &a.subject {
            ActionSubject::Device(d) => d.to_string(),
            ActionSubject::LocationMode => "location mode".to_string(),
            _ => "?".to_string(),
        })
        .unwrap_or_else(|| "?".to_string())
}
