//! Pairwise CAI threat detection (paper §VI).
//!
//! Detection is a two-stage pipeline per rule pair: cheap *candidate
//! filtering* from the action analysis maps (M_AR, M_GC), then
//! *overlapping-condition detection* with the constraint solver. Solver
//! results are reused across threat kinds exactly as Fig. 9's green dotted
//! edges describe: CT/SD/LT reuse the AR overlap result, DC reuses EC's.

use crate::index::{prepare_with, PreparedRule};
use crate::overlap::{OverlapSolver, Unification};
use crate::report::{DetectStats, Threat, ThreatKind};
use hg_capability::capability::{self, AttrEffect};
use hg_capability::contradiction::{contradiction, Contradiction};
use hg_capability::device_kind::DeviceKind;
use hg_capability::domains::{EnvProperty, Sign};
use hg_rules::constraint::{CmpOp, Formula, Term};
use hg_rules::rule::{Action, ActionSubject, Rule, Trigger};
use hg_rules::varid::{DeviceRef, VarId};
use hg_solver::Outcome;

/// The CAI threat detector.
#[derive(Debug, Clone, Default)]
pub struct Detector {
    /// Device slot unification strategy.
    pub unification: Unification,
    /// Overlap solver (modes + collected configuration values).
    pub solver: OverlapSolver,
}

impl Detector {
    /// A detector for store-wide analysis (type-based unification).
    pub fn store_wide() -> Detector {
        Detector::default()
    }

    /// Detects all CAI threats between two rules (both directions for the
    /// directed categories).
    pub fn detect_pair(&self, r1: &Rule, r2: &Rule) -> (Vec<Threat>, DetectStats) {
        let p1 = prepare_with(self, r1);
        let p2 = prepare_with(self, r2);
        self.detect_pair_prepared(&p1, &p2)
    }

    /// Detects all CAI threats between two [`PreparedRule`]s, skipping the
    /// per-pair unification work. This is the inner loop of the incremental
    /// [`DetectionEngine`](crate::DetectionEngine): rules are prepared once
    /// per session and reused across every candidate pair.
    pub fn detect_pair_prepared(
        &self,
        p1: &PreparedRule,
        p2: &PreparedRule,
    ) -> (Vec<Threat>, DetectStats) {
        let mut cx = PairCx {
            detector: self,
            orig: [&p1.orig, &p2.orig],
            unified: [&p1.unified, &p2.unified],
            stats: DetectStats {
                pairs: 1,
                ..Default::default()
            },
            situation_overlap: None,
            condition_overlap: None,
        };
        let mut threats = Vec::new();
        cx.detect_actuator_race(&mut threats);
        cx.detect_goal_conflict(&mut threats);
        let ct_12 = cx.detect_trigger_interference(0, 1, &mut threats);
        let ct_21 = cx.detect_trigger_interference(1, 0, &mut threats);
        cx.detect_self_disabling(ct_12, ct_21, &mut threats);
        cx.detect_loop_triggering(ct_12, ct_21, &mut threats);
        cx.detect_condition_interference(0, 1, &mut threats);
        cx.detect_condition_interference(1, 0, &mut threats);
        (threats, cx.stats)
    }

    /// Pairwise detection over a whole rule population.
    pub fn detect_all(&self, rules: &[Rule]) -> (Vec<Threat>, DetectStats) {
        let mut threats = Vec::new();
        let mut stats = DetectStats::default();
        for i in 0..rules.len() {
            for j in (i + 1)..rules.len() {
                let (t, s) = self.detect_pair(&rules[i], &rules[j]);
                threats.extend(t);
                stats.absorb(s);
            }
        }
        (threats, stats)
    }
}

struct PairCx<'a> {
    detector: &'a Detector,
    orig: [&'a Rule; 2],
    unified: [&'a Rule; 2],
    stats: DetectStats,
    /// Cached result of the merged situation solve (AR's overlap check),
    /// reused by CT/SD/LT.
    situation_overlap: Option<Outcome>,
    /// Cached conditions-only overlap (GC and the CT environment channel).
    condition_overlap: Option<Outcome>,
}

impl<'a> PairCx<'a> {
    fn solve(&mut self, formulas: &[&Formula]) -> Outcome {
        self.stats.solves += 1;
        self.detector.solver.solve(formulas)
    }

    /// The overlap of both rules' full situations (trigger constraints plus
    /// conditions), computed once and reused.
    fn situation_overlap(&mut self) -> Outcome {
        if let Some(o) = self.situation_overlap.clone() {
            self.stats.reused += 1;
            return o;
        }
        let s1 = self.unified[0].situation();
        let s2 = self.unified[1].situation();
        let outcome = self.solve(&[&s1, &s2]);
        self.situation_overlap = Some(outcome.clone());
        outcome
    }

    /// Conditions-only overlap (no trigger constraints): Table I requires
    /// `C1 ∩ C2 ≠ ∅` for GC and the trigger-interference kinds. Cached.
    fn condition_overlap(&mut self) -> Outcome {
        if let Some(o) = self.condition_overlap.clone() {
            self.stats.reused += 1;
            return o;
        }
        let c1 = self.unified[0].condition.predicate.clone();
        let c2 = self.unified[1].condition.predicate.clone();
        let outcome = self.solve(&[&c1, &c2]);
        self.condition_overlap = Some(outcome.clone());
        outcome
    }

    // ----- Action-Interference threats (§VI-A) -------------------------------

    fn detect_actuator_race(&mut self, out: &mut Vec<Threat>) {
        let mut found = false;
        let acts1: Vec<Action> = self.unified[0].actuations().cloned().collect();
        let acts2: Vec<Action> = self.unified[1].actuations().cloned().collect();
        for (i1, a1) in acts1.iter().enumerate() {
            for a2 in acts2.iter() {
                if found {
                    break;
                }
                let Some(conflict) = actions_contradict(a1, a2) else {
                    continue;
                };
                // AR requires the rules to take effect together: identical
                // trigger events, or a delayed command that can land while
                // the other rule fires.
                let coincide =
                    triggers_coincide(&self.unified[0].trigger, &self.unified[1].trigger)
                        || a1.when_secs > 0
                        || a2.when_secs > 0;
                if !coincide {
                    continue;
                }
                self.stats.candidates += 1;
                let outcome = self.situation_overlap();
                if let Outcome::Sat(witness) = outcome {
                    found = true;
                    out.push(Threat {
                        kind: ThreatKind::ActuatorRace,
                        source: self.unified[0].id.clone(),
                        target: self.unified[1].id.clone(),
                        witness: Some(witness),
                        actuator: Some(action_subject_name(self.orig[0], i1)),
                        property: None,
                        note: format!(
                            "`{}` and `{}` race on the same actuator ({})",
                            a1.command,
                            a2.command,
                            describe_conflict(conflict)
                        ),
                    });
                }
            }
        }
    }

    fn detect_goal_conflict(&mut self, out: &mut Vec<Threat>) {
        let mut reported: Vec<EnvProperty> = Vec::new();
        for a1 in self.orig[0].actuations() {
            for a2 in self.orig[1].actuations() {
                // Same-actuator conflicts are Actuator Races, not GCs.
                let u1 = action_device(a1).map(|d| self.detector.unification.resolve(d));
                let u2 = action_device(a2).map(|d| self.detector.unification.resolve(d));
                if let (Some(d1), Some(d2)) = (&u1, &u2) {
                    if d1.same_device(d2) {
                        continue;
                    }
                }
                let (Some(k1), Some(k2)) = (action_kind(a1), action_kind(a2)) else {
                    continue;
                };
                for prop in EnvProperty::ALL {
                    if reported.contains(&prop) {
                        continue;
                    }
                    let (Some(s1), Some(s2)) = (
                        k1.effect_on(&a1.command, prop),
                        k2.effect_on(&a2.command, prop),
                    ) else {
                        continue;
                    };
                    if s1 != s2.opposite() {
                        continue;
                    }
                    self.stats.candidates += 1;
                    if let Outcome::Sat(witness) = self.condition_overlap() {
                        reported.push(prop);
                        out.push(Threat {
                            kind: ThreatKind::GoalConflict,
                            source: self.unified[0].id.clone(),
                            target: self.unified[1].id.clone(),
                            witness: Some(witness),
                            actuator: None,
                            property: Some(prop),
                            note: format!(
                                "`{}` on {} ({s1}{prop}) conflicts with `{}` on {} ({s2}{prop})",
                                a1.command,
                                k1.name(),
                                a2.command,
                                k2.name(),
                            ),
                        });
                    }
                }
            }
        }
    }

    // ----- Trigger-Interference threats (§VI-B) -------------------------------

    /// Detects CT from rule `src` to rule `dst`; returns whether a CT pair
    /// was established (used by SD/LT).
    fn detect_trigger_interference(
        &mut self,
        src: usize,
        dst: usize,
        out: &mut Vec<Threat>,
    ) -> bool {
        let Some(t2_var) = self.unified[dst].trigger.observed_var() else {
            return false;
        };
        let t2_constraint = self.unified[dst].trigger.constraint().cloned();
        let mut found = false;
        let actions: Vec<Action> = self.unified[src].actuations().cloned().collect();
        let orig_actions: Vec<Action> = self.orig[src].actuations().cloned().collect();
        for (a_unified, a_orig) in actions.iter().zip(orig_actions.iter()) {
            if found {
                break;
            }
            // Channel 1: the command directly writes the observed variable.
            for (var, effect) in direct_effects(a_unified) {
                if var != t2_var {
                    continue;
                }
                self.stats.candidates += 1;
                // Effect value must satisfy T2's constraint together with
                // both conditions. Reuses the AR situation solve when no
                // effect refinement is needed.
                let c1 = self.unified[src].condition.predicate.clone();
                let c2 = self.unified[dst].condition.predicate.clone();
                let mut parts = vec![&effect, &c1, &c2];
                let t2c = t2_constraint.clone().unwrap_or(Formula::True);
                parts.push(&t2c);
                let outcome = self.solve(&parts);
                if let Outcome::Sat(witness) = outcome {
                    found = true;
                    out.push(Threat {
                        kind: ThreatKind::CovertTriggering,
                        source: self.unified[src].id.clone(),
                        target: self.unified[dst].id.clone(),
                        witness: Some(witness),
                        actuator: None,
                        property: None,
                        note: format!(
                            "`{}` changes `{var}`, which triggers {}",
                            a_unified.command, self.unified[dst].id
                        ),
                    });
                    break;
                }
            }
            if found {
                break;
            }
            // Channel 2: the command moves an environment feature a sensor
            // reports, and the movement direction can fire T2.
            let Some(kind) = action_kind(a_orig) else {
                continue;
            };
            for fx in kind.goal_effects() {
                if fx.command != a_orig.command {
                    continue;
                }
                let env_var = VarId::env(fx.property.name());
                if env_var != t2_var {
                    continue;
                }
                if !direction_compatible(t2_constraint.as_ref(), &t2_var, fx.sign) {
                    continue;
                }
                self.stats.candidates += 1;
                let outcome = self.condition_overlap();
                if let Outcome::Sat(witness) = outcome {
                    found = true;
                    out.push(Threat {
                        kind: ThreatKind::CovertTriggering,
                        source: self.unified[src].id.clone(),
                        target: self.unified[dst].id.clone(),
                        witness: Some(witness),
                        actuator: None,
                        property: Some(fx.property),
                        note: format!(
                            "`{}` on {} moves {} ({}), which can trigger {}",
                            a_orig.command,
                            kind.name(),
                            fx.property,
                            fx.sign,
                            self.unified[dst].id
                        ),
                    });
                    break;
                }
            }
        }
        found
    }

    fn detect_self_disabling(&mut self, ct_12: bool, ct_21: bool, out: &mut Vec<Threat>) {
        for (src, dst, ct) in [(0usize, 1usize, ct_12), (1, 0, ct_21)] {
            if !ct {
                continue;
            }
            // R_dst's action must undo R_src's action on the same actuator.
            if let Some((actuator, note)) =
                first_contradictory_pair(self.unified[src], self.unified[dst])
            {
                // Reuse the action-analysis + CT overlap results: no fresh
                // solving needed (Fig. 9).
                self.stats.reused += 1;
                out.push(Threat {
                    kind: ThreatKind::SelfDisabling,
                    source: self.unified[src].id.clone(),
                    target: self.unified[dst].id.clone(),
                    witness: None,
                    actuator: Some(actuator),
                    property: None,
                    note: format!(
                        "{} covertly triggers {}, whose action undoes it ({note})",
                        self.unified[src].id, self.unified[dst].id
                    ),
                });
            }
        }
    }

    fn detect_loop_triggering(&mut self, ct_12: bool, ct_21: bool, out: &mut Vec<Threat>) {
        if !(ct_12 && ct_21) {
            return;
        }
        if let Some((actuator, note)) = first_contradictory_pair(self.unified[0], self.unified[1]) {
            self.stats.reused += 1;
            out.push(Threat {
                kind: ThreatKind::LoopTriggering,
                source: self.unified[0].id.clone(),
                target: self.unified[1].id.clone(),
                witness: None,
                actuator: Some(actuator),
                property: None,
                note: format!("mutual triggering with contradictory actions ({note})"),
            });
        }
    }

    // ----- Condition-Interference threats (§VI-C) -------------------------------

    fn detect_condition_interference(&mut self, src: usize, dst: usize, out: &mut Vec<Threat>) {
        let c2 = self.unified[dst].condition.predicate.clone();
        if c2 == Formula::True {
            return;
        }
        let c2_vars = c2.variables();
        let actions: Vec<Action> = self.unified[src].actuations().cloned().collect();
        let orig_actions: Vec<Action> = self.orig[src].actuations().cloned().collect();
        let mut reported_ec = false;
        let mut reported_dc = false;
        for (a_unified, a_orig) in actions.iter().zip(orig_actions.iter()) {
            if reported_ec && reported_dc {
                break;
            }
            // Channel 1: direct attribute writes mentioned by C2.
            for (var, effect) in direct_effects(a_unified) {
                if !c2_vars.contains(&var) {
                    continue;
                }
                self.stats.candidates += 1;
                // EC solve; DC reuses its result (Fig. 9).
                let outcome = self.solve(&[&effect, &c2]);
                self.stats.reused += 1; // the DC decision reuses this solve
                let (kind, already) = match outcome {
                    Outcome::Sat(_) => (ThreatKind::EnablingCondition, &mut reported_ec),
                    _ => (ThreatKind::DisablingCondition, &mut reported_dc),
                };
                if *already {
                    continue;
                }
                *already = true;
                out.push(Threat {
                    kind,
                    source: self.unified[src].id.clone(),
                    target: self.unified[dst].id.clone(),
                    witness: outcome.witness().cloned(),
                    actuator: None,
                    property: None,
                    note: format!(
                        "`{}` sets `{var}`, which {} the condition of {}",
                        a_unified.command,
                        if kind == ThreatKind::EnablingCondition {
                            "can satisfy"
                        } else {
                            "falsifies"
                        },
                        self.unified[dst].id
                    ),
                });
            }
            // Channel 2: environment movement vs. C2's numeric thresholds.
            let Some(kind_dev) = action_kind(a_orig) else {
                continue;
            };
            for fx in kind_dev.goal_effects() {
                if fx.command != a_orig.command {
                    continue;
                }
                let env_var = VarId::env(fx.property.name());
                if !c2_vars.contains(&env_var) {
                    continue;
                }
                self.stats.candidates += 1;
                for (threat_kind, flag) in classify_env_condition_effect(&c2, &env_var, fx.sign) {
                    let already = match threat_kind {
                        ThreatKind::EnablingCondition => &mut reported_ec,
                        _ => &mut reported_dc,
                    };
                    if *already || !flag {
                        continue;
                    }
                    *already = true;
                    out.push(Threat {
                        kind: threat_kind,
                        source: self.unified[src].id.clone(),
                        target: self.unified[dst].id.clone(),
                        witness: None,
                        actuator: None,
                        property: Some(fx.property),
                        note: format!(
                            "`{}` on {} moves {} ({}), which {} the condition of {}",
                            a_orig.command,
                            kind_dev.name(),
                            fx.property,
                            fx.sign,
                            if threat_kind == ThreatKind::EnablingCondition {
                                "can enable"
                            } else {
                                "can disable"
                            },
                            self.unified[dst].id
                        ),
                    });
                }
            }
        }
    }
}

// ----- helpers ------------------------------------------------------------------

/// The device a (device-)action targets.
fn action_device(a: &Action) -> Option<&DeviceRef> {
    a.subject.device()
}

/// The classified device kind of an action's original (pre-unification)
/// subject.
pub(crate) fn action_kind(a: &Action) -> Option<DeviceKind> {
    match &a.subject {
        ActionSubject::Device(DeviceRef::Unbound { kind, .. }) => Some(*kind),
        ActionSubject::Device(DeviceRef::Bound { device_id }) => {
            // Synthetic type ids carry the kind.
            let rest = device_id.strip_prefix("type:")?;
            let (_, kind_name) = rest.split_once('/')?;
            DeviceKind::ALL.into_iter().find(|k| k.name() == kind_name)
        }
        _ => None,
    }
}

/// Whether two actions contradict on the same actuator.
fn actions_contradict(a1: &Action, a2: &Action) -> Option<Contradiction> {
    match (&a1.subject, &a2.subject) {
        (ActionSubject::Device(d1), ActionSubject::Device(d2)) => {
            if !d1.same_device(d2) {
                return None;
            }
            // Prefer the device's own capability for contradiction lookup.
            if let Some(cap) = device_capability(d1) {
                if cap.command(&a1.command).is_some() && cap.command(&a2.command).is_some() {
                    match contradiction(cap, &a1.command, &a2.command) {
                        Contradiction::Direct => return Some(Contradiction::Direct),
                        Contradiction::ParamDependent => {
                            if a1.params == a2.params && a1.params.iter().all(is_const_term) {
                                return None;
                            }
                            return Some(Contradiction::ParamDependent);
                        }
                        Contradiction::None => return None,
                    }
                }
            }
            // Fall back to any capability defining both commands.
            for cap in capability::CAPABILITIES {
                if cap.command(&a1.command).is_some() && cap.command(&a2.command).is_some() {
                    match contradiction(cap, &a1.command, &a2.command) {
                        Contradiction::None => continue,
                        Contradiction::Direct => return Some(Contradiction::Direct),
                        Contradiction::ParamDependent => {
                            // Same parameterized command: races only when the
                            // parameters can differ.
                            if a1.params == a2.params && a1.params.iter().all(is_const_term) {
                                return None;
                            }
                            return Some(Contradiction::ParamDependent);
                        }
                    }
                }
            }
            None
        }
        (ActionSubject::LocationMode, ActionSubject::LocationMode) => {
            if a1.params == a2.params && a1.params.iter().all(is_const_term) {
                None
            } else {
                Some(Contradiction::ParamDependent)
            }
        }
        _ => None,
    }
}

fn is_const_term(t: &Term) -> bool {
    t.as_const().is_some()
}

fn describe_conflict(c: Contradiction) -> &'static str {
    match c {
        Contradiction::Direct => "opposite commands",
        Contradiction::ParamDependent => "conflicting parameters",
        Contradiction::None => "no conflict",
    }
}

/// Whether two triggers can fire from the same event.
fn triggers_coincide(t1: &Trigger, t2: &Trigger) -> bool {
    match (t1, t2) {
        (Trigger::DeviceEvent { .. }, Trigger::DeviceEvent { .. }) => {
            t1.observed_var() == t2.observed_var()
        }
        (Trigger::ModeChange { .. }, Trigger::ModeChange { .. }) => true,
        (Trigger::Periodic { period_secs: p1 }, Trigger::Periodic { period_secs: p2 }) => p1 == p2,
        (
            Trigger::TimeOfDay {
                at_minutes: Some(m1),
                ..
            },
            Trigger::TimeOfDay {
                at_minutes: Some(m2),
                ..
            },
        ) => m1 == m2,
        (Trigger::AppTouch, Trigger::AppTouch) => true,
        _ => false,
    }
}

/// The direct world-state writes of an action: `(variable, effect formula)`.
pub(crate) fn direct_effects(a: &Action) -> Vec<(VarId, Formula)> {
    let mut out = Vec::new();
    match &a.subject {
        ActionSubject::Device(dev) => {
            // Prefer the device's own capability; fall back to the first
            // capability defining the command with effects.
            let own = device_capability(dev).filter(|cap| cap.command(&a.command).is_some());
            let cap = own.or_else(|| {
                capability::CAPABILITIES.iter().find(|c| {
                    c.command(&a.command)
                        .map(|cmd| !cmd.effects.is_empty())
                        .unwrap_or(false)
                })
            });
            let Some(cap) = cap else { return out };
            let Some(cmd) = cap.command(&a.command) else {
                return out;
            };
            for eff in cmd.effects {
                match eff {
                    AttrEffect::SetConst { attribute, value } => {
                        let var = VarId::canonical_attr(dev, attribute);
                        out.push((
                            var.clone(),
                            Formula::cmp(Term::Var(var), CmpOp::Eq, Term::sym(value.to_string())),
                        ));
                    }
                    AttrEffect::SetParam {
                        attribute,
                        param_index,
                    } => {
                        if let Some(p) = a.params.get(*param_index) {
                            let var = VarId::canonical_attr(dev, attribute);
                            out.push((
                                var.clone(),
                                Formula::cmp(Term::Var(var), CmpOp::Eq, p.clone()),
                            ));
                        }
                    }
                }
            }
        }
        ActionSubject::LocationMode => {
            if let Some(p) = a.params.first() {
                out.push((
                    VarId::Mode,
                    Formula::cmp(Term::Var(VarId::Mode), CmpOp::Eq, p.clone()),
                ));
            }
        }
        _ => {}
    }
    out
}

/// The capability a device reference was granted with, resolving synthetic
/// `type:capability/kind` ids.
fn device_capability(dev: &DeviceRef) -> Option<&'static hg_capability::capability::Capability> {
    if let Some(name) = dev.capability() {
        return capability::lookup(name);
    }
    if let DeviceRef::Bound { device_id } = dev {
        if let Some(rest) = device_id.strip_prefix("type:") {
            if let Some((name, _)) = rest.split_once('/') {
                return capability::lookup(name);
            }
        }
    }
    None
}

/// Whether a trigger constraint is compatible with the environment moving in
/// `sign` direction: a `> c` trigger needs an increase, `< c` a decrease,
/// `==`/no-constraint accepts both.
fn direction_compatible(constraint: Option<&Formula>, var: &VarId, sign: Sign) -> bool {
    let Some(c) = constraint else { return true };
    let mut compatible = false;
    let mut any_atom = false;
    scan_atoms(c, &mut |lhs, op, rhs| {
        let (op, touches) = match (lhs, rhs) {
            (Term::Var(v), _) if v == var => (op, true),
            (_, Term::Var(v)) if v == var => (op.flip(), true),
            _ => (op, false),
        };
        if !touches {
            return;
        }
        any_atom = true;
        compatible |= matches!(
            (op, sign),
            (CmpOp::Gt | CmpOp::Ge, Sign::Inc)
                | (CmpOp::Lt | CmpOp::Le, Sign::Dec)
                | (CmpOp::Eq | CmpOp::Ne, _)
        );
    });
    !any_atom || compatible
}

/// Classifies how moving `var` in `sign` direction affects a condition:
/// returns flags for (EnablingCondition, DisablingCondition).
fn classify_env_condition_effect(c2: &Formula, var: &VarId, sign: Sign) -> [(ThreatKind, bool); 2] {
    let mut enables = false;
    let mut disables = false;
    scan_atoms(c2, &mut |lhs, op, rhs| {
        let (op, touches) = match (lhs, rhs) {
            (Term::Var(v), _) if v == var => (op, true),
            (_, Term::Var(v)) if v == var => (op.flip(), true),
            _ => (op, false),
        };
        if !touches {
            return;
        }
        match (op, sign) {
            (CmpOp::Gt | CmpOp::Ge, Sign::Inc) | (CmpOp::Lt | CmpOp::Le, Sign::Dec) => {
                enables = true;
            }
            (CmpOp::Gt | CmpOp::Ge, Sign::Dec) | (CmpOp::Lt | CmpOp::Le, Sign::Inc) => {
                disables = true;
            }
            (CmpOp::Eq | CmpOp::Ne, _) => {
                // Movement can cross an equality in either direction.
                enables = true;
                disables = true;
            }
        }
    });
    [
        (ThreatKind::EnablingCondition, enables),
        (ThreatKind::DisablingCondition, disables),
    ]
}

fn scan_atoms(f: &Formula, visit: &mut impl FnMut(&Term, CmpOp, &Term)) {
    match f {
        Formula::Cmp { lhs, op, rhs } => visit(lhs, *op, rhs),
        Formula::And(parts) | Formula::Or(parts) => {
            for p in parts {
                scan_atoms(p, visit);
            }
        }
        Formula::Not(inner) => scan_atoms(inner, visit),
        _ => {}
    }
}

/// First contradictory action pair between two rules (for SD/LT notes).
fn first_contradictory_pair(r1: &Rule, r2: &Rule) -> Option<(String, String)> {
    for a1 in r1.actuations() {
        for a2 in r2.actuations() {
            if actions_contradict(a1, a2).is_some() {
                let actuator = match a1.subject.device() {
                    Some(d) => d.to_string(),
                    None => "location mode".to_string(),
                };
                return Some((actuator, format!("`{}` vs `{}`", a1.command, a2.command)));
            }
        }
    }
    None
}

/// Display name for the i-th actuation subject of a rule (pre-unification,
/// so the user sees the input slot name).
fn action_subject_name(rule: &Rule, index: usize) -> String {
    rule.actuations()
        .nth(index)
        .map(|a| match &a.subject {
            ActionSubject::Device(d) => d.to_string(),
            ActionSubject::LocationMode => "location mode".to_string(),
            _ => "?".to_string(),
        })
        .unwrap_or_else(|| "?".to_string())
}
