//! The fleet-shared pair-verdict cache.
//!
//! One vetting service fronts the app store for an entire fleet of homes
//! (paper §VIII), and fleet traffic is dominated by *repetition*: thousands
//! of homes install the same store apps, so the same (rule, rule) pair is
//! solved again and again with the same modes and the same relevant
//! configuration. [`VerdictCache`] memoizes the complete pair verdict —
//! the threats **and** the effort counters of one
//! [`detect_pair_prepared`](crate::Detector::detect_pair_prepared) call —
//! behind a sharded `RwLock` map that the rule store owns in an
//! `Arc` and threads through every home's [`Detector`](crate::Detector).
//! A hit skips candidate filtering, model building and constraint solving
//! entirely; a miss computes once and publishes for every other home.
//!
//! # Keying and soundness
//!
//! Entries are **content-addressed**: the key fingerprints everything the
//! pair verdict depends on —
//!
//! * both prepared rules' original *and* unified forms (so two homes whose
//!   device bindings resolve slots differently never share an entry),
//!   in order (directed threat kinds make the pair asymmetric);
//! * the solver context: the home's location modes plus the substituted
//!   [`UserValues`](crate::UserValues) **actually referenced** by the two
//!   rules' formulas and action parameters — homes differing only in
//!   configuration the pair never reads still share entries.
//!
//! Everything else a verdict reads (capability tables, environment bounds,
//! the search budget) is process-static. Content addressing makes the
//! cache self-invalidating — a changed rule hashes to a new key — and the
//! store-level lifecycle hooks ([`evict_app`](VerdictCache::evict_app),
//! wired to `retire_app` and upgrade re-ingest, where an app's entries die
//! for every home at once) reclaim the dead entries so churn cannot grow
//! the map without bound. Per-home context changes (rebinding, new user
//! values) evict nothing: they only change that home's keys, and the old
//! entries keep serving the rest of the fleet until the capacity backstop
//! turns them over.
//!
//! The cache is runtime state, never persisted: snapshots rebuild it empty
//! (`hg-persist` asserts exactly that).

use crate::report::{DecisionTier, DetectStats, Threat};
use std::collections::hash_map::{DefaultHasher, RandomState};
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, PoisonError, RwLock};

/// The identity of one memoized pair verdict: both rules' 128-bit content
/// fingerprints (ordered — directed threat kinds make the pair
/// asymmetric) plus the 128-bit solver-context fingerprint. The cache map
/// compares the **whole structured key on every hit** — a hash-bucket
/// collision degrades to a miss, never to another pair's verdict — and
/// the components are 128-bit double-hashes (two SipHash passes under
/// **secret per-process random keys**, see `fingerprint128` in this
/// module), so crafting colliding rule content offline is infeasible:
/// without the keys SipHash's PRF guarantee applies, and the cache never
/// outlives the process that drew them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PairKey {
    /// First (source-side) rule's content fingerprint.
    pub fp1: u128,
    /// Second (target-side) rule's content fingerprint.
    pub fp2: u128,
    /// Solver-context fingerprint (modes + referenced user values).
    pub ctx: u128,
}

/// Default per-shard entry cap. A shard at capacity evicts its
/// **least-recently-used quarter** (see [`Shard::evict_lru_batch`]) — hot
/// entries survive churn instead of being dumped with the whole shard, and
/// the O(n) recency scan amortizes to O(1) per insert because one scan
/// buys capacity/4 further inserts.
const MAX_ENTRIES_PER_SHARD: usize = 1 << 14;

/// One memoized pair verdict: the threats and the effort counters the
/// uncached detection produced. The counters are *logical* effort — a hit
/// replays them so cached and uncached runs report identical `DetectStats`
/// modulo the hit/miss markers themselves. The member app names ride
/// along so eviction of either app can unregister the key from its
/// partner's eviction list (no tombstone accumulation under churn).
/// `last_used` is the LRU recency stamp — an atomic so the hit fast path
/// can refresh it under the shard's **read** lock.
#[derive(Debug)]
struct CachedVerdict {
    threats: Vec<Threat>,
    stats: DetectStats,
    /// Which pair-check tier produced this verdict (derived from the
    /// memoized counters at insert). Keys stay tier-agnostic — a lowered
    /// and a solver-forced detector share entries, which is exactly what
    /// lets the differential harnesses assert tier equivalence — but the
    /// producing tier rides along for telemetry and those assertions.
    tier: DecisionTier,
    apps: [String; 2],
    last_used: AtomicU64,
    /// Hits this entry has served — the raw material of the hot-pair
    /// leaderboard ([`VerdictCache::top_pairs`]). Atomic for the same
    /// reason as `last_used`: the hit fast path holds only a read lock.
    hits: AtomicU64,
}

#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<PairKey, CachedVerdict>,
    /// `app name → keys involving it`, the eviction index. An entry is
    /// registered under both member apps so either side's retirement
    /// drops it.
    by_app: HashMap<String, Vec<PairKey>>,
}

impl Shard {
    /// Removes one entry, unregistering its key from both member apps'
    /// eviction lists. Returns whether the key was live.
    fn purge_key(&mut self, key: &PairKey) -> bool {
        let Some(dead) = self.entries.remove(key) else {
            return false;
        };
        let [first, second] = &dead.apps;
        for app in std::iter::once(first).chain((second != first).then_some(second)) {
            if let Some(keys) = self.by_app.get_mut(app) {
                keys.retain(|k| k != key);
                if keys.is_empty() {
                    self.by_app.remove(app);
                }
            }
        }
        true
    }

    /// Drops the least-recently-used quarter of the shard (at least one
    /// entry). Recency stamps are strictly increasing draws from the
    /// cache-wide clock, so the cut below the k-th smallest stamp removes
    /// exactly k entries. Returns how many were dropped.
    fn evict_lru_batch(&mut self, capacity: usize) -> u64 {
        let mut stamps: Vec<u64> = self
            .entries
            .values()
            .map(|v| v.last_used.load(Ordering::Relaxed))
            .collect();
        stamps.sort_unstable();
        let batch = (capacity / 4).max(1).min(stamps.len());
        let threshold = stamps[batch - 1];
        let dead: Vec<PairKey> = self
            .entries
            .iter()
            .filter(|(_, v)| v.last_used.load(Ordering::Relaxed) <= threshold)
            .map(|(k, _)| *k)
            .collect();
        let mut dropped = 0u64;
        for key in &dead {
            if self.purge_key(key) {
                dropped += 1;
            }
        }
        dropped
    }
}

/// Aggregate cache effectiveness counters (see [`VerdictCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a fresh detection.
    pub misses: u64,
    /// Entries dropped by lifecycle eviction or capacity pressure.
    pub evicted: u64,
    /// Live entries across all shards.
    pub entries: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0.0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The fleet-shared pair-verdict cache (see the [module docs](self)).
#[derive(Debug)]
pub struct VerdictCache {
    shards: Box<[RwLock<Shard>]>,
    /// Per-shard entry cap; overflow evicts the LRU quarter of the shard.
    capacity: usize,
    /// The LRU clock: every hit and insert draws a strictly increasing
    /// stamp from it.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evicted: AtomicU64,
}

impl Default for VerdictCache {
    fn default() -> Self {
        VerdictCache::new()
    }
}

impl VerdictCache {
    /// A cache with 16 shards (roughly the fleet's default shard width, so
    /// concurrent per-shard sweeps rarely contend on a cache lock).
    pub fn new() -> VerdictCache {
        VerdictCache::with_shards(16)
    }

    /// A cache with a specific shard count (clamped to at least 1).
    pub fn with_shards(n: usize) -> VerdictCache {
        VerdictCache::with_shards_and_capacity(n, MAX_ENTRIES_PER_SHARD)
    }

    /// A cache with a specific shard count and per-shard capacity, both
    /// clamped to at least 1 (tests size the capacity down to exercise LRU
    /// eviction without millions of inserts).
    pub fn with_shards_and_capacity(n: usize, capacity: usize) -> VerdictCache {
        VerdictCache {
            shards: (0..n.max(1))
                .map(|_| RwLock::new(Shard::default()))
                .collect(),
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    // Poison recovery (the `unwrap_or_else(PoisonError::into_inner)` in
    // lookup/insert/evict_app/clear/len): every write is a whole-entry
    // insert or removal of self-contained data, so a panicking writer
    // cannot leave an entry readers can't tolerate — recover the map
    // rather than propagating the poison into every session sharing the
    // cache.

    fn shard(&self, key: &PairKey) -> &RwLock<Shard> {
        let route = (key.fp1 ^ key.fp2.rotate_left(1) ^ key.ctx.rotate_left(2)) as u64;
        &self.shards[(route % self.shards.len() as u64) as usize]
    }

    /// Looks up a pair verdict. A hit clones the memoized threats and
    /// logical effort counters; callers mark the returned stats with
    /// `cache_hits` themselves so the cache stays oblivious to how stats
    /// are absorbed.
    pub fn lookup(&self, key: &PairKey) -> Option<(Vec<Threat>, DetectStats)> {
        self.lookup_full(key).map(|(t, s, _)| (t, s))
    }

    /// [`lookup`](Self::lookup) also reporting which tier produced the
    /// memoized verdict (the engine's sampled cache probes publish it).
    pub fn lookup_full(&self, key: &PairKey) -> Option<(Vec<Threat>, DetectStats, DecisionTier)> {
        let shard = self
            .shard(key)
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        match shard.entries.get(key) {
            Some(verdict) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                // Refresh LRU recency under the read lock (the stamp is
                // atomic precisely so hits never upgrade to a write lock).
                verdict.last_used.store(
                    self.clock.fetch_add(1, Ordering::Relaxed),
                    Ordering::Relaxed,
                );
                verdict.hits.fetch_add(1, Ordering::Relaxed);
                Some((verdict.threats.clone(), verdict.stats, verdict.tier))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Publishes a freshly computed verdict under `key`, registered for
    /// eviction under both member apps. Racing inserts of the same key are
    /// harmless: content addressing means both writers carry the same
    /// verdict. A shard at capacity sheds its least-recently-used quarter
    /// first, so hot-shard churn turns over cold entries instead of
    /// dumping the verdicts the fleet is actively hitting.
    pub fn insert(&self, key: PairKey, apps: [&str; 2], threats: Vec<Threat>, stats: DetectStats) {
        let mut shard = self
            .shard(&key)
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        if shard.entries.len() >= self.capacity && !shard.entries.contains_key(&key) {
            let dropped = shard.evict_lru_batch(self.capacity);
            self.evicted.fetch_add(dropped, Ordering::Relaxed);
        }
        let verdict = CachedVerdict {
            threats,
            stats,
            tier: stats.deciding_tier(),
            apps: [apps[0].to_string(), apps[1].to_string()],
            last_used: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed)),
            hits: AtomicU64::new(0),
        };
        if shard.entries.insert(key, verdict).is_none() {
            for app in apps {
                let keys = shard.by_app.entry(app.to_string()).or_default();
                // Both members may be the same app (intra-app pairs).
                if keys.last() != Some(&key) {
                    keys.push(key);
                }
            }
        }
    }

    /// Drops every entry involving `app` — the store-level lifecycle
    /// invalidation hook (retirement, upgrade re-ingest). Content
    /// addressing already prevents a stale verdict from answering for a
    /// *changed* rule; eviction reclaims the memory the dead version
    /// held. Returns how many entries were dropped.
    pub fn evict_app(&self, app: &str) -> usize {
        let mut dropped = 0usize;
        for shard in self.shards.iter() {
            let mut shard = shard.write().unwrap_or_else(PoisonError::into_inner);
            let Some(keys) = shard.by_app.remove(app) else {
                continue;
            };
            for key in keys {
                let Some(dead) = shard.entries.remove(&key) else {
                    continue;
                };
                dropped += 1;
                // Unregister the key from the partner app's eviction list
                // too: a long-lived app repeatedly paired against churned
                // partners must not accumulate dead keys forever.
                for partner in &dead.apps {
                    if partner != app {
                        if let Some(partner_keys) = shard.by_app.get_mut(partner) {
                            partner_keys.retain(|k| *k != key);
                            if partner_keys.is_empty() {
                                shard.by_app.remove(partner);
                            }
                        }
                    }
                }
            }
        }
        self.evicted.fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Drops everything (reconfiguration storms, tests).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut shard = shard.write().unwrap_or_else(PoisonError::into_inner);
            self.evicted
                .fetch_add(shard.entries.len() as u64, Ordering::Relaxed);
            shard.entries.clear();
            shard.by_app.clear();
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .entries
                    .len()
            })
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total keys registered in the eviction index across all shards
    /// (test instrumentation for the no-tombstone-accumulation property).
    #[cfg(test)]
    fn registered_keys(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .by_app
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Aggregate effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }

    /// The hot-pair leaderboard: the `n` most-hit **app pairs** (unordered
    /// — a directed pair's two orientations aggregate into one row),
    /// summed over every live entry the pair has in the cache (different
    /// solver contexts and rule pairs of the same two apps count
    /// together). Ties break by app names for a deterministic board.
    /// Evicted entries take their hit history with them: the board ranks
    /// what the *current* working set is serving.
    pub fn top_pairs(&self, n: usize) -> Vec<HotPair> {
        use std::collections::BTreeMap;
        let mut board: BTreeMap<[String; 2], (u64, u64, u64)> = BTreeMap::new();
        for shard in self.shards.iter() {
            let shard = shard.read().unwrap_or_else(PoisonError::into_inner);
            for verdict in shard.entries.values() {
                let [a, b] = &verdict.apps;
                let key = if a <= b {
                    [a.clone(), b.clone()]
                } else {
                    [b.clone(), a.clone()]
                };
                let (hits, entries, threats) = board.entry(key).or_default();
                *hits += verdict.hits.load(Ordering::Relaxed);
                *entries += 1;
                *threats += verdict.threats.len() as u64;
            }
        }
        let mut rows: Vec<HotPair> = board
            .into_iter()
            .map(|(apps, (hits, entries, threats))| HotPair {
                apps,
                hits,
                entries,
                threats,
            })
            .collect();
        rows.sort_by(|a, b| b.hits.cmp(&a.hits).then_with(|| a.apps.cmp(&b.apps)));
        rows.truncate(n);
        rows
    }
}

/// One row of the hot-pair leaderboard (see [`VerdictCache::top_pairs`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotPair {
    /// The two member apps, lexicographically ordered.
    pub apps: [String; 2],
    /// Cache hits served for the pair's live entries.
    pub hits: u64,
    /// Live cache entries of the pair (rule pairs × solver contexts).
    pub entries: u64,
    /// Memoized threats across those entries.
    pub threats: u64,
}

/// A 128-bit content fingerprint: two independent SipHash passes under
/// **secret keys drawn once per process** (`RandomState`), over whatever
/// `write` feeds in. The cache lives only in memory, so per-process
/// stability is all that is required — and keeping the keys secret is
/// what makes the fingerprint adversarially meaningful: SipHash is a PRF
/// under an unknown key, so a malicious store-app author cannot search
/// offline for rule content whose [`PairKey`] collides with a benign
/// pair's. (Contrast the rule store's *persisted* ingest fingerprints,
/// which use fixed keys because they must survive restarts — they gate
/// only a re-extraction, never a verdict.)
pub(crate) fn fingerprint128(write: impl Fn(&mut DefaultHasher)) -> u128 {
    static KEYS: OnceLock<(RandomState, RandomState)> = OnceLock::new();
    let (lo_keys, hi_keys) = KEYS.get_or_init(|| (RandomState::new(), RandomState::new()));
    let mut lo = lo_keys.build_hasher();
    write(&mut lo);
    let mut hi = hi_keys.build_hasher();
    write(&mut hi);
    ((hi.finish() as u128) << 64) | lo.finish() as u128
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ThreatKind;
    use hg_rules::rule::RuleId;

    fn key(n: u128) -> PairKey {
        PairKey {
            fp1: n,
            fp2: n.rotate_left(7),
            ctx: 0,
        }
    }

    fn threat(src: &str, dst: &str) -> Threat {
        Threat {
            kind: ThreatKind::ActuatorRace,
            source: RuleId::new(src, 0),
            target: RuleId::new(dst, 0),
            witness: None,
            actuator: None,
            property: None,
            note: "race".into(),
        }
    }

    #[test]
    fn lookup_miss_then_hit_round_trips_the_verdict() {
        let cache = VerdictCache::new();
        assert!(cache.lookup(&key(7)).is_none());
        let stats = DetectStats {
            pairs: 1,
            solves: 2,
            ..Default::default()
        };
        cache.insert(key(7), ["A", "B"], vec![threat("A", "B")], stats);
        let (threats, back) = cache.lookup(&key(7)).unwrap();
        assert_eq!(threats.len(), 1);
        assert_eq!(back, stats);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn evict_app_drops_entries_of_either_member() {
        let cache = VerdictCache::new();
        cache.insert(key(1), ["A", "B"], vec![], DetectStats::default());
        cache.insert(key(2), ["B", "C"], vec![], DetectStats::default());
        cache.insert(key(3), ["C", "C"], vec![], DetectStats::default());
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evict_app("B"), 2, "entries 1 and 2 involve B");
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(&key(3)).is_some());
        // Idempotent; unknown apps evict nothing.
        assert_eq!(cache.evict_app("B"), 0);
        assert_eq!(cache.evict_app("Ghost"), 0);
        assert!(cache.stats().evicted >= 2);
    }

    #[test]
    fn churned_partner_evictions_leave_no_tombstones() {
        // A long-lived app ("Hub") repeatedly paired against short-lived
        // partners: evicting each partner must also unregister the dead
        // keys from Hub's eviction list, or a long-running service leaks
        // ~48 bytes per upgrade cycle forever.
        let cache = VerdictCache::with_shards(4);
        for round in 0u128..100 {
            let partner = format!("X{round}");
            cache.insert(
                key(round + 1),
                ["Hub", &partner],
                vec![],
                DetectStats::default(),
            );
            assert_eq!(cache.evict_app(&partner), 1);
            assert_eq!(
                cache.registered_keys(),
                0,
                "round {round}: dead keys must not accumulate under Hub"
            );
        }
        assert!(cache.is_empty());
        // Same-app pairs deregister cleanly too.
        cache.insert(key(7), ["Solo", "Solo"], vec![], DetectStats::default());
        assert_eq!(cache.evict_app("Solo"), 1);
        assert_eq!(cache.registered_keys(), 0);
    }

    #[test]
    fn capacity_eviction_is_least_recently_used() {
        // Capacity 8, one shard: fill it, refresh a subset, overflow, and
        // the evicted batch must be exactly the least-recently-used
        // entries — never the hot ones, and never the whole shard.
        let cache = VerdictCache::with_shards_and_capacity(1, 8);
        for n in 0u128..8 {
            cache.insert(key(n), ["A", "A"], vec![], DetectStats::default());
        }
        assert_eq!(cache.len(), 8);
        // Touch everything except entries 1, 2 and 3; they become the LRU
        // tail (in that order, oldest first).
        for n in [0u128, 4, 5, 6, 7] {
            assert!(cache.lookup(&key(n)).is_some());
        }
        // Overflow: capacity/4 = 2 entries must go — the two least
        // recently used (1 and 2), nothing else.
        cache.insert(key(8), ["A", "A"], vec![], DetectStats::default());
        assert_eq!(cache.len(), 7, "one LRU batch, not a wholesale clear");
        let miss = |n: u128| cache.lookup(&key(n)).is_none();
        assert!(miss(1) && miss(2), "the LRU tail is evicted first");
        for survivor in [0u128, 3, 4, 5, 6, 7, 8] {
            assert!(
                cache.lookup(&key(survivor)).is_some(),
                "entry {survivor} was recently used and must survive"
            );
        }
        // The eviction index shrank with the entries (no tombstones).
        assert_eq!(cache.registered_keys(), cache.len());
        assert_eq!(cache.stats().evicted, 2);

        // Re-inserting an existing key at capacity must not evict anyone:
        // it replaces in place.
        while cache.len() < 8 {
            cache.insert(key(100), ["A", "A"], vec![], DetectStats::default());
        }
        let before = cache.stats().evicted;
        cache.insert(key(8), ["A", "A"], vec![], DetectStats::default());
        assert_eq!(cache.stats().evicted, before);
        assert_eq!(cache.len(), 8);
    }

    #[test]
    fn top_pairs_ranks_by_hits_and_merges_orientations() {
        let cache = VerdictCache::with_shards(4);
        // Two entries of the same unordered pair (both orientations), one
        // carrying a threat; plus a cold bystander pair.
        cache.insert(
            key(1),
            ["A", "B"],
            vec![threat("A", "B")],
            DetectStats::default(),
        );
        cache.insert(key(2), ["B", "A"], vec![], DetectStats::default());
        cache.insert(key(3), ["C", "D"], vec![], DetectStats::default());
        for _ in 0..5 {
            assert!(cache.lookup(&key(1)).is_some());
        }
        assert!(cache.lookup(&key(2)).is_some());
        assert!(cache.lookup(&key(3)).is_some());

        let board = cache.top_pairs(10);
        assert_eq!(board.len(), 2);
        assert_eq!(board[0].apps, ["A".to_string(), "B".to_string()]);
        assert_eq!(board[0].hits, 6, "both orientations aggregate");
        assert_eq!(board[0].entries, 2);
        assert_eq!(board[0].threats, 1);
        assert_eq!(board[1].hits, 1);
        // Truncation keeps the hottest.
        let top1 = cache.top_pairs(1);
        assert_eq!(top1.len(), 1);
        assert_eq!(top1[0].apps, ["A".to_string(), "B".to_string()]);
    }

    #[test]
    fn clear_empties_every_shard() {
        let cache = VerdictCache::with_shards(4);
        for n in 0..64 {
            cache.insert(key(n), ["A", "A"], vec![], DetectStats::default());
        }
        assert_eq!(cache.len(), 64);
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.lookup(&key(5)).is_none());
    }

    #[test]
    fn poisoned_shard_recovers() {
        let cache = std::sync::Arc::new(VerdictCache::with_shards(1));
        cache.insert(key(1), ["A", "A"], vec![], DetectStats::default());
        let doomed = cache.clone();
        std::thread::spawn(move || {
            let _guard = doomed.shards[0].write().unwrap();
            panic!("writer dies");
        })
        .join()
        .unwrap_err();
        // Reads and writes keep serving.
        assert!(cache.lookup(&key(1)).is_some());
        cache.insert(key(2), ["B", "B"], vec![], DetectStats::default());
        assert_eq!(cache.len(), 2);
    }
}
