//! The incremental detection engine: installed rules + candidate index.
//!
//! The naive pipeline re-unifies every installed rule and brute-forces
//! every (new, installed) pair on each install. [`DetectionEngine`] keeps
//! the per-home detection state *persistent*: installed rules are prepared
//! (unified + faceted) once, posted into a [`CandidateIndex`], and a new
//! rule only visits the index-colliding subset. `check` reports the exact
//! same threats as `check_exhaustive` — the index is a proven
//! over-approximation of the per-pair action-analysis filters — while
//! skipping most pair visits, which is what lets one process serve many
//! homes against a large installed population.

use crate::engine::Detector;
use crate::index::{CandidateIndex, PreparedRule};
use crate::report::{DetectStats, Threat};
use hg_rules::rule::Rule;

/// Per-home incremental CAI detection state.
#[derive(Debug, Clone, Default)]
pub struct DetectionEngine {
    detector: Detector,
    installed: Vec<PreparedRule>,
    index: CandidateIndex,
}

impl DetectionEngine {
    /// An engine with the given detector (unification policy + solver
    /// context) and no installed rules.
    pub fn new(detector: Detector) -> DetectionEngine {
        DetectionEngine {
            detector,
            installed: Vec::new(),
            index: CandidateIndex::new(),
        }
    }

    /// The configured detector.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// Replaces the detector and re-prepares every installed rule against
    /// the new unification/solver context (device bindings recorded after
    /// installation change how slots resolve, which invalidates both the
    /// unified forms and the index postings).
    pub fn reconfigure(&mut self, detector: Detector) {
        self.detector = detector;
        let rules: Vec<Rule> = self.installed.iter().map(|p| p.orig.clone()).collect();
        self.installed.clear();
        self.index.clear();
        for rule in &rules {
            self.install_rule(rule);
        }
    }

    /// Prepares and posts one rule as installed.
    pub fn install_rule(&mut self, rule: &Rule) {
        let prepared = PreparedRule::prepare(rule, &self.detector.unification);
        self.index.insert(self.installed.len(), &prepared);
        self.installed.push(prepared);
    }

    /// Prepares and posts a batch of rules as installed.
    pub fn install_rules<'a>(&mut self, rules: impl IntoIterator<Item = &'a Rule>) {
        for rule in rules {
            self.install_rule(rule);
        }
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.installed.len()
    }

    /// Whether no rule is installed.
    pub fn is_empty(&self) -> bool {
        self.installed.is_empty()
    }

    /// The installed rules in install order (original, pre-unification
    /// forms).
    pub fn installed_rules(&self) -> impl Iterator<Item = &Rule> {
        self.installed.iter().map(|p| &p.orig)
    }

    /// Indexed incremental detection: checks `new_rules` against the
    /// installed population, visiting only index-colliding pairs. Pairs
    /// internal to `new_rules` are also checked (a multi-rule app can
    /// interfere with itself).
    pub fn check(&self, new_rules: &[Rule]) -> (Vec<Threat>, DetectStats) {
        let prepared: Vec<PreparedRule> = new_rules
            .iter()
            .map(|r| PreparedRule::prepare(r, &self.detector.unification))
            .collect();
        self.check_prepared(&prepared)
    }

    /// [`check`](DetectionEngine::check) over rules the caller already
    /// prepared (one preparation serves repeated checks — the reusable
    /// session the batch entry point builds on).
    pub fn check_prepared(&self, new_rules: &[PreparedRule]) -> (Vec<Threat>, DetectStats) {
        self.check_prepared_staged(new_rules, &[])
    }

    /// [`check_prepared`](DetectionEngine::check_prepared) with an extra
    /// slice of already-prepared `staged` rules treated as installed —
    /// batch members confirmed earlier in a [`check_many`] sweep.
    ///
    /// [`check_many`]: DetectionEngine::check_many
    fn check_prepared_staged(
        &self,
        new_rules: &[PreparedRule],
        staged: &[PreparedRule],
    ) -> (Vec<Threat>, DetectStats) {
        let mut threats = Vec::new();
        let mut stats = DetectStats::default();
        for (i, new_rule) in new_rules.iter().enumerate() {
            let candidates = self.index.candidates(new_rule);
            stats.pruned += (self.installed.len() - candidates.len()) as u64;
            for id in candidates {
                let (t, s) = self
                    .detector
                    .detect_pair_prepared(new_rule, &self.installed[id]);
                threats.extend(t);
                stats.absorb(s);
            }
            // Staged and intra-batch pairs: scan them directly — batches
            // are small compared to the installed population the index
            // exists for.
            for earlier in staged.iter().chain(&new_rules[..i]) {
                let (t, s) = self.detector.detect_pair_prepared(new_rule, earlier);
                threats.extend(t);
                stats.absorb(s);
            }
        }
        (threats, stats)
    }

    /// Exhaustive pairwise detection of `new_rules` against the installed
    /// population (and within the batch): the ground truth the candidate
    /// index is differentially tested against.
    pub fn check_exhaustive(&self, new_rules: &[Rule]) -> (Vec<Threat>, DetectStats) {
        let prepared: Vec<PreparedRule> = new_rules
            .iter()
            .map(|r| PreparedRule::prepare(r, &self.detector.unification))
            .collect();
        let mut threats = Vec::new();
        let mut stats = DetectStats::default();
        for (i, new_rule) in prepared.iter().enumerate() {
            for old in &self.installed {
                let (t, s) = self.detector.detect_pair_prepared(new_rule, old);
                threats.extend(t);
                stats.absorb(s);
            }
            for earlier in &prepared[..i] {
                let (t, s) = self.detector.detect_pair_prepared(new_rule, earlier);
                threats.extend(t);
                stats.absorb(s);
            }
        }
        (threats, stats)
    }

    /// Batch entry point: checks several apps' rule sets in sequence, each
    /// against the installed population *plus the preceding batch members*
    /// — the verdicts a user would see installing the batch in order. One
    /// preparation per rule serves every pair visit.
    pub fn check_many(&self, batch: &[&[Rule]]) -> Vec<(Vec<Threat>, DetectStats)> {
        let mut staged: Vec<PreparedRule> = Vec::new();
        let mut out = Vec::with_capacity(batch.len());
        for rules in batch {
            let prepared: Vec<PreparedRule> = rules
                .iter()
                .map(|r| PreparedRule::prepare(r, &self.detector.unification))
                .collect();
            out.push(self.check_prepared_staged(&prepared, &staged));
            staged.extend(prepared);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ThreatKind;
    use hg_symexec::{extract, ExtractorConfig};

    fn rules_of(source: &str, name: &str) -> Vec<Rule> {
        extract(source, name, &ExtractorConfig::extended())
            .unwrap()
            .rules
    }

    fn on_app(name: &str) -> Vec<Rule> {
        rules_of(
            &format!(
                r#"
definition(name: "{name}")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() {{ subscribe(m, "motion.active", h) }}
def h(evt) {{ lamp.on() }}
"#
            ),
            name,
        )
    }

    fn off_app(name: &str) -> Vec<Rule> {
        rules_of(
            &format!(
                r#"
definition(name: "{name}")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() {{ subscribe(m, "motion.active", h) }}
def h(evt) {{ lamp.off() }}
"#
            ),
            name,
        )
    }

    fn leak_app(name: &str) -> Vec<Rule> {
        rules_of(
            &format!(
                r#"
definition(name: "{name}")
input "leak", "capability.waterSensor"
input "valve", "capability.valve"
def installed() {{ subscribe(leak, "water.wet", h) }}
def h(evt) {{ valve.close() }}
"#
            ),
            name,
        )
    }

    #[test]
    fn incremental_matches_exhaustive_and_finds_race() {
        let mut engine = DetectionEngine::new(Detector::store_wide());
        engine.install_rules(&on_app("OnApp"));
        let new = off_app("OffApp");
        let (indexed, _) = engine.check(&new);
        let (exhaustive, _) = engine.check_exhaustive(&new);
        assert!(indexed.iter().any(|t| t.kind == ThreatKind::ActuatorRace));
        assert_eq!(indexed.len(), exhaustive.len());
    }

    #[test]
    fn index_prunes_unrelated_rules() {
        let mut engine = DetectionEngine::new(Detector::store_wide());
        engine.install_rules(&leak_app("LeakA"));
        engine.install_rules(&on_app("OnApp"));
        let (threats, stats) = engine.check(&off_app("OffApp"));
        assert!(threats.iter().any(|t| t.kind == ThreatKind::ActuatorRace));
        assert!(stats.pruned >= 1, "the leak rule must be pruned: {stats:?}");
        assert_eq!(stats.pairs, 1, "only the lamp rule is visited");
    }

    #[test]
    fn reconfigure_rebinds_devices() {
        use crate::overlap::Unification;
        use std::collections::BTreeMap;
        let mut engine = DetectionEngine::new(Detector::store_wide());
        engine.install_rules(&on_app("OnApp"));
        // Different physical lamps: rebinding must suppress the race.
        let mut map = BTreeMap::new();
        map.insert(
            ("OnApp".to_string(), "lamp".to_string()),
            "lamp-1".to_string(),
        );
        map.insert(
            ("OnApp".to_string(), "m".to_string()),
            "motion-1".to_string(),
        );
        map.insert(
            ("OffApp".to_string(), "lamp".to_string()),
            "lamp-2".to_string(),
        );
        map.insert(
            ("OffApp".to_string(), "m".to_string()),
            "motion-1".to_string(),
        );
        engine.reconfigure(Detector {
            unification: Unification::Bindings(map),
            ..Detector::default()
        });
        let (threats, _) = engine.check(&off_app("OffApp"));
        assert!(
            !threats.iter().any(|t| t.kind == ThreatKind::ActuatorRace),
            "{threats:?}"
        );
    }

    #[test]
    fn check_many_sees_intra_batch_interference() {
        let engine = DetectionEngine::new(Detector::store_wide());
        let a = on_app("OnApp");
        let b = off_app("OffApp");
        let reports = engine.check_many(&[&a, &b]);
        assert_eq!(reports.len(), 2);
        assert!(
            reports[0].0.is_empty(),
            "first app installs into an empty home"
        );
        assert!(
            reports[1]
                .0
                .iter()
                .any(|t| t.kind == ThreatKind::ActuatorRace),
            "second app must race with the first batch member"
        );
    }

    #[test]
    fn intra_batch_pairs_checked_within_one_app_set() {
        let engine = DetectionEngine::new(Detector::store_wide());
        let mut combined = on_app("OnApp");
        combined.extend(off_app("OffApp"));
        let (threats, _) = engine.check(&combined);
        assert!(threats.iter().any(|t| t.kind == ThreatKind::ActuatorRace));
    }
}
