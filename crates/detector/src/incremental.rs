//! The incremental detection engine: installed rules + candidate index.
//!
//! The naive pipeline re-unifies every installed rule and brute-forces
//! every (new, installed) pair on each install. [`DetectionEngine`] keeps
//! the per-home detection state *persistent*: installed rules are prepared
//! (unified + faceted) once, posted into a [`CandidateIndex`], and a new
//! rule only visits the index-colliding subset. `check` reports the exact
//! same threats as `check_exhaustive` — the index is a proven
//! over-approximation of the per-pair action-analysis filters — while
//! skipping most pair visits, which is what lets one process serve many
//! homes against a large installed population.
//!
//! Since the fleet redesign the engine also supports **retraction**
//! ([`remove_rules`](DetectionEngine::remove_rules) /
//! [`remove_app`](DetectionEngine::remove_app)): removed rules are
//! unposted from the index and their slots tombstoned, so uninstall and
//! upgrade are as incremental as install. The slot vector self-compacts
//! once tombstones dominate, keeping long install/uninstall churn from
//! growing the per-home state without bound.

use crate::engine::Detector;
use crate::index::{CandidateIndex, PreparedRule};
use crate::report::{DetectStats, Threat};
use hg_rules::rule::{Rule, RuleId};
use std::collections::HashSet;

/// Per-home incremental CAI detection state.
#[derive(Debug, Clone, Default)]
pub struct DetectionEngine {
    detector: Detector,
    /// Slot-addressed installed rules; `None` marks a retracted slot whose
    /// postings have been removed from the index.
    installed: Vec<Option<PreparedRule>>,
    index: CandidateIndex,
    /// Number of live (non-tombstone) slots.
    live: usize,
}

impl DetectionEngine {
    /// An engine with the given detector (unification policy + solver
    /// context) and no installed rules.
    pub fn new(detector: Detector) -> DetectionEngine {
        DetectionEngine {
            detector,
            installed: Vec::new(),
            index: CandidateIndex::new(),
            live: 0,
        }
    }

    /// The configured detector.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// Replaces the detector and re-prepares every installed rule against
    /// the new unification/solver context (device bindings recorded after
    /// installation change how slots resolve, which invalidates both the
    /// unified forms and the index postings).
    pub fn reconfigure(&mut self, detector: Detector) {
        self.detector = detector;
        let rules: Vec<Rule> = self.installed.drain(..).flatten().map(|p| p.orig).collect();
        self.index.clear();
        self.live = 0;
        for rule in &rules {
            self.install_rule(rule);
        }
    }

    /// Prepares and posts one rule as installed.
    pub fn install_rule(&mut self, rule: &Rule) {
        let prepared = PreparedRule::prepare(rule, &self.detector.unification);
        self.index.insert(self.installed.len(), &prepared);
        self.installed.push(Some(prepared));
        self.live += 1;
    }

    /// Prepares and posts a batch of rules as installed.
    pub fn install_rules<'a>(&mut self, rules: impl IntoIterator<Item = &'a Rule>) {
        for rule in rules {
            self.install_rule(rule);
        }
    }

    /// Retracts every installed rule whose identity is in `ids`: postings
    /// are removed from the candidate index and the slots tombstoned.
    /// Returns how many rules were removed.
    pub fn remove_rules(&mut self, ids: &[RuleId]) -> usize {
        // Hashed membership: the retraction loop visits every installed
        // slot, so an `ids.contains` scan would make bulk retraction
        // O(installed × ids).
        let ids: HashSet<&RuleId> = ids.iter().collect();
        self.retract(|rule| ids.contains(&rule.id)).len()
    }

    /// Retracts every installed rule belonging to `app` (the uninstall /
    /// upgrade entry point), returning the removed rule identities in
    /// install order.
    pub fn remove_app(&mut self, app: &str) -> Vec<RuleId> {
        self.retract(|rule| rule.id.app == app)
    }

    /// The one retraction loop: unpost from the index, tombstone the slot,
    /// keep the live count honest, compact when tombstones dominate.
    fn retract(&mut self, mut gone: impl FnMut(&Rule) -> bool) -> Vec<RuleId> {
        let mut removed = Vec::new();
        for slot in 0..self.installed.len() {
            let Some(prepared) = &self.installed[slot] else {
                continue;
            };
            if gone(&prepared.orig) {
                self.index.remove(slot, prepared);
                removed.push(prepared.orig.id.clone());
                self.installed[slot] = None;
                self.live -= 1;
            }
        }
        self.maybe_compact();
        removed
    }

    /// Rebuilds the slot vector and index without tombstones once dead
    /// slots dominate. Prepared forms are reused — no re-unification.
    fn maybe_compact(&mut self) {
        let dead = self.installed.len() - self.live;
        if dead <= 32 || dead <= self.live {
            return;
        }
        let survivors: Vec<PreparedRule> = self.installed.drain(..).flatten().collect();
        self.index.clear();
        for (slot, prepared) in survivors.iter().enumerate() {
            self.index.insert(slot, prepared);
        }
        self.installed = survivors.into_iter().map(Some).collect();
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no rule is installed.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The installed rules in install order (original, pre-unification
    /// forms).
    pub fn installed_rules(&self) -> impl Iterator<Item = &Rule> {
        self.installed.iter().flatten().map(|p| &p.orig)
    }

    /// Indexed incremental detection: checks `new_rules` against the
    /// installed population, visiting only index-colliding pairs. Pairs
    /// internal to `new_rules` are also checked (a multi-rule app can
    /// interfere with itself).
    pub fn check(&self, new_rules: &[Rule]) -> (Vec<Threat>, DetectStats) {
        let prepared: Vec<PreparedRule> = new_rules
            .iter()
            .map(|r| PreparedRule::prepare(r, &self.detector.unification))
            .collect();
        self.check_prepared(&prepared)
    }

    /// [`check`](DetectionEngine::check) against the installed population
    /// **minus one app's rules** — upgrade staging: the new version is
    /// checked as if the old one were already retracted, without cloning
    /// or mutating the engine.
    pub fn check_excluding(
        &self,
        new_rules: &[Rule],
        exclude_app: &str,
    ) -> (Vec<Threat>, DetectStats) {
        let prepared: Vec<PreparedRule> = new_rules
            .iter()
            .map(|r| PreparedRule::prepare(r, &self.detector.unification))
            .collect();
        self.check_prepared_staged(&prepared, &[], Some(exclude_app))
    }

    /// [`check`](DetectionEngine::check) over rules the caller already
    /// prepared (one preparation serves repeated checks — the reusable
    /// session the batch entry point builds on).
    pub fn check_prepared(&self, new_rules: &[PreparedRule]) -> (Vec<Threat>, DetectStats) {
        self.check_prepared_staged(new_rules, &[], None)
    }

    /// [`check_prepared`](DetectionEngine::check_prepared) with an extra
    /// slice of already-prepared `staged` rules treated as installed —
    /// batch members confirmed earlier in a [`check_many`] sweep — and an
    /// optional app whose installed rules are masked out (upgrade
    /// staging).
    ///
    /// [`check_many`]: DetectionEngine::check_many
    fn check_prepared_staged(
        &self,
        new_rules: &[PreparedRule],
        staged: &[PreparedRule],
        exclude_app: Option<&str>,
    ) -> (Vec<Threat>, DetectStats) {
        // The population an exhaustive filterless detector would visit:
        // live rules minus the masked app's.
        let population = match exclude_app {
            None => self.live,
            Some(app) => {
                self.live
                    - self
                        .installed
                        .iter()
                        .flatten()
                        .filter(|p| p.orig.id.app == app)
                        .count()
            }
        };
        let mut threats = Vec::new();
        let mut stats = DetectStats::default();
        // Scratch reused across pair visits: threats append straight into
        // the report vector and the candidate buffer keeps its allocation
        // from rule to rule — the sweep's only steady-state allocations
        // are the threats themselves.
        let mut candidates: Vec<usize> = Vec::new();
        for (i, new_rule) in new_rules.iter().enumerate() {
            self.index.candidates_into(new_rule, &mut candidates);
            let mut visited = 0usize;
            for &id in &candidates {
                // Candidates only ever name live slots: retraction unposts
                // a slot from every index key before tombstoning it.
                let Some(old) = &self.installed[id] else {
                    continue;
                };
                if exclude_app.is_some_and(|app| old.orig.id.app == app) {
                    continue;
                }
                visited += 1;
                stats.absorb(
                    self.detector
                        .detect_pair_prepared_into(new_rule, old, &mut threats),
                );
            }
            stats.pruned += (population - visited) as u64;
            // Staged and intra-batch pairs: scan them directly — batches
            // are small compared to the installed population the index
            // exists for.
            for earlier in staged.iter().chain(&new_rules[..i]) {
                stats.absorb(self.detector.detect_pair_prepared_into(
                    new_rule,
                    earlier,
                    &mut threats,
                ));
            }
        }
        (threats, stats)
    }

    /// Exhaustive pairwise detection of `new_rules` against the installed
    /// population (and within the batch): the ground truth the candidate
    /// index is differentially tested against.
    pub fn check_exhaustive(&self, new_rules: &[Rule]) -> (Vec<Threat>, DetectStats) {
        let prepared: Vec<PreparedRule> = new_rules
            .iter()
            .map(|r| PreparedRule::prepare(r, &self.detector.unification))
            .collect();
        let mut threats = Vec::new();
        let mut stats = DetectStats::default();
        for (i, new_rule) in prepared.iter().enumerate() {
            for old in self.installed.iter().flatten() {
                stats.absorb(
                    self.detector
                        .detect_pair_prepared_into(new_rule, old, &mut threats),
                );
            }
            for earlier in &prepared[..i] {
                stats.absorb(self.detector.detect_pair_prepared_into(
                    new_rule,
                    earlier,
                    &mut threats,
                ));
            }
        }
        (threats, stats)
    }

    /// Batch entry point: checks several apps' rule sets in sequence, each
    /// against the installed population *plus the preceding batch members*
    /// — the verdicts a user would see installing the batch in order. One
    /// preparation per rule serves every pair visit.
    pub fn check_many(&self, batch: &[&[Rule]]) -> Vec<(Vec<Threat>, DetectStats)> {
        let mut staged: Vec<PreparedRule> = Vec::new();
        let mut out = Vec::with_capacity(batch.len());
        for rules in batch {
            let prepared: Vec<PreparedRule> = rules
                .iter()
                .map(|r| PreparedRule::prepare(r, &self.detector.unification))
                .collect();
            out.push(self.check_prepared_staged(&prepared, &staged, None));
            staged.extend(prepared);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ThreatKind;
    use hg_symexec::{extract, ExtractorConfig};

    fn rules_of(source: &str, name: &str) -> Vec<Rule> {
        extract(source, name, &ExtractorConfig::extended())
            .unwrap()
            .rules
    }

    fn on_app(name: &str) -> Vec<Rule> {
        rules_of(
            &format!(
                r#"
definition(name: "{name}")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() {{ subscribe(m, "motion.active", h) }}
def h(evt) {{ lamp.on() }}
"#
            ),
            name,
        )
    }

    fn off_app(name: &str) -> Vec<Rule> {
        rules_of(
            &format!(
                r#"
definition(name: "{name}")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() {{ subscribe(m, "motion.active", h) }}
def h(evt) {{ lamp.off() }}
"#
            ),
            name,
        )
    }

    fn leak_app(name: &str) -> Vec<Rule> {
        rules_of(
            &format!(
                r#"
definition(name: "{name}")
input "leak", "capability.waterSensor"
input "valve", "capability.valve"
def installed() {{ subscribe(leak, "water.wet", h) }}
def h(evt) {{ valve.close() }}
"#
            ),
            name,
        )
    }

    #[test]
    fn incremental_matches_exhaustive_and_finds_race() {
        let mut engine = DetectionEngine::new(Detector::store_wide());
        engine.install_rules(&on_app("OnApp"));
        let new = off_app("OffApp");
        let (indexed, _) = engine.check(&new);
        let (exhaustive, _) = engine.check_exhaustive(&new);
        assert!(indexed.iter().any(|t| t.kind == ThreatKind::ActuatorRace));
        assert_eq!(indexed.len(), exhaustive.len());
    }

    #[test]
    fn index_prunes_unrelated_rules() {
        let mut engine = DetectionEngine::new(Detector::store_wide());
        engine.install_rules(&leak_app("LeakA"));
        engine.install_rules(&on_app("OnApp"));
        let (threats, stats) = engine.check(&off_app("OffApp"));
        assert!(threats.iter().any(|t| t.kind == ThreatKind::ActuatorRace));
        assert!(stats.pruned >= 1, "the leak rule must be pruned: {stats:?}");
        assert_eq!(stats.pairs, 1, "only the lamp rule is visited");
    }

    #[test]
    fn reconfigure_rebinds_devices() {
        use crate::overlap::Unification;
        use std::collections::BTreeMap;
        let mut engine = DetectionEngine::new(Detector::store_wide());
        engine.install_rules(&on_app("OnApp"));
        // Different physical lamps: rebinding must suppress the race.
        let mut map = BTreeMap::new();
        map.insert(
            ("OnApp".to_string(), "lamp".to_string()),
            "lamp-1".to_string(),
        );
        map.insert(
            ("OnApp".to_string(), "m".to_string()),
            "motion-1".to_string(),
        );
        map.insert(
            ("OffApp".to_string(), "lamp".to_string()),
            "lamp-2".to_string(),
        );
        map.insert(
            ("OffApp".to_string(), "m".to_string()),
            "motion-1".to_string(),
        );
        engine.reconfigure(Detector {
            unification: Unification::Bindings(map),
            ..Detector::default()
        });
        let (threats, _) = engine.check(&off_app("OffApp"));
        assert!(
            !threats.iter().any(|t| t.kind == ThreatKind::ActuatorRace),
            "{threats:?}"
        );
    }

    #[test]
    fn remove_app_retracts_rules_and_postings() {
        let mut engine = DetectionEngine::new(Detector::store_wide());
        engine.install_rules(&on_app("OnApp"));
        engine.install_rules(&leak_app("LeakA"));
        assert_eq!(engine.len(), 2);

        let removed = engine.remove_app("OnApp");
        assert_eq!(removed, vec![RuleId::new("OnApp", 0)]);
        assert_eq!(engine.len(), 1);
        assert_eq!(
            engine
                .installed_rules()
                .map(|r| &r.id.app)
                .collect::<Vec<_>>(),
            vec!["LeakA"]
        );

        // The race partner is gone: a re-check of OffApp is clean, and the
        // leak rule is pruned rather than visited.
        let (threats, stats) = engine.check(&off_app("OffApp"));
        assert!(threats.is_empty(), "{threats:?}");
        assert_eq!(stats.pairs, 0);
        assert_eq!(stats.pruned, 1);

        // Removing an app that is not installed is a no-op.
        assert!(engine.remove_app("OnApp").is_empty());
        assert_eq!(engine.remove_rules(&[RuleId::new("Ghost", 0)]), 0);
    }

    #[test]
    fn retraction_matches_a_fresh_rebuild() {
        let mut engine = DetectionEngine::new(Detector::store_wide());
        engine.install_rules(&on_app("OnApp"));
        engine.install_rules(&leak_app("LeakA"));
        engine.install_rules(&off_app("OffApp"));
        engine.remove_app("LeakA");

        let mut fresh = DetectionEngine::new(Detector::store_wide());
        fresh.install_rules(&on_app("OnApp"));
        fresh.install_rules(&off_app("OffApp"));

        let probe = off_app("Probe");
        let (incremental, _) = engine.check(&probe);
        let (rebuilt, _) = fresh.check(&probe);
        assert_eq!(incremental.len(), rebuilt.len());
        for (a, b) in incremental.iter().zip(&rebuilt) {
            assert_eq!(
                (a.kind, &a.source, &a.target),
                (b.kind, &b.source, &b.target)
            );
        }
    }

    #[test]
    fn check_excluding_masks_the_old_version() {
        let mut engine = DetectionEngine::new(Detector::store_wide());
        engine.install_rules(&on_app("OnApp"));
        engine.install_rules(&leak_app("LeakA"));

        // Upgrading OnApp to an off-variant: checked against the
        // population minus OnApp's own v1, the new rules are clean.
        let v2 = off_app("OnApp");
        let (threats, stats) = engine.check_excluding(&v2, "OnApp");
        assert!(threats.is_empty(), "{threats:?}");
        assert_eq!(stats.pairs, 0);
        assert_eq!(stats.pruned, 1, "only the leak rule is in the population");

        // The mask must match actually retracting the app.
        let mut retracted = engine.clone();
        retracted.remove_app("OnApp");
        let (reference, ref_stats) = retracted.check(&v2);
        assert_eq!(threats.len(), reference.len());
        assert_eq!(stats.pruned, ref_stats.pruned);

        // Without the mask, v1 and v2 race.
        let (threats, _) = engine.check(&v2);
        assert!(threats.iter().any(|t| t.kind == ThreatKind::ActuatorRace));
    }

    #[test]
    fn heavy_churn_compacts_tombstones() {
        let mut engine = DetectionEngine::new(Detector::store_wide());
        for round in 0..60 {
            let name = format!("App{round}");
            engine.install_rules(&on_app(&name));
            if round >= 2 {
                let victim = format!("App{}", round - 2);
                assert_eq!(engine.remove_app(&victim).len(), 1);
            }
        }
        assert_eq!(engine.len(), 2, "only the last two apps survive");
        assert!(
            engine.installed.len() <= engine.live * 2 + 33,
            "tombstones must not accumulate: {} slots for {} live",
            engine.installed.len(),
            engine.live
        );
        // The survivors still race with a probe.
        let (threats, _) = engine.check(&off_app("Probe"));
        assert!(threats.iter().any(|t| t.kind == ThreatKind::ActuatorRace));
    }

    #[test]
    fn check_many_sees_intra_batch_interference() {
        let engine = DetectionEngine::new(Detector::store_wide());
        let a = on_app("OnApp");
        let b = off_app("OffApp");
        let reports = engine.check_many(&[&a, &b]);
        assert_eq!(reports.len(), 2);
        assert!(
            reports[0].0.is_empty(),
            "first app installs into an empty home"
        );
        assert!(
            reports[1]
                .0
                .iter()
                .any(|t| t.kind == ThreatKind::ActuatorRace),
            "second app must race with the first batch member"
        );
    }

    #[test]
    fn intra_batch_pairs_checked_within_one_app_set() {
        let engine = DetectionEngine::new(Detector::store_wide());
        let mut combined = on_app("OnApp");
        combined.extend(off_app("OffApp"));
        let (threats, _) = engine.check(&combined);
        assert!(threats.iter().any(|t| t.kind == ThreatKind::ActuatorRace));
    }
}
