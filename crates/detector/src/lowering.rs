//! Compile-time lowering of prepared-rule formulas into specialized
//! pair-overlap evaluators.
//!
//! A verdict-cache *miss* pays the full generic pipeline per pair:
//! substitute → merge → declare domains → lower → DNF search
//! (`BENCH_PR5.json` records ~45 µs per uncached AR pair). Most corpus
//! formulas are trivially shaped — interval bounds on a numeric
//! attribute, equality tests on a shared actuator attribute, mode-set
//! membership, boolean literals. This module classifies each prepared
//! rule's constraint conjunction **once, at prepare time**, into a flat
//! [`LoweredProgram`]; at detection time `check_pair` decides overlap
//! of two programs directly — same constant folding, same symbol
//! interning, same propagation, same entailment, same witness the solver
//! would produce — without building a solver model.
//!
//! The contract is **refuse, never guess**. Compilation refuses shapes
//! the evaluator cannot replicate exactly (arithmetic terms, unresolved
//! variable-variable joins, conjunctions nested inside disjunctions,
//! oversized disjunction products), and the evaluator refuses at check
//! time whenever the full solver would have to *branch* on a variable
//! (an atom neither entailed nor refuted at the propagation fixpoint —
//! e.g. `!=` against an interior point of a numeric interval). Every
//! refusal falls back to the untouched
//! [`OverlapSolver`] path, so a lowered
//! answer is always bit-identical — including the satisfying witness —
//! to what the solver would have returned.

use crate::overlap::{attr_domain, env_bounds, OverlapSolver};
use hg_capability::domains::{scaled, AttrDomain};
use hg_rules::constraint::{eval_const_cmp, CmpOp, Formula, Term};
use hg_rules::value::Value;
use hg_rules::varid::VarId;
use hg_solver::domain::{Dom, SymId, SymTable};
use hg_solver::expr::{NULL_SYM, OTHER_SYM};
use hg_solver::{Assignment, Outcome};
use std::collections::{BTreeMap, BTreeSet};

/// Ceiling on the disjunction-branch product of a single compiled
/// program. Two programs merge multiplicatively, so a pair check visits
/// at most `MAX_BRANCHES²` = 1024 branches — comfortably inside the
/// solver's DNF cap (4096) and node budget (200 000), which guarantees
/// the reference path can never diverge to `Outcome::Unknown` on a
/// shape the lowered tier accepts.
const MAX_BRANCHES: usize = 32;

/// One operand of a lowered atom.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Operand {
    /// Index into [`LoweredProgram::vars`].
    Var(usize),
    /// An inline constant.
    Const(Value),
}

/// One comparison atom, negation already pushed into the operator.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LoweredAtom {
    lhs: Operand,
    op: CmpOp,
    rhs: Operand,
}

/// One conjunct: a disjunction of atoms. A plain conjunct is the
/// single-branch common case.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LoweredFactor {
    branches: Vec<LoweredAtom>,
}

/// The domain a lowered variable ranges over, resolved at compile time
/// by the same rules `OverlapSolver::declare_domains` applies per solve.
#[derive(Debug, Clone, PartialEq, Eq)]
enum DomSpec {
    /// A declared integer interval (device attribute range, environment
    /// bounds, time of day, day of week).
    Int { lo: i64, hi: i64 },
    /// A declared symbol set, kept in declaration order so check-time
    /// interning replays the solver's symbol-id assignment exactly.
    Enum(Vec<String>),
    /// The home's location modes — per-home state, read from the solver
    /// at check time (prepared rules are store-cached across homes).
    Modes,
    /// Undeclared: typed and bounded at check time exactly as the
    /// solver's `lower` pass treats undeclared variables.
    Free,
}

/// A prepared rule's constraint conjunction compiled to a flat program
/// of variable-vs-constant comparisons over an indexed register file.
///
/// Built once at prepare time by `LoweredProgram::compile` (shared via
/// the store-level prepared-rule cache) and consumed pairwise by the
/// engine's lowered tier. A program existing does not guarantee a
/// lowered verdict: the pairwise check can still refuse at runtime and
/// fall back to the solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoweredProgram {
    factors: Vec<LoweredFactor>,
    vars: Vec<(VarId, DomSpec)>,
}

/// Compile-time operand before register indexing.
enum RawOperand {
    Var(VarId),
    Const(Value),
}

/// Compile-time atom before register indexing.
struct RawAtom {
    lhs: RawOperand,
    op: CmpOp,
    rhs: RawOperand,
}

impl LoweredProgram {
    /// Compiles a constraint formula, or returns `None` when the shape
    /// cannot be decided without the full solver.
    ///
    /// Negations are pushed into comparison operators (numbers fold the
    /// same under a negated operator as under negation of the folded
    /// result, so this commutes with check-time constant folding).
    /// Refused shapes: arithmetic terms, variable-variable atoms with no
    /// user-input side, conjunctions nested inside disjunctions, and
    /// disjunction products beyond [`MAX_BRANCHES`].
    pub(crate) fn compile(formula: &Formula) -> Option<LoweredProgram> {
        let mut raw: Vec<Vec<RawAtom>> = Vec::new();
        let mut is_false = false;
        collect_conjuncts(formula, false, &mut raw, &mut is_false)?;
        if is_false {
            // Constant-false program: one empty disjunction. The solver
            // collapses such formulas before scanning, so no variables
            // are registered.
            return Some(LoweredProgram {
                factors: vec![LoweredFactor {
                    branches: Vec::new(),
                }],
                vars: Vec::new(),
            });
        }
        let mut product = 1usize;
        for factor in &raw {
            product = product.saturating_mul(factor.len());
            if product > MAX_BRANCHES {
                return None;
            }
        }
        // Index variables in first-mention order (lhs before rhs within
        // an atom), mirroring the solver scan's register file.
        let mut vars: Vec<(VarId, DomSpec)> = Vec::new();
        let mut index: BTreeMap<VarId, usize> = BTreeMap::new();
        let mut factors = Vec::with_capacity(raw.len());
        for factor in raw {
            let branches = factor
                .into_iter()
                .map(|atom| LoweredAtom {
                    lhs: index_operand(atom.lhs, &mut vars, &mut index),
                    op: atom.op,
                    rhs: index_operand(atom.rhs, &mut vars, &mut index),
                })
                .collect();
            factors.push(LoweredFactor { branches });
        }
        Some(LoweredProgram { factors, vars })
    }

    /// Number of conjunctive factors in the compiled program.
    pub fn factor_count(&self) -> usize {
        self.factors.len()
    }
}

fn index_operand(
    op: RawOperand,
    vars: &mut Vec<(VarId, DomSpec)>,
    index: &mut BTreeMap<VarId, usize>,
) -> Operand {
    match op {
        RawOperand::Const(v) => Operand::Const(v),
        RawOperand::Var(vid) => {
            if let Some(&idx) = index.get(&vid) {
                return Operand::Var(idx);
            }
            let idx = vars.len();
            let spec = dom_spec(&vid);
            index.insert(vid.clone(), idx);
            vars.push((vid, spec));
            Operand::Var(idx)
        }
    }
}

/// The compile-time domain for a variable, replicating
/// `OverlapSolver::declare_domains` case for case.
fn dom_spec(var: &VarId) -> DomSpec {
    match var {
        VarId::DeviceAttr { device, attribute } => match attr_domain(device, attribute) {
            Some(AttrDomain::Enum(values)) => {
                DomSpec::Enum(values.iter().map(|v| (*v).to_string()).collect())
            }
            Some(AttrDomain::Numeric { min, max, .. }) => DomSpec::Int { lo: min, hi: max },
            Some(AttrDomain::Text) | None => DomSpec::Free,
        },
        VarId::Env(p) => {
            let (lo, hi) = env_bounds(p);
            DomSpec::Int { lo, hi }
        }
        VarId::Mode => DomSpec::Modes,
        VarId::TimeOfDay => DomSpec::Int {
            lo: 0,
            hi: scaled(24 * 60),
        },
        VarId::DayOfWeek => DomSpec::Int {
            lo: 0,
            hi: scaled(6),
        },
        VarId::UserInput { .. } | VarId::State { .. } | VarId::Opaque { .. } => DomSpec::Free,
    }
}

/// Collects the conjuncts of `f` (with `negated` polarity) into `out`.
/// Returns `None` to refuse; sets `is_false` on a literal contradiction.
fn collect_conjuncts(
    f: &Formula,
    negated: bool,
    out: &mut Vec<Vec<RawAtom>>,
    is_false: &mut bool,
) -> Option<()> {
    match (f, negated) {
        (Formula::True, false) | (Formula::False, true) => {}
        (Formula::True, true) | (Formula::False, false) => *is_false = true,
        (Formula::Not(inner), n) => collect_conjuncts(inner, !n, out, is_false)?,
        (Formula::And(parts), false) => {
            for p in parts {
                collect_conjuncts(p, false, out, is_false)?;
            }
        }
        (Formula::Or(parts), true) => {
            // ¬(a ∨ b) = ¬a ∧ ¬b
            for p in parts {
                collect_conjuncts(p, true, out, is_false)?;
            }
        }
        (Formula::Cmp { lhs, op, rhs }, n) => {
            out.push(vec![raw_atom(lhs, *op, rhs, n)?]);
        }
        (Formula::Or(parts), false) | (Formula::And(parts), true) => {
            let mut branches = Vec::new();
            match collect_branches(parts, negated, &mut branches)? {
                // A literal-true branch makes the whole disjunct true.
                FactorState::True => {}
                FactorState::Live => {
                    if branches.is_empty() {
                        *is_false = true;
                    } else {
                        out.push(branches);
                    }
                }
            }
        }
    }
    Some(())
}

enum FactorState {
    Live,
    True,
}

fn collect_branches(
    parts: &[Formula],
    negated: bool,
    out: &mut Vec<RawAtom>,
) -> Option<FactorState> {
    for p in parts {
        if let FactorState::True = branch_one(p, negated, out)? {
            return Some(FactorState::True);
        }
    }
    Some(FactorState::Live)
}

fn branch_one(f: &Formula, negated: bool, out: &mut Vec<RawAtom>) -> Option<FactorState> {
    match (f, negated) {
        (Formula::True, false) | (Formula::False, true) => return Some(FactorState::True),
        (Formula::False, false) | (Formula::True, true) => {}
        (Formula::Not(inner), n) => return branch_one(inner, !n, out),
        (Formula::Cmp { lhs, op, rhs }, n) => out.push(raw_atom(lhs, *op, rhs, n)?),
        (Formula::Or(parts), false) | (Formula::And(parts), true) => {
            return collect_branches(parts, negated, out);
        }
        // A conjunction nested inside a disjunction: the flat
        // factor/branch form cannot express it — refuse.
        (Formula::And(_), false) | (Formula::Or(_), true) => return None,
    }
    Some(FactorState::Live)
}

/// A plain operand, or `None` for arithmetic terms (the solver's
/// arithmetic lowering is out of the replicated fragment).
fn raw_operand(t: &Term) -> Option<RawOperand> {
    match t {
        Term::Const(v) => Some(RawOperand::Const(v.clone())),
        Term::Var(vid) => Some(RawOperand::Var(vid.clone())),
        _ => None,
    }
}

fn raw_atom(lhs: &Term, op: CmpOp, rhs: &Term, negated: bool) -> Option<RawAtom> {
    let lhs = raw_operand(lhs)?;
    let rhs = raw_operand(rhs)?;
    let op = if negated { op.negate() } else { op };
    if let (RawOperand::Var(a), RawOperand::Var(b)) = (&lhs, &rhs) {
        // Variable-variable joins are only decidable after user-input
        // substitution; keep the atom when a side can still resolve to
        // a constant at check time, refuse otherwise.
        let resolvable =
            matches!(a, VarId::UserInput { .. }) || matches!(b, VarId::UserInput { .. });
        if !resolvable {
            return None;
        }
    }
    Some(RawAtom { lhs, op, rhs })
}

/// The solver's `symbolic_const`: the interned spelling of a symbolic
/// constant (`None` for numbers).
fn symbolic_const(v: &Value) -> Option<&str> {
    match v {
        Value::Sym(s) => Some(s),
        Value::Bool(true) => Some("true"),
        Value::Bool(false) => Some("false"),
        Value::Null => Some(NULL_SYM),
        Value::Num(_) => None,
    }
}

// ---------------------------------------------------------------------
// Check-time evaluation
// ---------------------------------------------------------------------

/// A check-time operand after user-value substitution.
#[derive(Clone)]
enum ROp<'a> {
    Var(&'a VarId, &'a DomSpec),
    Const(&'a Value),
}

/// A check-time atom that survived constant folding.
struct RAtom<'a> {
    lhs: ROp<'a>,
    op: CmpOp,
    rhs: ROp<'a>,
}

/// Register state accumulated during the constant scan.
struct Reg<'a> {
    spec: &'a DomSpec,
    mentions: BTreeSet<SymId>,
    sym_typed: bool,
}

/// Term type in the solver's lowered fragment.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Ty {
    Num,
    Sym,
}

/// A fully typed, register-indexed atom ready for evaluation.
struct CAtom {
    var: usize,
    op: CmpOp,
    val: CVal,
    var_on_left: bool,
}

enum CVal {
    Num(i64),
    Sym(SymId),
}

enum Folded {
    Live,
    False,
}

enum Fold {
    Atom(CAtom),
    True,
    False,
}

enum Prop {
    Narrowed,
    Stable,
    Conflict,
    Refuse,
}

enum BranchResult {
    Sat(Vec<Dom>),
    Unsat,
    Refused,
}

/// Decides whether two lowered programs overlap, exactly as
/// `OverlapSolver::solve(&[f1, f2])` would on the source formulas.
///
/// Returns `None` to refuse — the caller must fall back to the solver.
/// A `Some` answer is bit-identical to the solver's, including the
/// satisfying witness of a `Sat` outcome.
pub(crate) fn check_pair(
    a: &LoweredProgram,
    b: &LoweredProgram,
    solver: &OverlapSolver,
) -> Option<Outcome> {
    // Phase 1 — substitute collected user values and fold constant
    // atoms, mirroring `Formula::substitute` + the `and`/`or` smart
    // constructors: a true branch drops its whole disjunct (siblings
    // are never scanned), a false conjunct collapses the formula.
    let mut factors: Vec<Vec<RAtom>> = Vec::new();
    for prog in [a, b] {
        match fold_program(prog, solver, &mut factors)? {
            Folded::Live => {}
            Folded::False => return Some(Outcome::Unsat),
        }
    }

    // Phase 2 — register file over the surviving atoms of both
    // programs, keyed in sorted `VarId` order like `merged.variables()`.
    let mut regs: BTreeMap<&VarId, Reg> = BTreeMap::new();
    for atom in factors.iter().flatten() {
        for side in [&atom.lhs, &atom.rhs] {
            if let ROp::Var(vid, spec) = side {
                regs.entry(vid).or_insert_with(|| Reg {
                    spec,
                    mentions: BTreeSet::new(),
                    sym_typed: false,
                });
            }
        }
    }

    // Phase 3 — symbol-intern replay. Declared enum domains intern
    // first (declaration order, variables in sorted order), then every
    // symbolic constant in formula-traversal order, then the solver's
    // catch-all OTHER symbol iff an undeclared variable is sym-typed.
    let mut syms = SymTable::new();
    for reg in regs.values() {
        match reg.spec {
            DomSpec::Enum(values) => {
                for v in values {
                    syms.intern(v);
                }
            }
            DomSpec::Modes => {
                for m in solver.modes() {
                    syms.intern(m);
                }
            }
            DomSpec::Int { .. } | DomSpec::Free => {}
        }
    }
    for atom in factors.iter().flatten() {
        for (side, other) in [(&atom.lhs, &atom.rhs), (&atom.rhs, &atom.lhs)] {
            if let ROp::Const(v) = side {
                if let Some(name) = symbolic_const(v) {
                    let id = syms.intern(name);
                    if let ROp::Var(vid, _) = other {
                        if let Some(reg) = regs.get_mut(*vid) {
                            reg.mentions.insert(id);
                            reg.sym_typed = true;
                        }
                    }
                }
            }
        }
    }
    let has_free_sym = regs
        .values()
        .any(|r| matches!(r.spec, DomSpec::Free) && r.sym_typed);
    if has_free_sym {
        syms.intern(OTHER_SYM);
    }

    // Phase 4 — initial domains and types per register, in order.
    let index: BTreeMap<&VarId, usize> = regs.keys().enumerate().map(|(i, k)| (*k, i)).collect();
    let mut types = Vec::with_capacity(regs.len());
    let mut init = Vec::with_capacity(regs.len());
    for reg in regs.values() {
        let (ty, dom) = match reg.spec {
            DomSpec::Int { lo, hi } => (Ty::Num, Dom::Int { lo: *lo, hi: *hi }),
            DomSpec::Enum(values) => (
                Ty::Sym,
                Dom::Enum(values.iter().map(|v| syms.intern(v)).collect()),
            ),
            DomSpec::Modes => (
                Ty::Sym,
                Dom::Enum(solver.modes().iter().map(|m| syms.intern(m)).collect()),
            ),
            DomSpec::Free => {
                if reg.sym_typed {
                    let mut set = reg.mentions.clone();
                    set.insert(syms.intern(OTHER_SYM));
                    (Ty::Sym, Dom::Enum(set))
                } else {
                    (Ty::Num, Dom::default_int())
                }
            }
        };
        types.push(ty);
        init.push(dom);
    }

    // Phase 5 — type folding, the solver's `lower_atom` rules: ordered
    // symbol comparisons are false, mixed-type `!=` is true, any other
    // mixed-type comparison is false. Registered variables of folded
    // atoms stay registered (they were scanned), matching the solver.
    let mut checked: Vec<Vec<CAtom>> = Vec::new();
    'factors: for factor in &factors {
        let mut branches = Vec::with_capacity(factor.len());
        for atom in factor {
            match fold_types(atom, &types, &index, &mut syms)? {
                Fold::True => continue 'factors,
                Fold::False => {}
                Fold::Atom(c) => branches.push(c),
            }
        }
        if branches.is_empty() {
            return Some(Outcome::Unsat);
        }
        checked.push(branches);
    }

    // Phase 6 — DNF branch enumeration in the solver's order: the first
    // factor varies slowest, branches within a factor stay in formula
    // order, and the first satisfiable branch supplies the witness.
    let counts: Vec<usize> = checked.iter().map(Vec::len).collect();
    let mut pick = vec![0usize; checked.len()];
    loop {
        let branch: Vec<&CAtom> = checked.iter().zip(&pick).map(|(f, i)| &f[*i]).collect();
        match eval_branch(&branch, &init) {
            BranchResult::Refused => return None,
            BranchResult::Sat(doms) => {
                let mut witness = Assignment::new();
                for (vid, dom) in regs.keys().zip(&doms) {
                    let value = match dom {
                        Dom::Int { lo, .. } => Value::Num(*lo),
                        Dom::Enum(set) => match set.iter().next() {
                            Some(id) => {
                                let name = syms.name(*id);
                                if name == OTHER_SYM {
                                    Value::Sym("<any other value>".to_string())
                                } else {
                                    Value::Sym(name.to_string())
                                }
                            }
                            None => Value::Null,
                        },
                    };
                    witness.insert((*vid).clone(), value);
                }
                return Some(Outcome::Sat(witness));
            }
            BranchResult::Unsat => {}
        }
        let mut k = checked.len();
        loop {
            if k == 0 {
                return Some(Outcome::Unsat);
            }
            k -= 1;
            pick[k] += 1;
            if pick[k] < counts[k] {
                break;
            }
            pick[k] = 0;
        }
    }
}

/// Substitutes and constant-folds one program's factors into `out`.
fn fold_program<'a>(
    prog: &'a LoweredProgram,
    solver: &'a OverlapSolver,
    out: &mut Vec<Vec<RAtom<'a>>>,
) -> Option<Folded> {
    'factors: for factor in &prog.factors {
        let mut live = Vec::with_capacity(factor.branches.len());
        for atom in &factor.branches {
            let lhs = resolve(&atom.lhs, prog, solver);
            let rhs = resolve(&atom.rhs, prog, solver);
            if let (ROp::Const(x), ROp::Const(y)) = (&lhs, &rhs) {
                match eval_const_cmp(x, atom.op, y) {
                    Some(true) => continue 'factors,
                    Some(false) => continue,
                    // Undecided constant pairs survive to the scan (their
                    // symbols intern) and type-fold away afterwards.
                    None => {}
                }
            } else if matches!((&lhs, &rhs), (ROp::Var(..), ROp::Var(..))) {
                // An unresolved variable-variable join: refuse.
                return None;
            }
            live.push(RAtom {
                lhs,
                op: atom.op,
                rhs,
            });
        }
        if live.is_empty() {
            return Some(Folded::False);
        }
        out.push(live);
    }
    Some(Folded::Live)
}

fn resolve<'a>(op: &'a Operand, prog: &'a LoweredProgram, solver: &'a OverlapSolver) -> ROp<'a> {
    match op {
        Operand::Const(v) => ROp::Const(v),
        Operand::Var(idx) => {
            let (vid, spec) = &prog.vars[*idx];
            if let VarId::UserInput { app, name } = vid {
                if let Some(v) = solver.user_value(app, name) {
                    return ROp::Const(v);
                }
            }
            ROp::Var(vid, spec)
        }
    }
}

fn operand_ty(op: &ROp<'_>, types: &[Ty], index: &BTreeMap<&VarId, usize>) -> Option<Ty> {
    match op {
        ROp::Const(Value::Num(_)) => Some(Ty::Num),
        ROp::Const(_) => Some(Ty::Sym),
        ROp::Var(vid, _) => index.get(*vid).map(|i| types[*i]),
    }
}

fn fold_types(
    atom: &RAtom<'_>,
    types: &[Ty],
    index: &BTreeMap<&VarId, usize>,
    syms: &mut SymTable,
) -> Option<Fold> {
    let lty = operand_ty(&atom.lhs, types, index)?;
    let rty = operand_ty(&atom.rhs, types, index)?;
    let ordered = !matches!(atom.op, CmpOp::Eq | CmpOp::Ne);
    match (lty, rty) {
        (Ty::Sym, Ty::Sym) if ordered => return Some(Fold::False),
        (Ty::Num, Ty::Num) | (Ty::Sym, Ty::Sym) => {}
        // Mixed types: `!=` trivially holds, everything else fails.
        _ if atom.op == CmpOp::Ne => return Some(Fold::True),
        _ => return Some(Fold::False),
    }
    let (vid, val, var_on_left) = match (&atom.lhs, &atom.rhs) {
        (ROp::Var(v, _), ROp::Const(c)) => (v, c, true),
        (ROp::Const(c), ROp::Var(v, _)) => (v, c, false),
        // Same-type constant pairs fold in phase 1 and variable pairs
        // are refused there; anything else here is a shape the
        // evaluator does not model — refuse rather than guess.
        _ => return None,
    };
    let val = match val {
        Value::Num(n) => CVal::Num(*n),
        other => CVal::Sym(syms.intern(symbolic_const(other)?)),
    };
    Some(Fold::Atom(CAtom {
        var: *index.get(*vid)?,
        op: atom.op,
        val,
        var_on_left,
    }))
}

/// Runs one DNF branch: propagate every atom to the fixpoint, then
/// require every atom to be entailed — exactly the solver's `dfs` with
/// branching replaced by refusal.
fn eval_branch(atoms: &[&CAtom], init: &[Dom]) -> BranchResult {
    let mut doms = init.to_vec();
    loop {
        let mut changed = false;
        for atom in atoms {
            match propagate(atom, &mut doms) {
                Prop::Conflict => return BranchResult::Unsat,
                Prop::Refuse => return BranchResult::Refused,
                Prop::Narrowed => changed = true,
                Prop::Stable => {}
            }
        }
        if !changed {
            break;
        }
    }
    for atom in atoms {
        match entail(atom, &doms) {
            Some(true) => {}
            Some(false) => return BranchResult::Unsat,
            // The solver would branch on a variable here.
            None => return BranchResult::Refused,
        }
    }
    BranchResult::Sat(doms)
}

/// HC4-style narrowing for a variable-vs-constant atom, matching the
/// solver's `propagate_numeric`/`propagate_enum` case for case.
fn propagate(atom: &CAtom, doms: &mut [Dom]) -> Prop {
    match (&mut doms[atom.var], &atom.val) {
        (Dom::Int { lo, hi }, CVal::Num(c)) => {
            let c = *c;
            let op = if atom.var_on_left {
                atom.op
            } else {
                atom.op.flip()
            };
            match op {
                CmpOp::Eq => {
                    if c < *lo || c > *hi {
                        Prop::Conflict
                    } else if *lo == c && *hi == c {
                        Prop::Stable
                    } else {
                        *lo = c;
                        *hi = c;
                        Prop::Narrowed
                    }
                }
                CmpOp::Ne => {
                    if *lo == c && *hi == c {
                        Prop::Conflict
                    } else {
                        Prop::Stable
                    }
                }
                CmpOp::Le => {
                    if *lo > c {
                        Prop::Conflict
                    } else if *hi > c {
                        *hi = c;
                        Prop::Narrowed
                    } else {
                        Prop::Stable
                    }
                }
                CmpOp::Lt => {
                    if *lo >= c {
                        Prop::Conflict
                    } else if *hi >= c {
                        *hi = c - 1;
                        Prop::Narrowed
                    } else {
                        Prop::Stable
                    }
                }
                CmpOp::Ge => {
                    if *hi < c {
                        Prop::Conflict
                    } else if *lo < c {
                        *lo = c;
                        Prop::Narrowed
                    } else {
                        Prop::Stable
                    }
                }
                CmpOp::Gt => {
                    if *hi <= c {
                        Prop::Conflict
                    } else if *lo <= c {
                        *lo = c + 1;
                        Prop::Narrowed
                    } else {
                        Prop::Stable
                    }
                }
            }
        }
        (Dom::Enum(set), CVal::Sym(s)) => match atom.op {
            CmpOp::Eq => {
                if !set.contains(s) {
                    Prop::Conflict
                } else if set.len() == 1 {
                    Prop::Stable
                } else {
                    let s = *s;
                    set.clear();
                    set.insert(s);
                    Prop::Narrowed
                }
            }
            CmpOp::Ne => {
                if set.remove(s) {
                    if set.is_empty() {
                        Prop::Conflict
                    } else {
                        Prop::Narrowed
                    }
                } else {
                    Prop::Stable
                }
            }
            // Ordered symbol comparisons fold to false before
            // evaluation; the solver's propagator ignores them too.
            _ => Prop::Stable,
        },
        // A domain/constant type mismatch cannot survive type folding;
        // refuse defensively rather than guess.
        _ => Prop::Refuse,
    }
}

/// The solver's `atom_entailed`/`enum_entailed` on a variable-vs-constant
/// atom: `Some(true)` entailed, `Some(false)` refuted, `None` when the
/// solver would have to branch.
fn entail(atom: &CAtom, doms: &[Dom]) -> Option<bool> {
    match (&doms[atom.var], &atom.val) {
        (Dom::Int { lo, hi }, CVal::Num(c)) => {
            let (lo, hi, c) = (*lo, *hi, *c);
            let op = if atom.var_on_left {
                atom.op
            } else {
                atom.op.flip()
            };
            match op {
                CmpOp::Lt => {
                    if hi < c {
                        Some(true)
                    } else if lo >= c {
                        Some(false)
                    } else {
                        None
                    }
                }
                CmpOp::Le => {
                    if hi <= c {
                        Some(true)
                    } else if lo > c {
                        Some(false)
                    } else {
                        None
                    }
                }
                CmpOp::Gt => {
                    if lo > c {
                        Some(true)
                    } else if hi <= c {
                        Some(false)
                    } else {
                        None
                    }
                }
                CmpOp::Ge => {
                    if lo >= c {
                        Some(true)
                    } else if hi < c {
                        Some(false)
                    } else {
                        None
                    }
                }
                CmpOp::Eq => {
                    if lo == hi {
                        Some(lo == c)
                    } else if hi < c || c < lo {
                        Some(false)
                    } else {
                        None
                    }
                }
                CmpOp::Ne => {
                    if hi < c || c < lo {
                        Some(true)
                    } else if lo == hi {
                        Some(lo != c)
                    } else {
                        None
                    }
                }
            }
        }
        (Dom::Enum(set), CVal::Sym(s)) => match atom.op {
            CmpOp::Eq => {
                if set.len() == 1 && set.contains(s) {
                    Some(true)
                } else if !set.contains(s) {
                    Some(false)
                } else {
                    None
                }
            }
            CmpOp::Ne => {
                if !set.contains(s) {
                    Some(true)
                } else if set.len() == 1 {
                    Some(false)
                } else {
                    None
                }
            }
            _ => Some(false),
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hg_capability::device_kind::DeviceKind;
    use hg_rules::varid::DeviceRef;

    fn solver() -> OverlapSolver {
        OverlapSolver::default()
    }

    fn temp() -> Term {
        Term::var(VarId::env("temperature"))
    }

    fn mode() -> Term {
        Term::var(VarId::Mode)
    }

    fn switch(dev: &str) -> Term {
        Term::var(VarId::device_attr(DeviceRef::bound(dev), "switch"))
    }

    fn state(app: &str, name: &str) -> Term {
        Term::var(VarId::State {
            app: app.into(),
            name: name.into(),
        })
    }

    fn input(app: &str, name: &str) -> Term {
        Term::var(VarId::UserInput {
            app: app.into(),
            name: name.into(),
        })
    }

    fn cmp(l: Term, op: CmpOp, r: Term) -> Formula {
        Formula::cmp(l, op, r)
    }

    /// Asserts the lowered tier answers and agrees with the solver
    /// bit-for-bit (outcome and witness).
    fn assert_lowered_matches(s: &OverlapSolver, f1: &Formula, f2: &Formula) -> Outcome {
        let p1 = LoweredProgram::compile(f1).expect("f1 compiles");
        let p2 = LoweredProgram::compile(f2).expect("f2 compiles");
        let lowered = check_pair(&p1, &p2, s).expect("lowered tier decides");
        let reference = s.solve(&[f1, f2]);
        assert_eq!(lowered, reference, "lowered vs solver for {f1} ∧ {f2}");
        lowered
    }

    /// Asserts the pair compiles but the evaluator refuses, and that the
    /// solver still decides it (the fallback the refusal relies on).
    fn assert_refused(s: &OverlapSolver, f1: &Formula, f2: &Formula) {
        let p1 = LoweredProgram::compile(f1).expect("f1 compiles");
        let p2 = LoweredProgram::compile(f2).expect("f2 compiles");
        assert!(
            check_pair(&p1, &p2, s).is_none(),
            "expected refusal for {f1} ∧ {f2}"
        );
        assert_ne!(s.solve(&[f1, f2]), Outcome::Unknown);
    }

    #[test]
    fn closed_interval_endpoints_touch() {
        let s = solver();
        // temp >= 20 ∧ temp <= 30 vs temp >= 30: closed endpoints touch.
        let f1 = Formula::and([
            cmp(temp(), CmpOp::Ge, Term::num(scaled(20))),
            cmp(temp(), CmpOp::Le, Term::num(scaled(30))),
        ]);
        let f2 = cmp(temp(), CmpOp::Ge, Term::num(scaled(30)));
        let out = assert_lowered_matches(&s, &f1, &f2);
        assert!(matches!(out, Outcome::Sat(_)));
    }

    #[test]
    fn open_interval_endpoints_separate() {
        let s = solver();
        // temp < 30 vs temp > 30 and the half-open boundary cases.
        let lt = cmp(temp(), CmpOp::Lt, Term::num(scaled(30)));
        let gt = cmp(temp(), CmpOp::Gt, Term::num(scaled(30)));
        let ge = cmp(temp(), CmpOp::Ge, Term::num(scaled(30)));
        let le = cmp(temp(), CmpOp::Le, Term::num(scaled(30)));
        assert_eq!(assert_lowered_matches(&s, &lt, &gt), Outcome::Unsat);
        assert_eq!(assert_lowered_matches(&s, &lt, &ge), Outcome::Unsat);
        assert!(matches!(
            assert_lowered_matches(&s, &le, &ge),
            Outcome::Sat(_)
        ));
    }

    #[test]
    fn constant_on_the_left_mirrors() {
        let s = solver();
        // 30 < temp is temp > 30; exercise the flipped-operand paths.
        let f1 = cmp(Term::num(scaled(30)), CmpOp::Lt, temp());
        let f2 = cmp(Term::num(scaled(50)), CmpOp::Ge, temp());
        assert!(matches!(
            assert_lowered_matches(&s, &f1, &f2),
            Outcome::Sat(_)
        ));
        let f3 = cmp(Term::num(scaled(20)), CmpOp::Gt, temp());
        assert_eq!(assert_lowered_matches(&s, &f1, &f3), Outcome::Unsat);
    }

    #[test]
    fn equality_join_on_shared_actuator_attribute() {
        let s = solver();
        let f1 = cmp(switch("type:switch/tv"), CmpOp::Eq, Term::sym("on"));
        let f2 = cmp(switch("type:switch/tv"), CmpOp::Eq, Term::sym("off"));
        let f3 = cmp(switch("type:switch/tv"), CmpOp::Ne, Term::sym("off"));
        assert_eq!(assert_lowered_matches(&s, &f1, &f2), Outcome::Unsat);
        assert!(matches!(
            assert_lowered_matches(&s, &f1, &f3),
            Outcome::Sat(_)
        ));
        // Distinct devices do not unify: both constraints are free.
        let f4 = cmp(switch("type:switch/light"), CmpOp::Eq, Term::sym("off"));
        assert!(matches!(
            assert_lowered_matches(&s, &f1, &f4),
            Outcome::Sat(_)
        ));
    }

    #[test]
    fn mode_membership_interacts() {
        let s = solver();
        let away = cmp(mode(), CmpOp::Eq, Term::sym("Away"));
        let home = cmp(mode(), CmpOp::Eq, Term::sym("Home"));
        let not_home = cmp(mode(), CmpOp::Ne, Term::sym("Home"));
        assert_eq!(assert_lowered_matches(&s, &away, &home), Outcome::Unsat);
        assert!(matches!(
            assert_lowered_matches(&s, &away, &not_home),
            Outcome::Sat(_)
        ));
        // A mode outside the home's list is unsatisfiable.
        let vacation = cmp(mode(), CmpOp::Eq, Term::sym("Vacation"));
        assert_eq!(
            assert_lowered_matches(&s, &vacation, &not_home),
            Outcome::Unsat
        );
    }

    #[test]
    fn mode_disjunction_follows_branch_order() {
        let s = solver();
        let f1 = Formula::or([
            cmp(mode(), CmpOp::Eq, Term::sym("Home")),
            cmp(mode(), CmpOp::Eq, Term::sym("Away")),
        ]);
        let f2 = cmp(mode(), CmpOp::Eq, Term::sym("Away"));
        // The first branch (Home) conflicts; the second must supply the
        // same witness the solver's DNF order produces.
        assert!(matches!(
            assert_lowered_matches(&s, &f1, &f2),
            Outcome::Sat(_)
        ));
        let f3 = cmp(mode(), CmpOp::Eq, Term::sym("Night"));
        assert_eq!(assert_lowered_matches(&s, &f1, &f3), Outcome::Unsat);
    }

    #[test]
    fn boolean_literals_type_as_symbols() {
        let s = solver();
        let f1 = cmp(
            state("A", "armed"),
            CmpOp::Eq,
            Term::Const(Value::Bool(true)),
        );
        let f2 = cmp(
            state("A", "armed"),
            CmpOp::Eq,
            Term::Const(Value::Bool(false)),
        );
        assert_eq!(assert_lowered_matches(&s, &f1, &f2), Outcome::Unsat);
        assert!(matches!(
            assert_lowered_matches(&s, &f1, &f1),
            Outcome::Sat(_)
        ));
    }

    #[test]
    fn null_tests_use_the_null_symbol() {
        let s = solver();
        let is_null = cmp(state("A", "last"), CmpOp::Eq, Term::Const(Value::Null));
        let not_null = cmp(state("A", "last"), CmpOp::Ne, Term::Const(Value::Null));
        assert_eq!(
            assert_lowered_matches(&s, &is_null, &not_null),
            Outcome::Unsat
        );
        assert!(matches!(
            assert_lowered_matches(&s, &is_null, &is_null),
            Outcome::Sat(_)
        ));
    }

    #[test]
    fn cross_type_comparisons_fold() {
        let s = solver();
        // env.temperature is declared numeric; comparing to a symbol is
        // a type clash the solver folds — equality fails, `!=` holds.
        let clash_eq = cmp(temp(), CmpOp::Eq, Term::sym("hot"));
        let anything = cmp(temp(), CmpOp::Ge, Term::num(scaled(0)));
        assert_eq!(
            assert_lowered_matches(&s, &clash_eq, &anything),
            Outcome::Unsat
        );
        let clash_ne = cmp(temp(), CmpOp::Ne, Term::sym("hot"));
        assert!(matches!(
            assert_lowered_matches(&s, &clash_ne, &anything),
            Outcome::Sat(_)
        ));
    }

    #[test]
    fn unification_renamed_variables_share_registers() {
        let s = solver();
        // Two rules whose slots unified by type resolve to the same
        // synthetic bound id — their atoms must hit one register.
        let dev = "type:lock/door";
        let f1 = cmp(
            Term::var(VarId::device_attr(DeviceRef::bound(dev), "lock")),
            CmpOp::Eq,
            Term::sym("locked"),
        );
        let f2 = cmp(
            Term::var(VarId::device_attr(DeviceRef::bound(dev), "lock")),
            CmpOp::Eq,
            Term::sym("unlocked"),
        );
        assert_eq!(assert_lowered_matches(&s, &f1, &f2), Outcome::Unsat);
    }

    #[test]
    fn time_windows_overlap_exactly() {
        let s = solver();
        let tod = Term::var(VarId::TimeOfDay);
        let night = Formula::and([
            cmp(tod.clone(), CmpOp::Ge, Term::num(scaled(22 * 60))),
            cmp(tod.clone(), CmpOp::Le, Term::num(scaled(23 * 60))),
        ]);
        let evening = Formula::and([
            cmp(tod.clone(), CmpOp::Ge, Term::num(scaled(18 * 60))),
            cmp(tod.clone(), CmpOp::Lt, Term::num(scaled(22 * 60))),
        ]);
        assert_eq!(assert_lowered_matches(&s, &night, &evening), Outcome::Unsat);
        let late = cmp(tod, CmpOp::Gt, Term::num(scaled(22 * 60)));
        assert!(matches!(
            assert_lowered_matches(&s, &night, &late),
            Outcome::Sat(_)
        ));
    }

    #[test]
    fn resolved_user_inputs_decide() {
        let mut s = solver();
        s.set_user_value("A", "threshold", Value::Num(scaled(25)));
        let f1 = cmp(temp(), CmpOp::Gt, input("A", "threshold"));
        let f2 = cmp(temp(), CmpOp::Lt, Term::num(scaled(20)));
        assert_eq!(assert_lowered_matches(&s, &f1, &f2), Outcome::Unsat);
        let f3 = cmp(temp(), CmpOp::Gt, Term::num(scaled(20)));
        assert!(matches!(
            assert_lowered_matches(&s, &f1, &f3),
            Outcome::Sat(_)
        ));
    }

    #[test]
    fn unresolved_user_input_refuses_at_check_time() {
        let s = solver();
        // Compiles (the input side could resolve), but with no collected
        // value the join is variable-variable: refuse, don't guess.
        let f1 = cmp(temp(), CmpOp::Gt, input("A", "threshold"));
        let f2 = cmp(temp(), CmpOp::Lt, Term::num(scaled(20)));
        assert_refused(&s, &f1, &f2);
    }

    #[test]
    fn interior_numeric_ne_refuses_where_solver_branches() {
        let s = solver();
        let f1 = Formula::and([
            cmp(temp(), CmpOp::Ge, Term::num(scaled(20))),
            cmp(temp(), CmpOp::Le, Term::num(scaled(30))),
        ]);
        let f2 = cmp(temp(), CmpOp::Ne, Term::num(scaled(25)));
        assert_refused(&s, &f1, &f2);
        // At the fixpoint the domain collapses to a point: decidable.
        let point = Formula::and([
            cmp(temp(), CmpOp::Ge, Term::num(scaled(25))),
            cmp(temp(), CmpOp::Le, Term::num(scaled(25))),
        ]);
        assert_eq!(assert_lowered_matches(&s, &point, &f2), Outcome::Unsat);
    }

    #[test]
    fn arithmetic_terms_refuse_at_compile_time() {
        let f = cmp(
            Term::Add(Box::new(temp()), Box::new(Term::num(scaled(5)))),
            CmpOp::Gt,
            Term::num(scaled(30)),
        );
        assert!(LoweredProgram::compile(&f).is_none());
    }

    #[test]
    fn device_to_device_joins_refuse_at_compile_time() {
        let f = cmp(
            switch("type:switch/tv"),
            CmpOp::Eq,
            switch("type:switch/light"),
        );
        assert!(LoweredProgram::compile(&f).is_none());
    }

    #[test]
    fn conjunction_inside_disjunction_refuses() {
        let f = Formula::Or(vec![
            Formula::And(vec![
                cmp(temp(), CmpOp::Ge, Term::num(scaled(20))),
                cmp(temp(), CmpOp::Le, Term::num(scaled(30))),
            ]),
            cmp(temp(), CmpOp::Gt, Term::num(scaled(40))),
        ]);
        assert!(LoweredProgram::compile(&f).is_none());
    }

    #[test]
    fn oversized_branch_products_refuse() {
        // Six two-way disjunctions: 2⁶ = 64 > MAX_BRANCHES.
        let two_way = |n: i64| {
            Formula::or([
                cmp(temp(), CmpOp::Gt, Term::num(scaled(n))),
                cmp(temp(), CmpOp::Lt, Term::num(scaled(-n))),
            ])
        };
        let f = Formula::and((1..=6).map(two_way));
        assert!(LoweredProgram::compile(&f).is_none());
        let small = Formula::and((1..=5).map(two_way));
        assert!(LoweredProgram::compile(&small).is_some());
    }

    #[test]
    fn negation_pushes_through_connectives() {
        let s = solver();
        // ¬(temp < 20 ∨ temp > 30) is the closed interval [20, 30].
        let f1 = Formula::Not(Box::new(Formula::Or(vec![
            cmp(temp(), CmpOp::Lt, Term::num(scaled(20))),
            cmp(temp(), CmpOp::Gt, Term::num(scaled(30))),
        ])));
        let f2 = cmp(temp(), CmpOp::Ge, Term::num(scaled(30)));
        assert!(matches!(
            assert_lowered_matches(&s, &f1, &f2),
            Outcome::Sat(_)
        ));
        let f3 = cmp(temp(), CmpOp::Gt, Term::num(scaled(30)));
        assert_eq!(assert_lowered_matches(&s, &f1, &f3), Outcome::Unsat);
    }

    #[test]
    fn literal_constants_collapse_like_the_solver() {
        let s = solver();
        let f1 = Formula::And(vec![
            Formula::True,
            cmp(temp(), CmpOp::Ge, Term::num(scaled(20))),
        ]);
        let f2 = Formula::True;
        assert!(matches!(
            assert_lowered_matches(&s, &f1, &f2),
            Outcome::Sat(_)
        ));
        let contradiction = Formula::False;
        assert_eq!(
            assert_lowered_matches(&s, &f1, &contradiction),
            Outcome::Unsat
        );
    }

    #[test]
    fn undeclared_text_attribute_gets_the_other_symbol_witness() {
        let s = solver();
        // A free symbolic variable constrained only by `!=` forces the
        // solver's catch-all «other» witness — replicate it exactly.
        let f1 = cmp(state("A", "phase"), CmpOp::Ne, Term::sym("idle"));
        let f2 = cmp(state("A", "phase"), CmpOp::Ne, Term::sym("armed"));
        let out = assert_lowered_matches(&s, &f1, &f2);
        match out {
            Outcome::Sat(w) => {
                let v = w.values().next().expect("one variable");
                assert_eq!(v, &Value::Sym("<any other value>".to_string()));
            }
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn unbound_slot_attributes_use_capability_domains() {
        let s = solver();
        let slot = DeviceRef::Unbound {
            app: "A".into(),
            input: "door".into(),
            capability: "lock".into(),
            kind: DeviceKind::Lock,
        };
        let f1 = cmp(
            Term::var(VarId::device_attr(slot.clone(), "lock")),
            CmpOp::Eq,
            Term::sym("locked"),
        );
        let f2 = cmp(
            Term::var(VarId::device_attr(slot, "lock")),
            CmpOp::Ne,
            Term::sym("locked"),
        );
        assert_eq!(assert_lowered_matches(&s, &f1, &f2), Outcome::Unsat);
    }

    /// A deterministic mini-fuzz over the lowered fragment: every pair
    /// the evaluator answers must match the solver bit-for-bit, and both
    /// answered and refused pairs must occur.
    #[test]
    fn fuzz_lowered_agrees_with_solver() {
        let mut s = solver();
        s.set_user_value("F", "limit", Value::Num(scaled(40)));
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            // SplitMix64, as the integration harnesses use.
            seed = seed.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let ops = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ];
        let modes = ["Home", "Away", "Night", "Vacation"];
        let gen_atom = |r: u64| -> Formula {
            let op = ops[(r % 6) as usize];
            match (r >> 3) % 4 {
                0 => cmp(temp(), op, Term::num(scaled(((r >> 8) % 60) as i64))),
                1 => {
                    let m = modes[((r >> 8) % 4) as usize];
                    let op = if op == CmpOp::Eq {
                        CmpOp::Eq
                    } else {
                        CmpOp::Ne
                    };
                    cmp(mode(), op, Term::sym(m))
                }
                2 => {
                    let v = if (r >> 8).is_multiple_of(2) {
                        "on"
                    } else {
                        "off"
                    };
                    let op = if op == CmpOp::Eq {
                        CmpOp::Eq
                    } else {
                        CmpOp::Ne
                    };
                    cmp(switch("type:switch/tv"), op, Term::sym(v))
                }
                _ => cmp(temp(), op, input("F", "limit")),
            }
        };
        let gen_formula = |next: &mut dyn FnMut() -> u64| -> Formula {
            let r = next();
            match r % 3 {
                0 => gen_atom(r >> 2),
                1 => Formula::and([gen_atom(next() >> 2), gen_atom(next() >> 2)]),
                _ => Formula::or([gen_atom(next() >> 2), gen_atom(next() >> 2)]),
            }
        };
        let (mut answered, mut refused) = (0u32, 0u32);
        for _ in 0..300 {
            let f1 = gen_formula(&mut next);
            let f2 = gen_formula(&mut next);
            let (Some(p1), Some(p2)) = (LoweredProgram::compile(&f1), LoweredProgram::compile(&f2))
            else {
                continue;
            };
            match check_pair(&p1, &p2, &s) {
                Some(lowered) => {
                    answered += 1;
                    assert_eq!(lowered, s.solve(&[&f1, &f2]), "pair: {f1} ∧ {f2}");
                }
                None => refused = refused.saturating_add(1),
            }
        }
        assert!(answered > 100, "fuzz must exercise the lowered tier");
        assert!(refused > 0, "fuzz must exercise refusal");
    }
}
