//! Candidate indexing for incremental detection.
//!
//! The paper's action analysis (the M_AR/M_GC maps, §VI-A1) runs as a cheap
//! per-pair filter inside [`Detector::detect_pair`]: most rule pairs share
//! no actuator, no goal property and no trigger/condition variable, so they
//! are rejected before any constraint solving. For a store serving many
//! homes that per-pair scan is still O(installed) work per new rule. This
//! module lifts the same filter into a persistent *candidate index*: every
//! installed rule is posted under its interaction keys, and a new rule only
//! visits the rules it collides with.
//!
//! The index is a strict over-approximation of the per-pair filters — a
//! pair the index prunes can never produce a threat (the differential test
//! in `tests/differential.rs` asserts exactly that over the whole corpus) —
//! so indexed incremental detection reports the identical threat set while
//! skipping most pair visits.

use crate::engine::{action_kind, direct_effects, Detector};
use crate::lowering::LoweredProgram;
use crate::overlap::Unification;
use hg_capability::domains::EnvProperty;
use hg_rules::constraint::Formula;
use hg_rules::rule::{ActionSubject, Rule};
use hg_rules::varid::{DeviceRef, VarId};
use std::collections::{BTreeMap, BTreeSet};
use std::hash::Hash;

/// A rule prepared for repeated detection: unified once against the home's
/// device-resolution policy, with its interaction facets precomputed.
///
/// Preparing once per installed rule (instead of re-unifying on every pair
/// visit, as the naive pipeline does) is what makes solver sessions
/// reusable across candidates.
#[derive(Debug, Clone)]
pub struct PreparedRule {
    /// The rule as extracted (pre-unification); Goal Conflict analysis and
    /// user-facing slot names need this form.
    pub orig: Rule,
    /// The rule with every device slot resolved per the home's unification.
    pub unified: Rule,
    pub(crate) facets: Facets,
    /// 128-bit content fingerprint of `(orig, unified)` — one component
    /// of a [`VerdictCache`](crate::VerdictCache) pair key. Everything a
    /// pair verdict reads from this rule (formulas, actions, identity,
    /// how its slots resolved) is folded in, so equal fingerprints mean
    /// the rule contributes identically to any pair it joins.
    fingerprint: u128,
    /// The [`VarId::UserInput`] variables the unified rule's formulas and
    /// action parameters reference — the only configuration the overlap
    /// solver can substitute for this rule, and therefore the only
    /// configuration a pair key needs to fold in.
    user_inputs: BTreeSet<VarId>,
    /// The unified rule's [`Rule::situation`] conjunction, built once at
    /// preparation instead of re-cloned on every pair visit (the
    /// Actuator-Race overlap solve reads it for every candidate pair).
    situation: Formula,
    /// `situation` compiled to a lowered pair-check program, when its
    /// shape is classifiable (see [`crate::lowering`]); `None` means every
    /// overlap question over this rule's situation uses the full solver.
    lowered_situation: Option<LoweredProgram>,
    /// The unified condition predicate compiled likewise, for the
    /// Enabling/Disabling-Condition overlap solves.
    lowered_condition: Option<LoweredProgram>,
}

impl PreparedRule {
    /// Unifies `rule` and computes its interaction facets.
    pub fn prepare(rule: &Rule, unification: &Unification) -> PreparedRule {
        let unified = unification.unify_rule(rule);
        let facets = Facets::of(rule, &unified);
        let fingerprint = crate::verdict_cache::fingerprint128(|h| {
            rule.hash(h);
            unified.hash(h);
        });
        let mut user_inputs = BTreeSet::new();
        collect_user_inputs(&unified, &mut user_inputs);
        let situation = unified.situation();
        let lowered_situation = LoweredProgram::compile(&situation);
        let lowered_condition = LoweredProgram::compile(&unified.condition.predicate);
        PreparedRule {
            orig: rule.clone(),
            unified,
            facets,
            fingerprint,
            user_inputs,
            situation,
            lowered_situation,
            lowered_condition,
        }
    }

    /// The unified rule's situation conjunction (trigger constraint ∧
    /// condition), precomputed at preparation.
    pub fn situation(&self) -> &Formula {
        &self.situation
    }

    /// The rule's content fingerprint (see the field docs).
    pub fn fingerprint(&self) -> u128 {
        self.fingerprint
    }

    /// The situation conjunction's lowered program, when classifiable.
    pub fn lowered_situation(&self) -> Option<&LoweredProgram> {
        self.lowered_situation.as_ref()
    }

    /// The condition predicate's lowered program, when classifiable.
    pub fn lowered_condition(&self) -> Option<&LoweredProgram> {
        self.lowered_condition.as_ref()
    }

    /// The user-input variables the rule's solver-visible formulas
    /// reference (sorted).
    pub fn user_inputs(&self) -> impl Iterator<Item = &VarId> {
        self.user_inputs.iter()
    }

    /// Canonical identities of the actuators the rule commands — the index
    /// keys runtime mediation points are compiled against (AR/SD/LT).
    pub fn actuator_keys(&self) -> impl Iterator<Item = &str> {
        self.facets.actuators.iter().map(String::as_str)
    }

    /// Environment properties the rule's actions can move (GC).
    pub fn goal_properties(&self) -> impl Iterator<Item = EnvProperty> + '_ {
        self.facets.goal_props.iter().copied()
    }

    /// World variables the rule's actions write (CT/EC/DC source side).
    pub fn written_vars(&self) -> impl Iterator<Item = &VarId> {
        self.facets.writes.iter()
    }

    /// World variables the rule observes (trigger + condition variables).
    pub fn read_vars(&self) -> impl Iterator<Item = &VarId> {
        self.facets.reads.iter()
    }

    /// The canonical variable the rule's trigger observes, post-unification.
    pub fn trigger_var(&self) -> Option<VarId> {
        self.unified.trigger.observed_var()
    }
}

/// The interaction keys of one rule, split by the role they play in a pair.
#[derive(Debug, Clone, Default)]
pub(crate) struct Facets {
    /// Canonical identities of the actuators the rule commands (Actuator
    /// Race, and through it Self Disabling / Loop Triggering).
    pub actuators: BTreeSet<String>,
    /// Environment properties the rule's actions can move (Goal Conflict).
    pub goal_props: BTreeSet<EnvProperty>,
    /// World variables the rule's actions write — directly through command
    /// effects, or physically through the goal-effect map (Covert
    /// Triggering and Enabling/Disabling Condition, source side).
    pub writes: BTreeSet<VarId>,
    /// World variables the rule observes: its trigger variable and its
    /// condition variables (CT/EC/DC, target side).
    pub reads: BTreeSet<VarId>,
}

impl Facets {
    fn of(orig: &Rule, unified: &Rule) -> Facets {
        let mut f = Facets::default();
        for action in unified.actuations() {
            f.actuators.insert(actuator_key(&action.subject));
            for (var, _) in direct_effects(action) {
                f.writes.insert(var);
            }
        }
        // Goal effects are keyed on the original (pre-unification) subject,
        // whose input declaration carries the classified device kind.
        for action in orig.actuations() {
            if let Some(kind) = action_kind(action) {
                for fx in kind.goal_effects() {
                    if fx.command == action.command {
                        f.goal_props.insert(fx.property);
                        f.writes.insert(VarId::env(fx.property.name()));
                    }
                }
            }
        }
        if let Some(var) = unified.trigger.observed_var() {
            f.reads.insert(var);
        }
        f.reads.extend(unified.condition.predicate.variables());
        f
    }
}

/// Collects every [`VarId::UserInput`] the overlap solver could substitute
/// while deciding a pair involving `unified`: trigger-constraint and
/// condition variables (everything [`Rule::situation`] conjoins) plus
/// action parameter terms (Covert-Triggering effect formulas embed them).
fn collect_user_inputs(unified: &Rule, out: &mut BTreeSet<VarId>) {
    let mut vars = unified.situation().variables();
    for action in unified.actuations() {
        for param in &action.params {
            param.collect_vars(&mut vars);
        }
    }
    out.extend(
        vars.into_iter()
            .filter(|v| matches!(v, VarId::UserInput { .. })),
    );
}

/// The canonical index identity of an actuation subject: the bound device
/// id once unified, a `slot:` key for unresolved slots, `@mode` for the
/// virtual location-mode actuator. Mediation points (`hg-runtime`) and the
/// candidate index share this keying.
pub fn actuator_key(subject: &ActionSubject) -> String {
    match subject {
        ActionSubject::Device(DeviceRef::Bound { device_id }) => device_id.clone(),
        ActionSubject::Device(DeviceRef::Unbound { app, input, .. }) => {
            format!("slot:{app}/{input}")
        }
        _ => "@mode".to_string(),
    }
}

/// Postings from interaction keys to rule slots.
///
/// A pair `(new, old)` is a candidate iff at least one of:
///
/// * they command a common actuator (AR, SD, LT);
/// * their actions move a common environment property (GC);
/// * one's writes intersect the other's reads, in either direction
///   (CT, EC, DC).
#[derive(Debug, Clone, Default)]
pub struct CandidateIndex {
    by_actuator: BTreeMap<String, Vec<usize>>,
    by_goal_prop: BTreeMap<EnvProperty, Vec<usize>>,
    by_write: BTreeMap<VarId, Vec<usize>>,
    by_read: BTreeMap<VarId, Vec<usize>>,
    len: usize,
}

impl CandidateIndex {
    /// An empty index.
    pub fn new() -> CandidateIndex {
        CandidateIndex::default()
    }

    /// Number of rules posted.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no rule is posted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Posts `rule` under slot `id`.
    pub fn insert(&mut self, id: usize, rule: &PreparedRule) {
        let f = &rule.facets;
        for key in &f.actuators {
            self.by_actuator.entry(key.clone()).or_default().push(id);
        }
        for prop in &f.goal_props {
            self.by_goal_prop.entry(*prop).or_default().push(id);
        }
        for var in &f.writes {
            self.by_write.entry(var.clone()).or_default().push(id);
        }
        for var in &f.reads {
            self.by_read.entry(var.clone()).or_default().push(id);
        }
        self.len += 1;
    }

    /// Unposts `rule` from slot `id` — the retraction half of the index,
    /// what app uninstall and upgrade are built on. The caller must pass
    /// the same prepared rule the slot was [`insert`](Self::insert)ed
    /// under, so every posting is found and removed.
    pub fn remove(&mut self, id: usize, rule: &PreparedRule) {
        let f = &rule.facets;
        for key in &f.actuators {
            unpost(&mut self.by_actuator, key, id);
        }
        for prop in &f.goal_props {
            unpost(&mut self.by_goal_prop, prop, id);
        }
        for var in &f.writes {
            unpost(&mut self.by_write, var, id);
        }
        for var in &f.reads {
            unpost(&mut self.by_read, var, id);
        }
        self.len = self.len.saturating_sub(1);
    }

    /// The slots of every posted rule that can possibly interact with
    /// `rule`, sorted and deduplicated.
    pub fn candidates(&self, rule: &PreparedRule) -> Vec<usize> {
        let mut out = Vec::new();
        self.candidates_into(rule, &mut out);
        out
    }

    /// [`candidates`](Self::candidates) into a caller-owned buffer, so a
    /// sweep over many new rules reuses one allocation (`out` is cleared
    /// first; the result is sorted and deduplicated as before).
    pub fn candidates_into(&self, rule: &PreparedRule, out: &mut Vec<usize>) {
        out.clear();
        let f = &rule.facets;
        for key in &f.actuators {
            if let Some(ids) = self.by_actuator.get(key) {
                out.extend_from_slice(ids);
            }
        }
        for prop in &f.goal_props {
            if let Some(ids) = self.by_goal_prop.get(prop) {
                out.extend_from_slice(ids);
            }
        }
        // New writes can fire or flip posted rules...
        for var in &f.writes {
            if let Some(ids) = self.by_read.get(var) {
                out.extend_from_slice(ids);
            }
        }
        // ...and posted rules' writes can fire or flip the new rule.
        for var in &f.reads {
            if let Some(ids) = self.by_write.get(var) {
                out.extend_from_slice(ids);
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Drops all postings.
    pub fn clear(&mut self) {
        self.by_actuator.clear();
        self.by_goal_prop.clear();
        self.by_write.clear();
        self.by_read.clear();
        self.len = 0;
    }
}

/// Removes one slot id from a posting list, dropping the key when its list
/// empties (so stale keys cannot accumulate over install/uninstall churn).
fn unpost<K: Ord + Clone>(map: &mut BTreeMap<K, Vec<usize>>, key: &K, id: usize) {
    if let Some(ids) = map.get_mut(key) {
        ids.retain(|&posted| posted != id);
        if ids.is_empty() {
            map.remove(key);
        }
    }
}

/// Convenience: prepares a rule with the detector's unification.
pub(crate) fn prepare_with(detector: &Detector, rule: &Rule) -> PreparedRule {
    PreparedRule::prepare(rule, &detector.unification)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hg_capability::device_kind::DeviceKind;
    use hg_rules::constraint::Formula;
    use hg_rules::rule::{Action, Condition, RuleId, Trigger};
    use hg_rules::value::Value;

    fn slot(app: &str, input: &str, cap: &str, kind: DeviceKind) -> DeviceRef {
        DeviceRef::Unbound {
            app: app.into(),
            input: input.into(),
            capability: cap.into(),
            kind,
        }
    }

    fn lamp_rule(app: &str, command: &str) -> Rule {
        let m = slot(app, "m", "motionSensor", DeviceKind::Unknown);
        let lamp = slot(app, "lamp", "switch", DeviceKind::Light);
        Rule {
            id: RuleId::new(app, 0),
            trigger: Trigger::DeviceEvent {
                subject: m,
                attribute: "motion".into(),
                constraint: None,
            },
            condition: Condition {
                data_constraints: vec![],
                predicate: Formula::True,
            },
            actions: vec![Action::device(lamp, command)],
        }
    }

    fn siren_rule(app: &str) -> Rule {
        let d = slot(app, "d", "contactSensor", DeviceKind::Unknown);
        let siren = slot(app, "siren", "alarm", DeviceKind::Siren);
        Rule {
            id: RuleId::new(app, 0),
            trigger: Trigger::DeviceEvent {
                subject: d,
                attribute: "contact".into(),
                constraint: None,
            },
            condition: Condition {
                data_constraints: vec![],
                predicate: Formula::True,
            },
            actions: vec![Action::device(siren, "siren")],
        }
    }

    #[test]
    fn facets_capture_actuators_and_reads() {
        let p = PreparedRule::prepare(&lamp_rule("A", "on"), &Unification::ByType);
        assert!(!p.facets.actuators.is_empty());
        assert!(!p.facets.reads.is_empty(), "trigger var must be read");
        assert!(
            p.facets
                .writes
                .iter()
                .any(|v| matches!(v, VarId::DeviceAttr { .. })),
            "`on` writes the switch attribute: {:?}",
            p.facets.writes
        );
    }

    #[test]
    fn colliding_rules_are_candidates() {
        let u = Unification::ByType;
        let a = PreparedRule::prepare(&lamp_rule("A", "on"), &u);
        let b = PreparedRule::prepare(&lamp_rule("B", "off"), &u);
        let mut index = CandidateIndex::new();
        index.insert(0, &a);
        assert_eq!(index.candidates(&b), vec![0]);
    }

    #[test]
    fn unrelated_rules_are_pruned() {
        let u = Unification::ByType;
        let a = PreparedRule::prepare(&lamp_rule("A", "on"), &u);
        let b = PreparedRule::prepare(&siren_rule("B"), &u);
        let mut index = CandidateIndex::new();
        index.insert(0, &a);
        assert!(
            index.candidates(&b).is_empty(),
            "lamp and siren share nothing"
        );
    }

    #[test]
    fn mode_writers_reach_mode_readers() {
        let writer = Rule {
            id: RuleId::new("W", 0),
            trigger: Trigger::AppTouch,
            condition: Condition {
                data_constraints: vec![],
                predicate: Formula::True,
            },
            actions: vec![Action {
                subject: ActionSubject::LocationMode,
                command: "setLocationMode".into(),
                params: vec![hg_rules::constraint::Term::sym("Home")],
                when_secs: 0,
                period_secs: 0,
            }],
        };
        let reader = Rule {
            id: RuleId::new("R", 0),
            trigger: Trigger::ModeChange { constraint: None },
            condition: Condition {
                data_constraints: vec![],
                predicate: Formula::var_eq(VarId::Mode, Value::sym("Home")),
            },
            actions: vec![Action::device(
                slot("R", "door", "lock", DeviceKind::Lock),
                "unlock",
            )],
        };
        let u = Unification::ByType;
        let mut index = CandidateIndex::new();
        index.insert(0, &PreparedRule::prepare(&reader, &u));
        let cands = index.candidates(&PreparedRule::prepare(&writer, &u));
        assert_eq!(
            cands,
            vec![0],
            "mode write must collide with mode trigger/condition"
        );
    }

    #[test]
    fn remove_unposts_every_facet() {
        let u = Unification::ByType;
        let a = PreparedRule::prepare(&lamp_rule("A", "on"), &u);
        let b = PreparedRule::prepare(&lamp_rule("B", "off"), &u);
        let mut index = CandidateIndex::new();
        index.insert(0, &a);
        index.insert(1, &b);
        assert_eq!(index.candidates(&b), vec![0, 1]);
        index.remove(0, &a);
        assert_eq!(index.len(), 1);
        assert_eq!(
            index.candidates(&b),
            vec![1],
            "slot 0 must vanish from every posting"
        );
        index.remove(1, &b);
        assert!(index.is_empty());
        assert!(index.candidates(&a).is_empty());
    }

    #[test]
    fn clear_empties_postings() {
        let u = Unification::ByType;
        let a = PreparedRule::prepare(&lamp_rule("A", "on"), &u);
        let mut index = CandidateIndex::new();
        index.insert(0, &a);
        index.clear();
        assert!(index.is_empty());
        assert!(index.candidates(&a).is_empty());
    }
}
