//! Detector tests built from the paper's running examples (Figs. 3-5 and
//! the §VIII-B store cases), end-to-end through the symbolic executor.

use hg_detector::{Detector, ThreatKind};
use hg_symexec::{extract, AppAnalysis, ExtractorConfig};

fn analyze(src: &str, name: &str) -> AppAnalysis {
    extract(src, name, &ExtractorConfig::default())
        .unwrap_or_else(|e| panic!("extraction of {name} failed: {e}"))
}

/// Paper Rule 1 (ComfortTV): TV on + hot room → open window.
fn comfort_tv() -> AppAnalysis {
    analyze(
        r#"
definition(name: "ComfortTV")
input "tv1", "capability.switch", title: "Which TV?"
input "tSensor", "capability.temperatureMeasurement"
input "threshold1", "number", title: "Higher than?"
input "window1", "capability.switch", title: "window opener"
def installed() { subscribe(tv1, "switch", onHandler) }
def onHandler(evt) {
    def t = tSensor.currentValue("temperature")
    if ((evt.value == "on") && (t > threshold1)) {
        if (window1.currentSwitch == "off") { window1.on() }
    }
}
"#,
        "ComfortTV",
    )
}

/// Paper Rule 2 (ColdDefender): TV on + rainy → close window.
fn cold_defender() -> AppAnalysis {
    analyze(
        r#"
definition(name: "ColdDefender")
input "tv1", "capability.switch", title: "the TV"
input "wSensor", "capability.waterSensor", title: "rain sensor"
input "window1", "capability.switch", title: "window opener"
def installed() { subscribe(tv1, "switch.on", onTv) }
def onTv(evt) {
    if (wSensor.currentWater == "wet") { window1.off() }
}
"#,
        "ColdDefender",
    )
}

/// Paper Rule 3 (CatchLiveShow): voice message → turn on TV.
fn catch_live_show() -> AppAnalysis {
    analyze(
        r#"
definition(name: "CatchLiveShow")
input "voice", "capability.speechSynthesis", title: "speaker"
input "msgSensor", "capability.contactSensor", title: "message box"
input "tv1", "capability.switch", title: "the TV"
def installed() { subscribe(msgSensor, "contact.open", onMessage) }
def onMessage(evt) { tv1.on() }
"#,
        "CatchLiveShow",
    )
}

/// Paper Rule 4 (BurglarFinder): floor lamp on at midnight + motion → alarm.
fn burglar_finder() -> AppAnalysis {
    analyze(
        r#"
definition(name: "BurglarFinder")
input "floorLamp", "capability.switch", title: "floor lamp"
input "motion1", "capability.motionSensor"
input "siren1", "capability.alarm"
def installed() { subscribe(floorLamp, "switch.on", onLamp) }
def onLamp(evt) {
    if (motion1.currentMotion == "active" && floorLamp.currentSwitch == "on") {
        siren1.siren()
    }
}
"#,
        "BurglarFinder",
    )
}

/// Paper Rule 5 (NightCare): lamp on in sleep mode → turn it off after 5 min.
fn night_care() -> AppAnalysis {
    analyze(
        r#"
definition(name: "NightCare")
input "floorLamp", "capability.switch", title: "floor lamp"
def installed() { subscribe(floorLamp, "switch.on", onLamp) }
def onLamp(evt) {
    if (location.mode == "Night") { runIn(300, lampOff) }
}
def lampOff() { floorLamp.off() }
"#,
        "NightCare",
    )
}

#[test]
fn fig3_actuator_race_comforttv_vs_colddefender() {
    let r1 = comfort_tv();
    let r2 = cold_defender();
    let det = Detector::store_wide();
    let (threats, stats) = det.detect_pair(&r1.rules[0], &r2.rules[0]);
    let ar: Vec<_> = threats
        .iter()
        .filter(|t| t.kind == ThreatKind::ActuatorRace)
        .collect();
    assert_eq!(ar.len(), 1, "threats: {threats:#?}");
    assert!(
        ar[0].witness.is_some(),
        "AR must come with a concrete situation"
    );
    assert!(stats.solves >= 1);
}

#[test]
fn fig4_covert_triggering_catchliveshow_to_comforttv() {
    let r3 = catch_live_show();
    let r1 = comfort_tv();
    let det = Detector::store_wide();
    let (threats, _) = det.detect_pair(&r3.rules[0], &r1.rules[0]);
    // Rule 3 turns on the TV, which triggers Rule 1 (trigger tv.switch==on).
    let ct: Vec<_> = threats
        .iter()
        .filter(|t| t.kind == ThreatKind::CovertTriggering && t.source.app == "CatchLiveShow")
        .collect();
    assert!(!ct.is_empty(), "threats: {threats:#?}");
}

#[test]
fn fig5_disabling_condition_nightcare_vs_burglarfinder() {
    let r5 = night_care();
    let r4 = burglar_finder();
    let det = Detector::store_wide();
    let (threats, _) = det.detect_pair(&r5.rules[0], &r4.rules[0]);
    // NightCare's lamp-off falsifies BurglarFinder's lamp==on condition.
    let dc: Vec<_> = threats
        .iter()
        .filter(|t| t.kind == ThreatKind::DisablingCondition && t.source.app == "NightCare")
        .collect();
    assert!(!dc.is_empty(), "threats: {threats:#?}");
}

#[test]
fn self_disabling_ac_energy_example() {
    // §III-B: R1 turns on AC on motion+heat; R2 turns AC off when power
    // exceeds a threshold. Turning on the AC raises power (env channel),
    // which covertly triggers R2, whose action undoes R1's.
    let r1 = analyze(
        r#"
definition(name: "ItsTooHot")
input "motion1", "capability.motionSensor"
input "tSensor", "capability.temperatureMeasurement"
input "ac", "capability.switch", title: "air conditioner"
def installed() { subscribe(motion1, "motion.active", onMotion) }
def onMotion(evt) {
    if (tSensor.currentTemperature > 30) { ac.on() }
}
"#,
        "ItsTooHot",
    );
    let r2 = analyze(
        r#"
definition(name: "EnergySaver")
input "meter", "capability.powerMeter"
input "ac", "capability.switch", title: "air conditioner"
input "maxPower", "number", title: "watts?"
def installed() { subscribe(meter, "power", onPower) }
def onPower(evt) {
    if (evt.value > maxPower) { ac.off() }
}
"#,
        "EnergySaver",
    );
    let det = Detector::store_wide();
    let (threats, _) = det.detect_pair(&r1.rules[0], &r2.rules[0]);
    assert!(
        threats
            .iter()
            .any(|t| t.kind == ThreatKind::CovertTriggering && t.source.app == "ItsTooHot"),
        "expected env-channel CT, got {threats:#?}"
    );
    assert!(
        threats.iter().any(|t| t.kind == ThreatKind::SelfDisabling),
        "expected SD, got {threats:#?}"
    );
}

#[test]
fn loop_triggering_light_up_the_night() {
    // §III-B LT example: below 30 lux → lights on; above 50 lux → lights
    // off; lights themselves move illuminance.
    let r1 = analyze(
        r#"
definition(name: "LightUpTheNight1")
input "lSensor", "capability.illuminanceMeasurement"
input "lights", "capability.switch", title: "the lights"
def installed() { subscribe(lSensor, "illuminance", onLux) }
def onLux(evt) { if (evt.value < 30) { lights.on() } }
"#,
        "L1",
    );
    let r2 = analyze(
        r#"
definition(name: "LightUpTheNight2")
input "lSensor", "capability.illuminanceMeasurement"
input "lights", "capability.switch", title: "the lights"
def installed() { subscribe(lSensor, "illuminance", onLux) }
def onLux(evt) { if (evt.value > 50) { lights.off() } }
"#,
        "L2",
    );
    let det = Detector::store_wide();
    let (threats, _) = det.detect_pair(&r1.rules[0], &r2.rules[0]);
    assert!(
        threats.iter().any(|t| t.kind == ThreatKind::LoopTriggering),
        "expected LT, got {threats:#?}"
    );
}

#[test]
fn goal_conflict_heater_vs_window() {
    // §III-A GC example: heater on vs window open conflict on temperature.
    let r1 = analyze(
        r#"
definition(name: "WarmMeUp")
input "presence1", "capability.presenceSensor"
input "heater", "capability.switch", title: "space heater"
def installed() { subscribe(presence1, "presence.present", onArrive) }
def onArrive(evt) { heater.on() }
"#,
        "WarmMeUp",
    );
    let r2 = analyze(
        r#"
definition(name: "FreshAir")
input "lSensor", "capability.illuminanceMeasurement"
input "window1", "capability.switch", title: "window opener"
def installed() { subscribe(lSensor, "illuminance", onLux) }
def onLux(evt) { if (evt.value < 10) { window1.on() } }
"#,
        "FreshAir",
    );
    let det = Detector::store_wide();
    let (threats, _) = det.detect_pair(&r1.rules[0], &r2.rules[0]);
    let gc: Vec<_> = threats
        .iter()
        .filter(|t| t.kind == ThreatKind::GoalConflict)
        .collect();
    assert!(!gc.is_empty(), "expected GC, got {threats:#?}");
    assert_eq!(
        gc[0].property,
        Some(hg_capability::domains::EnvProperty::Temperature)
    );
}

#[test]
fn enabling_condition_detected() {
    // R1 locks the door; R2's condition requires the door locked.
    let r1 = analyze(
        r#"
definition(name: "AutoLock")
input "presence1", "capability.presenceSensor"
input "door", "capability.lock", title: "front door"
def installed() { subscribe(presence1, "presence", onLeave) }
def onLeave(evt) { if (evt.value == "not present") { door.lock() } }
"#,
        "AutoLock",
    );
    let r2 = analyze(
        r#"
definition(name: "SecureCam")
input "motion1", "capability.motionSensor"
input "door", "capability.lock", title: "front door"
input "cam", "capability.switch", title: "camera outlet"
def installed() { subscribe(motion1, "motion.active", onMotion) }
def onMotion(evt) {
    if (door.currentLock == "locked") { cam.on() }
}
"#,
        "SecureCam",
    );
    let det = Detector::store_wide();
    let (threats, _) = det.detect_pair(&r1.rules[0], &r2.rules[0]);
    assert!(
        threats
            .iter()
            .any(|t| t.kind == ThreatKind::EnablingCondition && t.source.app == "AutoLock"),
        "expected EC, got {threats:#?}"
    );
}

#[test]
fn no_threats_between_unrelated_apps() {
    let r1 = analyze(
        r#"
definition(name: "PorchLight")
input "s", "capability.contactSensor", title: "porch door"
input "porch", "capability.switch", title: "porch light"
def installed() { subscribe(s, "contact.open", h) }
def h(evt) { porch.on() }
"#,
        "PorchLight",
    );
    let r2 = analyze(
        r#"
definition(name: "LaundryDone")
input "meter", "capability.powerMeter", title: "washer meter"
input "phone1", "phone"
def installed() { subscribe(meter, "power", h) }
def h(evt) { if (evt.value < 5) { sendSms(phone1, "laundry done") } }
"#,
        "LaundryDone",
    );
    let det = Detector::store_wide();
    let (threats, _) = det.detect_pair(&r1.rules[0], &r2.rules[0]);
    // Porch light raises illuminance/power env vars; washer meter reads
    // env.power — a light drawing power *can* covertly feed a power-triggered
    // rule, but LaundryDone's trigger needs a *decrease* (< 5) so no CT.
    // And no actuations in LaundryDone at all.
    assert!(threats.is_empty(), "expected no threats, got {threats:#?}");
}

#[test]
fn same_trigger_same_command_no_race() {
    let mk = |name: &str| {
        analyze(
            &format!(
                r#"
definition(name: "{name}")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() {{ subscribe(m, "motion.active", h) }}
def h(evt) {{ lamp.on() }}
"#
            ),
            name,
        )
    };
    let (threats, _) = Detector::store_wide().detect_pair(&mk("A").rules[0], &mk("B").rules[0]);
    assert!(
        !threats.iter().any(|t| t.kind == ThreatKind::ActuatorRace),
        "same command must not race: {threats:#?}"
    );
}

#[test]
fn config_bindings_gate_detection() {
    // With explicit bindings, the race only exists when both apps are bound
    // to the same physical window.
    use hg_detector::Unification;
    use std::collections::BTreeMap;

    let r1 = comfort_tv();
    let r2 = cold_defender();

    let mut same = BTreeMap::new();
    same.insert(
        ("ComfortTV".to_string(), "tv1".to_string()),
        "tv-1".to_string(),
    );
    same.insert(
        ("ColdDefender".to_string(), "tv1".to_string()),
        "tv-1".to_string(),
    );
    same.insert(
        ("ComfortTV".to_string(), "window1".to_string()),
        "win-1".to_string(),
    );
    same.insert(
        ("ColdDefender".to_string(), "window1".to_string()),
        "win-1".to_string(),
    );
    same.insert(
        ("ComfortTV".to_string(), "tSensor".to_string()),
        "temp-1".to_string(),
    );
    same.insert(
        ("ColdDefender".to_string(), "wSensor".to_string()),
        "rain-1".to_string(),
    );

    let det = Detector {
        unification: Unification::Bindings(same.clone()),
        ..Detector::default()
    };
    let (threats, _) = det.detect_pair(&r1.rules[0], &r2.rules[0]);
    assert!(threats.iter().any(|t| t.kind == ThreatKind::ActuatorRace));

    // Re-bind ColdDefender's window to a different device: race disappears.
    let mut different = same;
    different.insert(
        ("ColdDefender".to_string(), "window1".to_string()),
        "win-2".to_string(),
    );
    let det2 = Detector {
        unification: Unification::Bindings(different),
        ..Detector::default()
    };
    let (threats2, _) = det2.detect_pair(&r1.rules[0], &r2.rules[0]);
    assert!(
        !threats2.iter().any(|t| t.kind == ThreatKind::ActuatorRace),
        "{threats2:#?}"
    );
}

#[test]
fn user_values_make_overlap_infeasible() {
    // ComfortTV's threshold pinned to 200°C (beyond the sensor domain):
    // its rule can never fire, so the race vanishes.
    use hg_rules::value::Value;

    let r1 = comfort_tv();
    let r2 = cold_defender();
    let mut det = Detector::store_wide();
    det.solver.set_user_value(
        "ComfortTV",
        "threshold1",
        Value::Num(200 * hg_capability::domains::SCALE),
    );
    let (threats, _) = det.detect_pair(&r1.rules[0], &r2.rules[0]);
    assert!(
        !threats.iter().any(|t| t.kind == ThreatKind::ActuatorRace),
        "{threats:#?}"
    );
}

#[test]
fn detect_all_over_five_paper_apps() {
    let apps = [
        comfort_tv(),
        cold_defender(),
        catch_live_show(),
        burglar_finder(),
        night_care(),
    ];
    let rules: Vec<_> = apps.iter().flat_map(|a| a.rules.clone()).collect();
    let det = Detector::store_wide();
    let (threats, stats) = det.detect_all(&rules);
    // The five demo apps interfere in multiple ways (paper §VIII-A).
    assert!(threats.iter().any(|t| t.kind == ThreatKind::ActuatorRace));
    assert!(threats
        .iter()
        .any(|t| t.kind == ThreatKind::CovertTriggering));
    assert!(threats
        .iter()
        .any(|t| t.kind == ThreatKind::DisablingCondition));
    assert!(stats.pairs >= 10);
    assert!(stats.reused > 0, "solver reuse should kick in");
}
