//! The fleet-shared verdict cache, differentially and behaviorally.
//!
//! The load-bearing property: a cached detector reports **bit-identical**
//! threats — and identical stats modulo the hit/miss markers — to an
//! uncached one, across repeated pairs, differing-but-irrelevant
//! configuration, and relevant-context changes (which must miss, not
//! wrongly share).

use hg_detector::{
    DetectStats, DetectionEngine, Detector, PreparedRule, Unification, VerdictCache,
};
use hg_rules::rule::Rule;
use hg_symexec::{extract, ExtractorConfig};
use std::sync::Arc;

fn rules_of(source: &str, name: &str) -> Vec<Rule> {
    extract(source, name, &ExtractorConfig::extended())
        .unwrap()
        .rules
}

fn on_app(name: &str) -> Vec<Rule> {
    rules_of(
        &format!(
            r#"
definition(name: "{name}")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() {{ subscribe(m, "motion.active", h) }}
def h(evt) {{ lamp.on() }}
"#
        ),
        name,
    )
}

fn off_app(name: &str) -> Vec<Rule> {
    rules_of(
        &format!(
            r#"
definition(name: "{name}")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() {{ subscribe(m, "motion.active", h) }}
def h(evt) {{ lamp.off() }}
"#
        ),
        name,
    )
}

/// An app whose condition reads a user-configured threshold.
fn threshold_app(name: &str) -> Vec<Rule> {
    rules_of(
        &format!(
            r#"
definition(name: "{name}")
input "t", "capability.temperatureMeasurement"
input "limit", "number"
input "heater", "capability.switch", title: "space heater"
def installed() {{ subscribe(t, "temperature", h) }}
def h(evt) {{ if (t.currentTemperature > limit) {{ heater.off() }} }}
"#
        ),
        name,
    )
}

fn prepared(rules: &[Rule]) -> Vec<PreparedRule> {
    rules
        .iter()
        .map(|r| PreparedRule::prepare(r, &Unification::ByType))
        .collect()
}

fn cached_detector(cache: &Arc<VerdictCache>) -> Detector {
    Detector::store_wide().with_cache(cache.clone())
}

#[test]
fn second_identical_pair_is_a_hit_with_identical_verdict() {
    let cache = Arc::new(VerdictCache::new());
    let det = cached_detector(&cache);
    let a = prepared(&on_app("OnApp"));
    let b = prepared(&off_app("OffApp"));

    let (first, s1) = det.detect_pair_prepared(&a[0], &b[0]);
    assert_eq!((s1.cache_hits, s1.cache_misses), (0, 1));
    assert!(!first.is_empty());

    let (second, s2) = det.detect_pair_prepared(&a[0], &b[0]);
    assert_eq!((s2.cache_hits, s2.cache_misses), (1, 0));
    assert_eq!(
        first, second,
        "a hit must replay the verdict bit-identically"
    );
    assert_eq!(s1.logical(), s2.logical(), "logical effort is memoized too");

    let stats = cache.stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.entries, 1);
}

#[test]
fn uncached_and_cached_detectors_agree_over_population() {
    // Same installed population, probed twice with a cached engine and
    // once with an uncached one: all three answers agree.
    let cache = Arc::new(VerdictCache::new());
    let mut cached = DetectionEngine::new(cached_detector(&cache));
    let mut plain = DetectionEngine::new(Detector::store_wide());
    for rules in [on_app("A"), off_app("B"), threshold_app("C")] {
        cached.install_rules(&rules);
        plain.install_rules(&rules);
    }
    let probe = off_app("Probe");
    let (cold, cold_stats) = cached.check(&probe);
    let (warm, warm_stats) = cached.check(&probe);
    let (truth, truth_stats) = plain.check(&probe);
    assert_eq!(cold, truth);
    assert_eq!(warm, truth);
    assert_eq!(cold_stats.logical(), truth_stats.logical());
    assert_eq!(warm_stats.logical(), truth_stats.logical());
    assert_eq!(truth_stats.cache_hits + truth_stats.cache_misses, 0);
    assert_eq!(warm_stats.cache_hits, warm_stats.pairs, "all pairs warm");
}

#[test]
fn directed_pairs_are_keyed_by_order() {
    let cache = Arc::new(VerdictCache::new());
    let det = cached_detector(&cache);
    let a = prepared(&on_app("OnApp"));
    let b = prepared(&off_app("OffApp"));
    let (ab, _) = det.detect_pair_prepared(&a[0], &b[0]);
    let (ba, s) = det.detect_pair_prepared(&b[0], &a[0]);
    assert_eq!(s.cache_misses, 1, "the swapped pair is a distinct key");
    // Both orders agree modulo source/target direction.
    assert_eq!(ab.len(), ba.len());
    assert_eq!(cache.len(), 2);
}

#[test]
fn irrelevant_config_shares_entries_relevant_config_does_not() {
    use hg_rules::value::Value;
    use hg_rules::varid::VarId;

    let cache = Arc::new(VerdictCache::new());
    let a = prepared(&threshold_app("Thermo"));
    let b = prepared(&on_app("OnApp"));
    // The pair reads only Thermo's `limit` input.
    assert!(a[0]
        .user_inputs()
        .any(|v| matches!(v, VarId::UserInput { name, .. } if name == "limit")));

    let mut home1 = cached_detector(&cache);
    home1.solver.set_user_value(
        "Thermo",
        "limit",
        Value::Num(hg_capability::domains::scaled(30)),
    );
    // Home 2 shares the relevant value but differs in configuration the
    // pair never reads.
    let mut home2 = home1.clone();
    home2
        .solver
        .set_user_value("Unrelated", "knob", Value::Num(7));
    // Home 3 changes the value the pair actually substitutes.
    let mut home3 = home1.clone();
    home3.solver.set_user_value(
        "Thermo",
        "limit",
        Value::Num(hg_capability::domains::scaled(10)),
    );

    let (_, s1) = home1.detect_pair_prepared(&a[0], &b[0]);
    let (_, s2) = home2.detect_pair_prepared(&a[0], &b[0]);
    let (_, s3) = home3.detect_pair_prepared(&a[0], &b[0]);
    assert_eq!(s1.cache_misses, 1);
    assert_eq!(
        s2.cache_hits, 1,
        "irrelevant config must share the fleet entry"
    );
    assert_eq!(
        s3.cache_misses, 1,
        "a changed referenced value must be a distinct key"
    );
    // Differing modes split entries too (the Mode domain changes).
    let mut night_home = home1.clone();
    night_home.solver.set_modes(["Day", "Night"]);
    let (_, s4) = night_home.detect_pair_prepared(&a[0], &b[0]);
    assert_eq!(s4.cache_misses, 1);
}

#[test]
fn different_unification_never_shares() {
    use std::collections::BTreeMap;

    let cache = Arc::new(VerdictCache::new());
    let rules_a = on_app("OnApp");
    let rules_b = off_app("OffApp");

    let by_type = cached_detector(&cache);
    let pa = PreparedRule::prepare(&rules_a[0], &by_type.unification);
    let pb = PreparedRule::prepare(&rules_b[0], &by_type.unification);
    let (threats_type, _) = by_type.detect_pair_prepared(&pa, &pb);
    assert!(!threats_type.is_empty(), "type-unified lamps race");

    // Bindings resolving the lamps to different devices: prepared forms
    // differ, so the key differs — the by-type verdict cannot leak in.
    let mut map = BTreeMap::new();
    map.insert(("OnApp".to_string(), "lamp".to_string()), "l1".to_string());
    map.insert(("OnApp".to_string(), "m".to_string()), "m1".to_string());
    map.insert(("OffApp".to_string(), "lamp".to_string()), "l2".to_string());
    map.insert(("OffApp".to_string(), "m".to_string()), "m1".to_string());
    let bound = Detector {
        unification: Unification::Bindings(map),
        ..Detector::default()
    }
    .with_cache(cache.clone());
    let qa = PreparedRule::prepare(&rules_a[0], &bound.unification);
    let qb = PreparedRule::prepare(&rules_b[0], &bound.unification);
    let (threats_bound, s) = bound.detect_pair_prepared(&qa, &qb);
    assert_eq!(s.cache_misses, 1, "differently-unified pair must miss");
    assert!(
        !threats_bound
            .iter()
            .any(|t| t.kind == hg_detector::ThreatKind::ActuatorRace),
        "different lamps cannot race: {threats_bound:?}"
    );
}

#[test]
fn eviction_drops_the_apps_entries_and_repopulates_fresh() {
    let cache = Arc::new(VerdictCache::new());
    let det = cached_detector(&cache);
    let a = prepared(&on_app("OnApp"));
    let b = prepared(&off_app("OffApp"));
    det.detect_pair_prepared(&a[0], &b[0]);
    assert_eq!(cache.len(), 1);

    assert_eq!(cache.evict_app("OffApp"), 1);
    assert!(cache.is_empty());

    // The next identical pair misses, recomputes, and repopulates.
    let (threats, s) = det.detect_pair_prepared(&a[0], &b[0]);
    assert_eq!(s.cache_misses, 1);
    assert!(!threats.is_empty());
    assert_eq!(cache.len(), 1);
}

#[test]
fn upgraded_rules_never_see_the_old_verdict() {
    // Even WITHOUT eviction, a v2 rule must miss: keys are content
    // fingerprints, so the stale v1 verdict is unreachable — the "stale
    // verdict survives an app replacement" failure mode is structurally
    // impossible, eviction only reclaims the memory.
    let cache = Arc::new(VerdictCache::new());
    let det = cached_detector(&cache);
    let a = prepared(&on_app("OnApp"));
    let v1 = prepared(&off_app("Other"));
    let (threats_v1, _) = det.detect_pair_prepared(&a[0], &v1[0]);
    assert!(!threats_v1.is_empty(), "v1 races with OnApp");

    // "Other" v2 carries the same identity but benign automation.
    let v2_rules: Vec<Rule> = rules_of(
        r#"
definition(name: "Other")
input "leak", "capability.waterSensor"
input "valve", "capability.valve"
def installed() { subscribe(leak, "water.wet", h) }
def h(evt) { valve.close() }
"#,
        "Other",
    );
    let v2 = prepared(&v2_rules);
    let (threats_v2, s) = det.detect_pair_prepared(&a[0], &v2[0]);
    assert_eq!(s.cache_misses, 1, "v2 content is a fresh key");
    assert!(
        threats_v2.is_empty(),
        "the v1 verdict must not survive the replacement: {threats_v2:?}"
    );
}

#[test]
fn engines_sharing_a_cache_share_verdicts() {
    // Two "homes" (engines) over one cache: the second home's identical
    // check is answered entirely from the first home's work.
    let cache = Arc::new(VerdictCache::new());
    let mut home1 = DetectionEngine::new(cached_detector(&cache));
    let mut home2 = DetectionEngine::new(cached_detector(&cache));
    home1.install_rules(&on_app("OnApp"));
    home2.install_rules(&on_app("OnApp"));

    let probe = off_app("Probe");
    let (t1, s1) = home1.check(&probe);
    let (t2, s2) = home2.check(&probe);
    assert_eq!(t1, t2);
    assert_eq!(s1.cache_misses, 1);
    assert_eq!(s2.cache_hits, 1, "home 2 solved nothing");
    assert_eq!(s1.logical(), s2.logical());
}

#[test]
fn stats_absorb_carries_cache_counters() {
    let mut total = DetectStats::default();
    total.absorb(DetectStats {
        cache_hits: 2,
        cache_misses: 1,
        ..Default::default()
    });
    assert_eq!(total.cache_hits, 2);
    assert_eq!(total.cache_misses, 1);
    assert_eq!(total.logical().cache_hits, 0);
}
