//! Value domains for device attributes and environment features.
//!
//! All numeric quantities in HomeGuard are *scaled fixed-point* integers:
//! a value `v` represents `v / SCALE` in the attribute's natural unit. This
//! keeps the constraint solver purely integral (as the paper's JaCoP setup
//! is) while still supporting decimal thresholds like `30.5`.

use std::fmt;

/// Fixed-point scale: all numeric attribute values are multiplied by 100.
pub const SCALE: i64 = 100;

/// Converts a natural-unit integer to its scaled fixed-point representation.
pub const fn scaled(value: i64) -> i64 {
    value * SCALE
}

/// Parses a decimal literal such as `"30.5"` into scaled fixed-point.
///
/// Returns `None` if the text is not a valid decimal or overflows.
pub fn parse_scaled(text: &str) -> Option<i64> {
    let (neg, body) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text),
    };
    let (int_part, frac_part) = match body.split_once('.') {
        Some((i, f)) => (i, f),
        None => (body, ""),
    };
    if int_part.is_empty() && frac_part.is_empty() {
        return None;
    }
    let int_val: i64 = if int_part.is_empty() {
        0
    } else {
        int_part.parse().ok()?
    };
    let mut frac_val: i64 = 0;
    let mut digits = 0;
    for c in frac_part.chars() {
        if !c.is_ascii_digit() || digits >= 2 {
            if c.is_ascii_digit() {
                continue; // truncate extra precision
            }
            return None;
        }
        frac_val = frac_val * 10 + (c as i64 - '0' as i64);
        digits += 1;
    }
    while digits < 2 {
        frac_val *= 10;
        digits += 1;
    }
    let magnitude = int_val.checked_mul(SCALE)?.checked_add(frac_val)?;
    Some(if neg { -magnitude } else { magnitude })
}

/// Renders a scaled fixed-point value back to natural units.
pub fn unscaled_to_string(value: i64) -> String {
    let sign = if value < 0 { "-" } else { "" };
    let abs = value.abs();
    let int = abs / SCALE;
    let frac = abs % SCALE;
    if frac == 0 {
        format!("{sign}{int}")
    } else if frac % 10 == 0 {
        format!("{sign}{int}.{}", frac / 10)
    } else {
        format!("{sign}{int}.{frac:02}")
    }
}

/// The value domain of a device attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrDomain {
    /// A finite set of symbolic values, e.g. `{"on", "off"}`.
    Enum(&'static [&'static str]),
    /// A bounded numeric range in scaled fixed-point, with a display unit.
    Numeric {
        /// Minimum scaled value (inclusive).
        min: i64,
        /// Maximum scaled value (inclusive).
        max: i64,
        /// Display unit, e.g. `"°C"`.
        unit: &'static str,
    },
    /// Free-form text (codes, URLs). Not usable in solver constraints other
    /// than (in)equality with interned literals.
    Text,
}

impl AttrDomain {
    /// Whether `value` is one of this enum domain's members.
    pub fn contains_symbol(&self, value: &str) -> bool {
        matches!(self, AttrDomain::Enum(vals) if vals.contains(&value))
    }

    /// Whether the scaled numeric `value` lies inside the domain bounds.
    pub fn contains_numeric(&self, value: i64) -> bool {
        matches!(self, AttrDomain::Numeric { min, max, .. } if (*min..=*max).contains(&value))
    }
}

/// Measurable home-environment properties used in goal-conflict analysis
/// (paper §VI-A1) and in the environmental channel of trigger/condition
/// interference (§VI-B/C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EnvProperty {
    /// Ambient temperature.
    Temperature,
    /// Ambient light level.
    Illuminance,
    /// Relative humidity.
    Humidity,
    /// Whole-home electrical power draw.
    Power,
    /// Ambient sound level.
    Noise,
    /// Air quality / CO2 level.
    AirQuality,
    /// Presence of water/moisture.
    Moisture,
    /// Smoke concentration.
    Smoke,
    /// Motion activity level (spoofable by e.g. CO2 lasers, §VIII-B).
    Motion,
}

impl EnvProperty {
    /// All properties, for exhaustive iteration in tests and reports.
    pub const ALL: [EnvProperty; 9] = [
        EnvProperty::Temperature,
        EnvProperty::Illuminance,
        EnvProperty::Humidity,
        EnvProperty::Power,
        EnvProperty::Noise,
        EnvProperty::AirQuality,
        EnvProperty::Moisture,
        EnvProperty::Smoke,
        EnvProperty::Motion,
    ];

    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            EnvProperty::Temperature => "temperature",
            EnvProperty::Illuminance => "illuminance",
            EnvProperty::Humidity => "humidity",
            EnvProperty::Power => "power",
            EnvProperty::Noise => "noise",
            EnvProperty::AirQuality => "airQuality",
            EnvProperty::Moisture => "moisture",
            EnvProperty::Smoke => "smoke",
            EnvProperty::Motion => "motion",
        }
    }

    /// The sensor attribute (capability attribute name) that measures this
    /// property, if one exists in the capability model.
    pub fn sensed_by_attribute(&self) -> Option<&'static str> {
        Some(match self {
            EnvProperty::Temperature => "temperature",
            EnvProperty::Illuminance => "illuminance",
            EnvProperty::Humidity => "humidity",
            EnvProperty::Power => "power",
            EnvProperty::Noise => "sound",
            EnvProperty::AirQuality => "carbonDioxide",
            EnvProperty::Moisture => "water",
            EnvProperty::Smoke => "smoke",
            EnvProperty::Motion => "motion",
        })
    }

    /// Looks a property up by its [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<EnvProperty> {
        EnvProperty::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl fmt::Display for EnvProperty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The direction in which a command moves an environment property
/// (`+` / `−` in the paper's M_GC table; `#`/irrelevant is represented by
/// absence from the effect list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// The command increases the property.
    Inc,
    /// The command decreases the property.
    Dec,
}

impl Sign {
    /// The opposite direction.
    pub fn opposite(&self) -> Sign {
        match self {
            Sign::Inc => Sign::Dec,
            Sign::Dec => Sign::Inc,
        }
    }
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Sign::Inc => "+",
            Sign::Dec => "-",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scaled_integers_and_decimals() {
        assert_eq!(parse_scaled("30"), Some(3000));
        assert_eq!(parse_scaled("30.5"), Some(3050));
        assert_eq!(parse_scaled("30.55"), Some(3055));
        assert_eq!(parse_scaled("-4.2"), Some(-420));
        assert_eq!(parse_scaled("0.05"), Some(5));
        assert_eq!(parse_scaled(""), None);
        assert_eq!(parse_scaled("abc"), None);
    }

    #[test]
    fn parse_scaled_truncates_extra_precision() {
        assert_eq!(parse_scaled("1.999"), Some(199));
    }

    #[test]
    fn unscaled_rendering() {
        assert_eq!(unscaled_to_string(3000), "30");
        assert_eq!(unscaled_to_string(3050), "30.5");
        assert_eq!(unscaled_to_string(3055), "30.55");
        assert_eq!(unscaled_to_string(-420), "-4.2");
    }

    #[test]
    fn roundtrip_scaling() {
        for text in ["0", "1", "99.25", "-30.5", "150"] {
            let v = parse_scaled(text).unwrap();
            assert_eq!(unscaled_to_string(v), text);
        }
    }

    #[test]
    fn domain_membership() {
        let d = AttrDomain::Enum(&["on", "off"]);
        assert!(d.contains_symbol("on"));
        assert!(!d.contains_symbol("open"));
        let n = AttrDomain::Numeric {
            min: 0,
            max: 10000,
            unit: "%",
        };
        assert!(n.contains_numeric(5000));
        assert!(!n.contains_numeric(-1));
        assert!(!n.contains_symbol("on"));
    }

    #[test]
    fn env_property_names_roundtrip() {
        for p in EnvProperty::ALL {
            assert_eq!(EnvProperty::from_name(p.name()), Some(p));
        }
        assert_eq!(EnvProperty::from_name("bogus"), None);
    }

    #[test]
    fn sign_opposite() {
        assert_eq!(Sign::Inc.opposite(), Sign::Dec);
        assert_eq!(Sign::Dec.opposite(), Sign::Inc);
        assert_eq!(Sign::Inc.to_string(), "+");
    }
}
