//! # hg-capability — the SmartThings capability and device model
//!
//! This crate is HomeGuard's knowledge base about the physical world:
//!
//! * [`capability`] — the capability catalogue (attributes, domains,
//!   commands and their attribute effects), mirroring the SmartThings
//!   capabilities reference the paper's Appendix A describes;
//! * [`device_kind`] — device-type classification and the goal-effect map
//!   M_GC used by Goal Conflict detection (§VI-A1);
//! * [`contradiction`] — which command pairs race on an actuator (§VI-A1);
//! * [`sinks`] — the sensitive platform APIs of Table VI;
//! * [`domains`] — value domains, fixed-point scaling, environment
//!   properties and effect signs.
//!
//! # Examples
//!
//! ```
//! use hg_capability::prelude::*;
//!
//! let sw = capability::lookup("capability.switch").unwrap();
//! assert_eq!(contradiction::contradiction(sw, "on", "off"),
//!            contradiction::Contradiction::Direct);
//! assert_eq!(DeviceKind::classify("floor lamp"), DeviceKind::Light);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capability;
pub mod contradiction;
pub mod device_kind;
pub mod domains;
pub mod sinks;

/// Commonly used items.
pub mod prelude {
    pub use crate::capability;
    pub use crate::contradiction;
    pub use crate::device_kind::DeviceKind;
    pub use crate::domains::{AttrDomain, EnvProperty, Sign, SCALE};
    pub use crate::sinks;
}
