//! The SmartThings capability model (paper Appendix A).
//!
//! A *capability* abstracts a class of device functionality: it declares the
//! attributes a device exposes and the commands it accepts. SmartApps request
//! capabilities via `input` declarations (`"capability.switch"`) and the
//! platform grants matching devices. The paper's executor considers the
//! capability-protected device commands as sinks.
//!
//! The table below covers the SmartThings capability catalogue that the
//! public-repository SmartApps exercise, including every capability used by
//! the paper's examples.

use crate::domains::{scaled, AttrDomain};

/// An attribute a capability exposes, e.g. `switch` with domain `{on, off}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttributeDef {
    /// Attribute name as used in `subscribe` and `currentValue` calls.
    pub name: &'static str,
    /// The attribute's value domain.
    pub domain: AttrDomain,
}

/// How executing a command updates an attribute of the same device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrEffect {
    /// Sets `attribute` to the fixed enum `value` (e.g. `on()` sets
    /// `switch = "on"`).
    SetConst {
        /// The affected attribute.
        attribute: &'static str,
        /// The value it is set to.
        value: &'static str,
    },
    /// Sets `attribute` to the command's parameter at `param_index`
    /// (e.g. `setLevel(x)` sets `level = x`).
    SetParam {
        /// The affected attribute.
        attribute: &'static str,
        /// Which command parameter provides the value.
        param_index: usize,
    },
}

/// A command a capability accepts, e.g. `on()` or `setLevel(level)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandDef {
    /// Command name as invoked on device references.
    pub name: &'static str,
    /// Number of parameters the command takes.
    pub arity: usize,
    /// The attribute updates executing this command causes.
    pub effects: &'static [AttrEffect],
}

/// A capability: a named bundle of attributes and commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capability {
    /// Capability name without the `capability.` prefix, e.g. `"switch"`.
    pub name: &'static str,
    /// Exposed attributes.
    pub attributes: &'static [AttributeDef],
    /// Accepted commands.
    pub commands: &'static [CommandDef],
}

impl Capability {
    /// Looks up an attribute by name.
    pub fn attribute(&self, name: &str) -> Option<&'static AttributeDef> {
        self.attributes.iter().find(|a| a.name == name)
    }

    /// Looks up a command by name.
    pub fn command(&self, name: &str) -> Option<&'static CommandDef> {
        self.commands.iter().find(|c| c.name == name)
    }
}

const ON_OFF: AttrDomain = AttrDomain::Enum(&["on", "off"]);
const PCT: AttrDomain = AttrDomain::Numeric {
    min: 0,
    max: scaled(100),
    unit: "%",
};
const TEMP: AttrDomain = AttrDomain::Numeric {
    min: scaled(-40),
    max: scaled(150),
    unit: "°C",
};

macro_rules! attr {
    ($name:literal, $domain:expr) => {
        AttributeDef {
            name: $name,
            domain: $domain,
        }
    };
}

macro_rules! cmd {
    ($name:literal) => {
        CommandDef {
            name: $name,
            arity: 0,
            effects: &[],
        }
    };
    ($name:literal sets $attr:literal = $value:literal) => {
        CommandDef {
            name: $name,
            arity: 0,
            effects: &[AttrEffect::SetConst {
                attribute: $attr,
                value: $value,
            }],
        }
    };
    ($name:literal ( $arity:literal ) sets $attr:literal = param $idx:literal) => {
        CommandDef {
            name: $name,
            arity: $arity,
            effects: &[AttrEffect::SetParam {
                attribute: $attr,
                param_index: $idx,
            }],
        }
    };
}

/// The capability catalogue.
///
/// Attribute domains follow the SmartThings capabilities reference; numeric
/// bounds are the physically sensible ranges the solver needs (temperature
/// −40..150 °C, percentages 0..100, power 0..20 kW, illuminance 0..100 klux).
pub static CAPABILITIES: &[Capability] = &[
    Capability {
        name: "accelerationSensor",
        attributes: &[attr!(
            "acceleration",
            AttrDomain::Enum(&["active", "inactive"])
        )],
        commands: &[],
    },
    Capability {
        name: "alarm",
        attributes: &[attr!(
            "alarm",
            AttrDomain::Enum(&["off", "siren", "strobe", "both"])
        )],
        commands: &[
            cmd!("off" sets "alarm" = "off"),
            cmd!("siren" sets "alarm" = "siren"),
            cmd!("strobe" sets "alarm" = "strobe"),
            cmd!("both" sets "alarm" = "both"),
        ],
    },
    Capability {
        name: "battery",
        attributes: &[attr!("battery", PCT)],
        commands: &[],
    },
    Capability {
        name: "beacon",
        attributes: &[attr!(
            "presence",
            AttrDomain::Enum(&["present", "not present"])
        )],
        commands: &[],
    },
    Capability {
        name: "button",
        attributes: &[attr!("button", AttrDomain::Enum(&["pushed", "held"]))],
        commands: &[],
    },
    Capability {
        name: "carbonDioxideMeasurement",
        attributes: &[attr!(
            "carbonDioxide",
            AttrDomain::Numeric {
                min: 0,
                max: scaled(10000),
                unit: "ppm"
            }
        )],
        commands: &[],
    },
    Capability {
        name: "carbonMonoxideDetector",
        attributes: &[attr!(
            "carbonMonoxide",
            AttrDomain::Enum(&["clear", "detected", "tested"])
        )],
        commands: &[],
    },
    Capability {
        name: "colorControl",
        attributes: &[
            attr!("hue", PCT),
            attr!("saturation", PCT),
            attr!("color", AttrDomain::Text),
        ],
        commands: &[
            cmd!("setHue"(1) sets "hue" = param 0),
            cmd!("setSaturation"(1) sets "saturation" = param 0),
            CommandDef {
                name: "setColor",
                arity: 1,
                effects: &[],
            },
        ],
    },
    Capability {
        name: "colorTemperature",
        attributes: &[attr!(
            "colorTemperature",
            AttrDomain::Numeric {
                min: scaled(1000),
                max: scaled(30000),
                unit: "K"
            }
        )],
        commands: &[cmd!("setColorTemperature"(1) sets "colorTemperature" = param 0)],
    },
    Capability {
        name: "contactSensor",
        attributes: &[attr!("contact", AttrDomain::Enum(&["open", "closed"]))],
        commands: &[],
    },
    Capability {
        name: "doorControl",
        attributes: &[attr!(
            "door",
            AttrDomain::Enum(&["open", "closed", "opening", "closing", "unknown"])
        )],
        commands: &[
            cmd!("open" sets "door" = "open"),
            cmd!("close" sets "door" = "closed"),
        ],
    },
    Capability {
        name: "energyMeter",
        attributes: &[attr!(
            "energy",
            AttrDomain::Numeric {
                min: 0,
                max: scaled(1_000_000),
                unit: "kWh"
            }
        )],
        commands: &[],
    },
    Capability {
        name: "garageDoorControl",
        attributes: &[attr!(
            "door",
            AttrDomain::Enum(&["open", "closed", "opening", "closing", "unknown"])
        )],
        commands: &[
            cmd!("open" sets "door" = "open"),
            cmd!("close" sets "door" = "closed"),
        ],
    },
    Capability {
        name: "illuminanceMeasurement",
        attributes: &[attr!(
            "illuminance",
            AttrDomain::Numeric {
                min: 0,
                max: scaled(100_000),
                unit: "lux"
            }
        )],
        commands: &[],
    },
    Capability {
        name: "imageCapture",
        attributes: &[attr!("image", AttrDomain::Text)],
        commands: &[cmd!("take")],
    },
    Capability {
        name: "lock",
        attributes: &[attr!(
            "lock",
            AttrDomain::Enum(&["locked", "unlocked", "unknown", "unlocked with timeout"])
        )],
        commands: &[
            cmd!("lock" sets "lock" = "locked"),
            cmd!("unlock" sets "lock" = "unlocked"),
        ],
    },
    Capability {
        name: "motionSensor",
        attributes: &[attr!("motion", AttrDomain::Enum(&["active", "inactive"]))],
        commands: &[],
    },
    Capability {
        name: "musicPlayer",
        attributes: &[
            attr!(
                "status",
                AttrDomain::Enum(&["playing", "paused", "stopped"])
            ),
            attr!("level", PCT),
            attr!("mute", AttrDomain::Enum(&["muted", "unmuted"])),
        ],
        commands: &[
            cmd!("play" sets "status" = "playing"),
            cmd!("pause" sets "status" = "paused"),
            cmd!("stop" sets "status" = "stopped"),
            cmd!("mute" sets "mute" = "muted"),
            cmd!("unmute" sets "mute" = "unmuted"),
            cmd!("setLevel"(1) sets "level" = param 0),
            CommandDef {
                name: "playText",
                arity: 1,
                effects: &[],
            },
            CommandDef {
                name: "playTrack",
                arity: 1,
                effects: &[],
            },
        ],
    },
    Capability {
        name: "notification",
        attributes: &[],
        commands: &[CommandDef {
            name: "deviceNotification",
            arity: 1,
            effects: &[],
        }],
    },
    Capability {
        name: "powerMeter",
        attributes: &[attr!(
            "power",
            AttrDomain::Numeric {
                min: 0,
                max: scaled(20_000),
                unit: "W"
            }
        )],
        commands: &[],
    },
    Capability {
        name: "presenceSensor",
        attributes: &[attr!(
            "presence",
            AttrDomain::Enum(&["present", "not present"])
        )],
        commands: &[],
    },
    Capability {
        name: "relativeHumidityMeasurement",
        attributes: &[attr!("humidity", PCT)],
        commands: &[],
    },
    Capability {
        name: "relaySwitch",
        attributes: &[attr!("switch", ON_OFF)],
        commands: &[
            cmd!("on" sets "switch" = "on"),
            cmd!("off" sets "switch" = "off"),
        ],
    },
    Capability {
        name: "sleepSensor",
        attributes: &[attr!(
            "sleeping",
            AttrDomain::Enum(&["sleeping", "not sleeping"])
        )],
        commands: &[],
    },
    Capability {
        name: "smokeDetector",
        attributes: &[attr!(
            "smoke",
            AttrDomain::Enum(&["clear", "detected", "tested"])
        )],
        commands: &[],
    },
    Capability {
        name: "soundSensor",
        attributes: &[attr!(
            "sound",
            AttrDomain::Enum(&["detected", "not detected"])
        )],
        commands: &[],
    },
    Capability {
        name: "soundPressureLevel",
        attributes: &[attr!(
            "soundPressureLevel",
            AttrDomain::Numeric {
                min: 0,
                max: scaled(200),
                unit: "dB"
            }
        )],
        commands: &[],
    },
    Capability {
        name: "speechSynthesis",
        attributes: &[],
        commands: &[CommandDef {
            name: "speak",
            arity: 1,
            effects: &[],
        }],
    },
    Capability {
        name: "switch",
        attributes: &[attr!("switch", ON_OFF)],
        commands: &[
            cmd!("on" sets "switch" = "on"),
            cmd!("off" sets "switch" = "off"),
        ],
    },
    Capability {
        name: "switchLevel",
        attributes: &[attr!("level", PCT)],
        commands: &[cmd!("setLevel"(1) sets "level" = param 0)],
    },
    Capability {
        name: "temperatureMeasurement",
        attributes: &[attr!("temperature", TEMP)],
        commands: &[],
    },
    Capability {
        name: "thermostat",
        attributes: &[
            attr!("temperature", TEMP),
            attr!("heatingSetpoint", TEMP),
            attr!("coolingSetpoint", TEMP),
            attr!(
                "thermostatMode",
                AttrDomain::Enum(&["auto", "emergency heat", "heat", "off", "cool"])
            ),
            attr!(
                "thermostatFanMode",
                AttrDomain::Enum(&["auto", "on", "circulate"])
            ),
            attr!(
                "thermostatOperatingState",
                AttrDomain::Enum(&[
                    "heating",
                    "idle",
                    "pending cool",
                    "pending heat",
                    "vent economizer",
                    "cooling",
                    "fan only"
                ])
            ),
        ],
        commands: &[
            cmd!("setHeatingSetpoint"(1) sets "heatingSetpoint" = param 0),
            cmd!("setCoolingSetpoint"(1) sets "coolingSetpoint" = param 0),
            cmd!("off" sets "thermostatMode" = "off"),
            cmd!("heat" sets "thermostatMode" = "heat"),
            cmd!("cool" sets "thermostatMode" = "cool"),
            cmd!("auto" sets "thermostatMode" = "auto"),
            cmd!("emergencyHeat" sets "thermostatMode" = "emergency heat"),
            cmd!("fanOn" sets "thermostatFanMode" = "on"),
            cmd!("fanAuto" sets "thermostatFanMode" = "auto"),
            cmd!("fanCirculate" sets "thermostatFanMode" = "circulate"),
            CommandDef {
                name: "setThermostatMode",
                arity: 1,
                effects: &[AttrEffect::SetParam {
                    attribute: "thermostatMode",
                    param_index: 0,
                }],
            },
        ],
    },
    Capability {
        name: "thermostatCoolingSetpoint",
        attributes: &[attr!("coolingSetpoint", TEMP)],
        commands: &[cmd!("setCoolingSetpoint"(1) sets "coolingSetpoint" = param 0)],
    },
    Capability {
        name: "thermostatHeatingSetpoint",
        attributes: &[attr!("heatingSetpoint", TEMP)],
        commands: &[cmd!("setHeatingSetpoint"(1) sets "heatingSetpoint" = param 0)],
    },
    Capability {
        name: "thermostatMode",
        attributes: &[attr!(
            "thermostatMode",
            AttrDomain::Enum(&["auto", "emergency heat", "heat", "off", "cool"])
        )],
        commands: &[
            cmd!("off" sets "thermostatMode" = "off"),
            cmd!("heat" sets "thermostatMode" = "heat"),
            cmd!("cool" sets "thermostatMode" = "cool"),
            cmd!("auto" sets "thermostatMode" = "auto"),
        ],
    },
    Capability {
        name: "threeAxis",
        attributes: &[attr!("threeAxis", AttrDomain::Text)],
        commands: &[],
    },
    Capability {
        name: "tone",
        attributes: &[],
        commands: &[cmd!("beep")],
    },
    Capability {
        name: "valve",
        attributes: &[attr!("valve", AttrDomain::Enum(&["open", "closed"]))],
        commands: &[
            cmd!("open" sets "valve" = "open"),
            cmd!("close" sets "valve" = "closed"),
        ],
    },
    Capability {
        name: "waterSensor",
        attributes: &[attr!("water", AttrDomain::Enum(&["dry", "wet"]))],
        commands: &[],
    },
    Capability {
        name: "windowShade",
        attributes: &[attr!(
            "windowShade",
            AttrDomain::Enum(&[
                "open",
                "closed",
                "opening",
                "closing",
                "partially open",
                "unknown"
            ])
        )],
        commands: &[
            cmd!("open" sets "windowShade" = "open"),
            cmd!("close" sets "windowShade" = "closed"),
            cmd!("presetPosition" sets "windowShade" = "partially open"),
        ],
    },
    Capability {
        name: "momentary",
        attributes: &[],
        commands: &[cmd!("push")],
    },
    Capability {
        name: "refresh",
        attributes: &[],
        commands: &[cmd!("refresh")],
    },
    Capability {
        name: "polling",
        attributes: &[],
        commands: &[cmd!("poll")],
    },
    Capability {
        name: "sensor",
        attributes: &[],
        commands: &[],
    },
    Capability {
        name: "actuator",
        attributes: &[],
        commands: &[],
    },
];

/// Looks up a capability by its short name (`"switch"`) or its full input
/// form (`"capability.switch"`).
///
/// # Examples
///
/// ```
/// use hg_capability::capability::lookup;
/// assert!(lookup("capability.switch").is_some());
/// assert!(lookup("lock").is_some());
/// assert!(lookup("capability.flyingCar").is_none());
/// ```
pub fn lookup(name: &str) -> Option<&'static Capability> {
    let short = name.strip_prefix("capability.").unwrap_or(name);
    CAPABILITIES.iter().find(|c| c.name == short)
}

/// Finds every capability that exposes `attribute`.
pub fn capabilities_with_attribute(attribute: &str) -> Vec<&'static Capability> {
    CAPABILITIES
        .iter()
        .filter(|c| c.attribute(attribute).is_some())
        .collect()
}

/// Finds the capability-defined command `command` in any capability of the
/// given list (used when a device reference was granted with a specific
/// capability).
pub fn find_command(capability: &str, command: &str) -> Option<&'static CommandDef> {
    lookup(capability)?.command(command)
}

/// Total number of capability-protected device commands in the catalogue.
pub fn command_count() -> usize {
    CAPABILITIES.iter().map(|c| c.commands.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_with_and_without_prefix() {
        assert_eq!(lookup("switch").unwrap().name, "switch");
        assert_eq!(lookup("capability.lock").unwrap().name, "lock");
        assert!(lookup("nonexistent").is_none());
    }

    #[test]
    fn switch_capability_shape() {
        let sw = lookup("switch").unwrap();
        assert_eq!(sw.attributes.len(), 1);
        assert_eq!(sw.commands.len(), 2);
        let on = sw.command("on").unwrap();
        assert_eq!(
            on.effects,
            &[AttrEffect::SetConst {
                attribute: "switch",
                value: "on"
            }]
        );
    }

    #[test]
    fn set_level_takes_param() {
        let sl = lookup("switchLevel").unwrap();
        let cmd = sl.command("setLevel").unwrap();
        assert_eq!(cmd.arity, 1);
        assert_eq!(
            cmd.effects,
            &[AttrEffect::SetParam {
                attribute: "level",
                param_index: 0
            }]
        );
    }

    #[test]
    fn attribute_lookup() {
        let lock = lookup("lock").unwrap();
        let attr = lock.attribute("lock").unwrap();
        assert!(attr.domain.contains_symbol("locked"));
        assert!(attr.domain.contains_symbol("unlocked"));
        assert!(lock.attribute("switch").is_none());
    }

    #[test]
    fn capabilities_with_attribute_finds_all_switches() {
        let caps = capabilities_with_attribute("switch");
        let names: Vec<_> = caps.iter().map(|c| c.name).collect();
        assert!(names.contains(&"switch"));
        assert!(names.contains(&"relaySwitch"));
    }

    #[test]
    fn attribute_domains_are_well_formed() {
        for cap in CAPABILITIES {
            for attr in cap.attributes {
                if let AttrDomain::Numeric { min, max, .. } = attr.domain {
                    assert!(min < max, "{}:{} has empty domain", cap.name, attr.name);
                }
                if let AttrDomain::Enum(vals) = attr.domain {
                    assert!(!vals.is_empty(), "{}:{} empty enum", cap.name, attr.name);
                }
            }
        }
    }

    #[test]
    fn command_effects_reference_declared_attributes() {
        for cap in CAPABILITIES {
            for cmd in cap.commands {
                for eff in cmd.effects {
                    let attr_name = match eff {
                        AttrEffect::SetConst { attribute, .. } => attribute,
                        AttrEffect::SetParam { attribute, .. } => attribute,
                    };
                    assert!(
                        cap.attribute(attr_name).is_some(),
                        "{}.{} affects undeclared attribute {attr_name}",
                        cap.name,
                        cmd.name,
                    );
                    if let AttrEffect::SetConst { attribute, value } = eff {
                        let dom = cap.attribute(attribute).unwrap().domain;
                        assert!(
                            dom.contains_symbol(value),
                            "{}.{} sets {attribute} to out-of-domain {value}",
                            cap.name,
                            cmd.name,
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn catalogue_covers_paper_examples() {
        // Every capability the paper's five demo apps and named store apps use.
        for name in [
            "switch",
            "temperatureMeasurement",
            "motionSensor",
            "illuminanceMeasurement",
            "powerMeter",
            "lock",
            "presenceSensor",
            "contactSensor",
            "thermostat",
            "energyMeter",
            "alarm",
            "switchLevel",
        ] {
            assert!(lookup(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn command_count_is_substantial() {
        assert!(
            command_count() >= 40,
            "only {} commands modeled",
            command_count()
        );
    }
}
