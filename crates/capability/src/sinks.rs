//! Sensitive SmartThings APIs treated as analysis sinks (paper Table VI).
//!
//! Beyond capability-protected device commands, the symbolic executor must
//! recognize platform APIs that perform sensitive actions: HTTP requests,
//! scheduling of deferred execution, hub commands, SMS, and location-mode
//! changes. The scheduling APIs additionally carry timing that becomes the
//! `when`/`period` fields of the extracted rule.

/// Classification of a sink API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SinkKind {
    /// `httpGet`, `httpPost`, ... — data leaves the home.
    Http,
    /// `runIn`, `runOnce`, `schedule` — deferred one-shot execution.
    ScheduleOnce,
    /// `runEvery*` — recurring execution.
    SchedulePeriodic,
    /// `sendHubCommand` — raw command to LAN devices.
    HubCommand,
    /// `sendSms` / `sendSmsMessage` / push notifications.
    Messaging,
    /// `setLocationMode` — changes the home's mode, a virtual actuator.
    LocationMode,
}

/// A sink API entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkApi {
    /// The API method name.
    pub name: &'static str,
    /// What class of sink it is.
    pub kind: SinkKind,
    /// For periodic schedulers, the repetition period in seconds.
    pub period_secs: Option<u64>,
}

/// The 21 sensitive SmartThings APIs of paper Table VI, plus the push
/// notification APIs SmartApps commonly use for the same purpose as SMS.
pub static SINK_APIS: &[SinkApi] = &[
    SinkApi {
        name: "httpDelete",
        kind: SinkKind::Http,
        period_secs: None,
    },
    SinkApi {
        name: "httpGet",
        kind: SinkKind::Http,
        period_secs: None,
    },
    SinkApi {
        name: "httpHead",
        kind: SinkKind::Http,
        period_secs: None,
    },
    SinkApi {
        name: "httpPost",
        kind: SinkKind::Http,
        period_secs: None,
    },
    SinkApi {
        name: "httpPostJson",
        kind: SinkKind::Http,
        period_secs: None,
    },
    SinkApi {
        name: "httpPut",
        kind: SinkKind::Http,
        period_secs: None,
    },
    SinkApi {
        name: "httpPutJson",
        kind: SinkKind::Http,
        period_secs: None,
    },
    SinkApi {
        name: "runIn",
        kind: SinkKind::ScheduleOnce,
        period_secs: None,
    },
    SinkApi {
        name: "runOnce",
        kind: SinkKind::ScheduleOnce,
        period_secs: None,
    },
    SinkApi {
        name: "schedule",
        kind: SinkKind::SchedulePeriodic,
        period_secs: Some(86_400),
    },
    SinkApi {
        name: "runEvery1Minute",
        kind: SinkKind::SchedulePeriodic,
        period_secs: Some(60),
    },
    SinkApi {
        name: "runEvery5Minutes",
        kind: SinkKind::SchedulePeriodic,
        period_secs: Some(300),
    },
    SinkApi {
        name: "runEvery10Minutes",
        kind: SinkKind::SchedulePeriodic,
        period_secs: Some(600),
    },
    SinkApi {
        name: "runEvery15Minutes",
        kind: SinkKind::SchedulePeriodic,
        period_secs: Some(900),
    },
    SinkApi {
        name: "runEvery30Minutes",
        kind: SinkKind::SchedulePeriodic,
        period_secs: Some(1_800),
    },
    SinkApi {
        name: "runEvery1Hour",
        kind: SinkKind::SchedulePeriodic,
        period_secs: Some(3_600),
    },
    SinkApi {
        name: "runEvery3Hours",
        kind: SinkKind::SchedulePeriodic,
        period_secs: Some(10_800),
    },
    SinkApi {
        name: "sendHubCommand",
        kind: SinkKind::HubCommand,
        period_secs: None,
    },
    SinkApi {
        name: "sendSms",
        kind: SinkKind::Messaging,
        period_secs: None,
    },
    SinkApi {
        name: "sendSmsMessage",
        kind: SinkKind::Messaging,
        period_secs: None,
    },
    SinkApi {
        name: "setLocationMode",
        kind: SinkKind::LocationMode,
        period_secs: None,
    },
    // Companion-app push notifications: same sink class as SMS.
    SinkApi {
        name: "sendPush",
        kind: SinkKind::Messaging,
        period_secs: None,
    },
    SinkApi {
        name: "sendPushMessage",
        kind: SinkKind::Messaging,
        period_secs: None,
    },
    SinkApi {
        name: "sendNotification",
        kind: SinkKind::Messaging,
        period_secs: None,
    },
    SinkApi {
        name: "sendNotificationEvent",
        kind: SinkKind::Messaging,
        period_secs: None,
    },
    SinkApi {
        name: "sendLocationEvent",
        kind: SinkKind::LocationMode,
        period_secs: None,
    },
];

/// Looks up a sink API by method name.
pub fn sink_api(name: &str) -> Option<&'static SinkApi> {
    SINK_APIS.iter().find(|s| s.name == name)
}

/// Whether `name` is one of the scheduling APIs (the 10 APIs the paper
/// models for deferred execution: `runIn`, `runOnce`, `schedule`,
/// `runEvery*`).
pub fn is_scheduling_api(name: &str) -> bool {
    matches!(
        sink_api(name),
        Some(SinkApi {
            kind: SinkKind::ScheduleOnce | SinkKind::SchedulePeriodic,
            ..
        })
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_vi_apis_present() {
        for name in [
            "httpDelete",
            "httpGet",
            "httpHead",
            "httpPost",
            "httpPostJson",
            "httpPut",
            "httpPutJson",
            "runIn",
            "runOnce",
            "schedule",
            "runEvery1Minute",
            "runEvery5Minutes",
            "runEvery10Minutes",
            "runEvery15Minutes",
            "runEvery30Minutes",
            "runEvery1Hour",
            "runEvery3Hours",
            "sendHubCommand",
            "sendSms",
            "sendSmsMessage",
            "setLocationMode",
        ] {
            assert!(sink_api(name).is_some(), "missing Table VI API {name}");
        }
    }

    #[test]
    fn paper_counts_21_table_vi_apis() {
        // The original table lists exactly 21 entries; our extras are push
        // notification aliases.
        let core: Vec<_> = SINK_APIS
            .iter()
            .filter(|s| {
                !matches!(
                    s.name,
                    "sendPush"
                        | "sendPushMessage"
                        | "sendNotification"
                        | "sendNotificationEvent"
                        | "sendLocationEvent"
                )
            })
            .collect();
        assert_eq!(core.len(), 21);
    }

    #[test]
    fn ten_scheduling_apis() {
        let n = SINK_APIS
            .iter()
            .filter(|s| is_scheduling_api(s.name))
            .count();
        assert_eq!(n, 10);
    }

    #[test]
    fn periods_match_names() {
        assert_eq!(sink_api("runEvery5Minutes").unwrap().period_secs, Some(300));
        assert_eq!(
            sink_api("runEvery3Hours").unwrap().period_secs,
            Some(10_800)
        );
        assert_eq!(sink_api("runIn").unwrap().period_secs, None);
    }

    #[test]
    fn non_sink_not_found() {
        assert!(sink_api("log").is_none());
        assert!(!is_scheduling_api("httpGet"));
    }
}
