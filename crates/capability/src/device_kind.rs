//! Device kinds and the goal-effect mapping M_GC (paper §VI-A1).
//!
//! Goal-conflict detection needs to know how a *command on a device of a
//! given kind* moves each measurable home property. The capability alone is
//! not enough: a heater and a fan are both `capability.switch`, but `on()`
//! heats one room and cools the other. The paper resolves this by
//! classifying `capability.switch` devices into types from the app
//! description (§VIII-B); we reproduce that with [`DeviceKind::classify`].

use crate::domains::{EnvProperty, Sign};

/// What a device physically is, for goal analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceKind {
    /// A lamp or bulb.
    Light,
    /// A space/central heater.
    Heater,
    /// An air conditioner.
    AirConditioner,
    /// A ventilating fan.
    Fan,
    /// A motorized window opener.
    WindowOpener,
    /// A motorized curtain or shade.
    Curtain,
    /// A television.
    Tv,
    /// A speaker or music player.
    Speaker,
    /// A humidifier.
    Humidifier,
    /// A dehumidifier.
    Dehumidifier,
    /// A water valve.
    Valve,
    /// A siren/strobe alarm.
    Siren,
    /// A door lock.
    Lock,
    /// A door or garage-door opener.
    DoorOpener,
    /// A generic smart outlet whose load is unknown.
    Outlet,
    /// A coffee maker / kettle style appliance.
    Appliance,
    /// A camera.
    Camera,
    /// Anything we cannot classify.
    Unknown,
}

/// One entry of the goal-effect map: issuing `command` on this kind of
/// device moves `property` in direction `sign`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoalEffect {
    /// The command name, e.g. `"on"`.
    pub command: &'static str,
    /// The affected environment property.
    pub property: EnvProperty,
    /// The direction of the effect.
    pub sign: Sign,
}

macro_rules! fx {
    ($cmd:literal, $prop:ident, $sign:ident) => {
        GoalEffect {
            command: $cmd,
            property: EnvProperty::$prop,
            sign: Sign::$sign,
        }
    };
}

impl DeviceKind {
    /// All classifiable kinds (excludes [`DeviceKind::Unknown`]).
    pub const ALL: [DeviceKind; 17] = [
        DeviceKind::Light,
        DeviceKind::Heater,
        DeviceKind::AirConditioner,
        DeviceKind::Fan,
        DeviceKind::WindowOpener,
        DeviceKind::Curtain,
        DeviceKind::Tv,
        DeviceKind::Speaker,
        DeviceKind::Humidifier,
        DeviceKind::Dehumidifier,
        DeviceKind::Valve,
        DeviceKind::Siren,
        DeviceKind::Lock,
        DeviceKind::DoorOpener,
        DeviceKind::Outlet,
        DeviceKind::Appliance,
        DeviceKind::Camera,
    ];

    /// The goal-effect rows for this device kind — the M_GC mapping.
    ///
    /// Properties not listed are unaffected (`#` in the paper's notation).
    /// Virtual actuators (location mode) have no goal effects and are not
    /// part of M_GC at all.
    pub fn goal_effects(&self) -> &'static [GoalEffect] {
        match self {
            DeviceKind::Light => &[
                fx!("on", Illuminance, Inc),
                fx!("off", Illuminance, Dec),
                fx!("on", Power, Inc),
                fx!("off", Power, Dec),
                fx!("setLevel", Illuminance, Inc),
            ],
            DeviceKind::Heater => &[
                fx!("on", Temperature, Inc),
                fx!("off", Temperature, Dec),
                fx!("on", Power, Inc),
                fx!("off", Power, Dec),
            ],
            DeviceKind::AirConditioner => &[
                fx!("on", Temperature, Dec),
                fx!("off", Temperature, Inc),
                fx!("on", Power, Inc),
                fx!("off", Power, Dec),
                fx!("cool", Temperature, Dec),
                fx!("heat", Temperature, Inc),
            ],
            DeviceKind::Fan => &[
                fx!("on", Temperature, Dec),
                fx!("off", Temperature, Inc),
                fx!("on", Power, Inc),
                fx!("off", Power, Dec),
                fx!("on", Noise, Inc),
                fx!("off", Noise, Dec),
            ],
            // Opening a window: assumed to cool the (heated) home, brighten
            // it, and let outside noise in — matching the paper's Fig. 3 /
            // heater-vs-window Goal Conflict example.
            DeviceKind::WindowOpener => &[
                fx!("on", Temperature, Dec),
                fx!("off", Temperature, Inc),
                fx!("on", Illuminance, Inc),
                fx!("off", Illuminance, Dec),
                fx!("on", Noise, Inc),
                fx!("off", Noise, Dec),
                fx!("open", Temperature, Dec),
                fx!("close", Temperature, Inc),
                fx!("open", Illuminance, Inc),
                fx!("close", Illuminance, Dec),
                fx!("open", Noise, Inc),
                fx!("close", Noise, Dec),
            ],
            DeviceKind::Curtain => &[
                fx!("open", Illuminance, Inc),
                fx!("close", Illuminance, Dec),
                fx!("on", Illuminance, Inc),
                fx!("off", Illuminance, Dec),
            ],
            DeviceKind::Tv => &[
                fx!("on", Noise, Inc),
                fx!("off", Noise, Dec),
                fx!("on", Power, Inc),
                fx!("off", Power, Dec),
                fx!("on", Illuminance, Inc),
                fx!("off", Illuminance, Dec),
            ],
            DeviceKind::Speaker => &[
                fx!("play", Noise, Inc),
                fx!("stop", Noise, Dec),
                fx!("on", Noise, Inc),
                fx!("off", Noise, Dec),
            ],
            DeviceKind::Humidifier => &[
                fx!("on", Humidity, Inc),
                fx!("off", Humidity, Dec),
                fx!("on", Power, Inc),
                fx!("off", Power, Dec),
            ],
            DeviceKind::Dehumidifier => &[
                fx!("on", Humidity, Dec),
                fx!("off", Humidity, Inc),
                fx!("on", Power, Inc),
                fx!("off", Power, Dec),
            ],
            DeviceKind::Valve => &[
                fx!("open", Moisture, Inc),
                fx!("close", Moisture, Dec),
                fx!("on", Moisture, Inc),
                fx!("off", Moisture, Dec),
            ],
            DeviceKind::Siren => &[
                fx!("siren", Noise, Inc),
                fx!("both", Noise, Inc),
                fx!("off", Noise, Dec),
                fx!("strobe", Illuminance, Inc),
                fx!("both", Illuminance, Inc),
            ],
            // Locks, doors, outlets, cameras: no measurable-property goals
            // (they matter to AR/CT/EC analysis, not GC), except outlets
            // drawing power.
            DeviceKind::Lock => &[],
            DeviceKind::DoorOpener => &[
                fx!("open", Temperature, Dec),
                fx!("close", Temperature, Inc),
            ],
            DeviceKind::Outlet => &[fx!("on", Power, Inc), fx!("off", Power, Dec)],
            DeviceKind::Appliance => &[
                fx!("on", Power, Inc),
                fx!("off", Power, Dec),
                fx!("on", Temperature, Inc),
                fx!("off", Temperature, Dec),
            ],
            DeviceKind::Camera => &[],
            DeviceKind::Unknown => &[],
        }
    }

    /// The effect of `command` on `property` for this kind, if any.
    pub fn effect_on(&self, command: &str, property: EnvProperty) -> Option<Sign> {
        self.goal_effects()
            .iter()
            .find(|e| e.command == command && e.property == property)
            .map(|e| e.sign)
    }

    /// Classifies a `capability.switch`-style device from free-text hints
    /// (device label, input title, app description), mirroring the paper's
    /// description-based classification of switch devices (§VIII-B).
    ///
    /// # Examples
    ///
    /// ```
    /// use hg_capability::device_kind::DeviceKind;
    /// assert_eq!(DeviceKind::classify("Which floor lamp?"), DeviceKind::Light);
    /// assert_eq!(DeviceKind::classify("the AC unit"), DeviceKind::AirConditioner);
    /// assert_eq!(DeviceKind::classify("mystery gadget"), DeviceKind::Unknown);
    /// ```
    pub fn classify(hint: &str) -> DeviceKind {
        let h = hint.to_ascii_lowercase();
        let has = |needles: &[&str]| needles.iter().any(|n| h.contains(n));
        if has(&["light", "lamp", "bulb", "sconce", "chandelier"]) {
            DeviceKind::Light
        } else if has(&["air conditioner", "a/c", " ac ", "aircon"])
            || h.ends_with(" ac")
            || h == "ac"
        {
            DeviceKind::AirConditioner
        } else if has(&["heater", "radiator", "furnace"]) {
            DeviceKind::Heater
        } else if has(&["fan", "ventilat"]) {
            DeviceKind::Fan
        } else if has(&["window opener", "window"]) {
            DeviceKind::WindowOpener
        } else if has(&["curtain", "shade", "blind"]) {
            DeviceKind::Curtain
        } else if has(&["tv", "television"]) {
            DeviceKind::Tv
        } else if has(&["speaker", "music", "sonos", "stereo"]) {
            DeviceKind::Speaker
        } else if has(&["dehumidifier"]) {
            DeviceKind::Dehumidifier
        } else if has(&["humidifier"]) {
            DeviceKind::Humidifier
        } else if has(&["valve", "sprinkler", "irrigation"]) {
            DeviceKind::Valve
        } else if has(&["siren", "alarm", "strobe"]) {
            DeviceKind::Siren
        } else if has(&["lock", "deadbolt"]) {
            DeviceKind::Lock
        } else if has(&["garage", "door opener", "door control"]) {
            DeviceKind::DoorOpener
        } else if has(&["outlet", "plug", "socket"]) {
            DeviceKind::Outlet
        } else if has(&["coffee", "kettle", "cooker", "iron", "toaster", "curling"]) {
            DeviceKind::Appliance
        } else if has(&["camera"]) {
            DeviceKind::Camera
        } else {
            DeviceKind::Unknown
        }
    }

    /// Stable lowercase name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            DeviceKind::Light => "light",
            DeviceKind::Heater => "heater",
            DeviceKind::AirConditioner => "airConditioner",
            DeviceKind::Fan => "fan",
            DeviceKind::WindowOpener => "windowOpener",
            DeviceKind::Curtain => "curtain",
            DeviceKind::Tv => "tv",
            DeviceKind::Speaker => "speaker",
            DeviceKind::Humidifier => "humidifier",
            DeviceKind::Dehumidifier => "dehumidifier",
            DeviceKind::Valve => "valve",
            DeviceKind::Siren => "siren",
            DeviceKind::Lock => "lock",
            DeviceKind::DoorOpener => "doorOpener",
            DeviceKind::Outlet => "outlet",
            DeviceKind::Appliance => "appliance",
            DeviceKind::Camera => "camera",
            DeviceKind::Unknown => "unknown",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heater_and_window_conflict_on_temperature() {
        // The paper's Goal Conflict example: heater on (+T) vs window open (−T).
        let heat = DeviceKind::Heater
            .effect_on("on", EnvProperty::Temperature)
            .unwrap();
        let open = DeviceKind::WindowOpener
            .effect_on("open", EnvProperty::Temperature)
            .unwrap();
        assert_eq!(heat, open.opposite());
    }

    #[test]
    fn ac_cools() {
        assert_eq!(
            DeviceKind::AirConditioner.effect_on("on", EnvProperty::Temperature),
            Some(Sign::Dec)
        );
    }

    #[test]
    fn classification_from_hints() {
        assert_eq!(
            DeviceKind::classify("Floor lamp in the den"),
            DeviceKind::Light
        );
        assert_eq!(DeviceKind::classify("Space Heater"), DeviceKind::Heater);
        assert_eq!(
            DeviceKind::classify("Window opener switch"),
            DeviceKind::WindowOpener
        );
        assert_eq!(DeviceKind::classify("Which TV?"), DeviceKind::Tv);
        assert_eq!(DeviceKind::classify("smart outlet"), DeviceKind::Outlet);
        assert_eq!(DeviceKind::classify("curling iron"), DeviceKind::Appliance);
        assert_eq!(DeviceKind::classify("front door lock"), DeviceKind::Lock);
        assert_eq!(DeviceKind::classify("thing"), DeviceKind::Unknown);
    }

    #[test]
    fn unknown_has_no_goal_effects() {
        assert!(DeviceKind::Unknown.goal_effects().is_empty());
    }

    #[test]
    fn on_off_effects_are_opposed() {
        // For every kind, if `on` moves a property one way, `off` must move
        // it the other way (or not be listed at all).
        for kind in DeviceKind::ALL {
            for prop in EnvProperty::ALL {
                if let (Some(on), Some(off)) =
                    (kind.effect_on("on", prop), kind.effect_on("off", prop))
                {
                    assert_eq!(on, off.opposite(), "{kind:?} {prop:?}");
                }
            }
        }
    }

    #[test]
    fn effect_on_absent_property_is_none() {
        assert_eq!(
            DeviceKind::Light.effect_on("on", EnvProperty::Humidity),
            None
        );
        assert_eq!(
            DeviceKind::Lock.effect_on("lock", EnvProperty::Temperature),
            None
        );
    }
}
