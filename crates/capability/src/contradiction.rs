//! Command contradiction analysis for Actuator Race detection (paper §VI-A1).
//!
//! Two commands on the same actuator *contradict* when executing both leaves
//! the device in an unpredictable state: they set the same attribute to
//! different constant values (`on()` vs `off()`), or they are the same
//! parameterized command whose parameters may differ (`setLevel(10)` vs
//! `setLevel(90)` — decided later by the solver, reported here as
//! [`Contradiction::ParamDependent`]).

use crate::capability::{AttrEffect, Capability};

/// The result of comparing two commands on one actuator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Contradiction {
    /// The commands always leave the same attribute in different states.
    Direct,
    /// The commands write the same attribute from parameters; whether they
    /// contradict depends on the parameter values (constraint solving).
    ParamDependent,
    /// The commands do not interfere with each other's attribute writes.
    None,
}

/// Compares `cmd_a` and `cmd_b` (both belonging to `capability`) for
/// contradiction.
///
/// # Examples
///
/// ```
/// use hg_capability::capability::lookup;
/// use hg_capability::contradiction::{contradiction, Contradiction};
///
/// let sw = lookup("switch").unwrap();
/// assert_eq!(contradiction(sw, "on", "off"), Contradiction::Direct);
/// assert_eq!(contradiction(sw, "on", "on"), Contradiction::None);
/// ```
pub fn contradiction(capability: &Capability, cmd_a: &str, cmd_b: &str) -> Contradiction {
    let (Some(a), Some(b)) = (capability.command(cmd_a), capability.command(cmd_b)) else {
        return Contradiction::None;
    };
    let mut param_dependent = false;
    for ea in a.effects {
        for eb in b.effects {
            match (ea, eb) {
                (
                    AttrEffect::SetConst {
                        attribute: attr_a,
                        value: va,
                    },
                    AttrEffect::SetConst {
                        attribute: attr_b,
                        value: vb,
                    },
                ) if attr_a == attr_b && va != vb => {
                    return Contradiction::Direct;
                }
                (
                    AttrEffect::SetParam {
                        attribute: attr_a, ..
                    },
                    AttrEffect::SetParam {
                        attribute: attr_b, ..
                    },
                ) if attr_a == attr_b => {
                    param_dependent = true;
                }
                (
                    AttrEffect::SetConst {
                        attribute: attr_a, ..
                    },
                    AttrEffect::SetParam {
                        attribute: attr_b, ..
                    },
                )
                | (
                    AttrEffect::SetParam {
                        attribute: attr_a, ..
                    },
                    AttrEffect::SetConst {
                        attribute: attr_b, ..
                    },
                ) if attr_a == attr_b => {
                    // A constant write racing a parameterized write of the
                    // same attribute is a potential contradiction whenever
                    // the parameter differs from the constant.
                    param_dependent = true;
                }
                _ => {}
            }
        }
    }
    if param_dependent {
        Contradiction::ParamDependent
    } else {
        Contradiction::None
    }
}

/// The "undo" command for a given command within a capability: the command
/// that directly contradicts it, used to express `A2 = ¬A1` when detecting
/// Self-Disabling and Loop-Triggering threats.
///
/// Returns `None` when no single opposing command exists.
pub fn opposing_command(capability: &Capability, command: &str) -> Option<&'static str> {
    let cmds = capability.commands;
    cmds.iter()
        .find(|c| {
            c.name != command && contradiction(capability, command, c.name) == Contradiction::Direct
        })
        .map(|c| c.name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::lookup;

    #[test]
    fn on_off_contradict() {
        let sw = lookup("switch").unwrap();
        assert_eq!(contradiction(sw, "on", "off"), Contradiction::Direct);
        assert_eq!(contradiction(sw, "off", "on"), Contradiction::Direct);
    }

    #[test]
    fn lock_unlock_contradict() {
        let lock = lookup("lock").unwrap();
        assert_eq!(contradiction(lock, "lock", "unlock"), Contradiction::Direct);
    }

    #[test]
    fn same_command_no_direct_contradiction() {
        let sw = lookup("switch").unwrap();
        assert_eq!(contradiction(sw, "on", "on"), Contradiction::None);
    }

    #[test]
    fn set_level_is_param_dependent() {
        let sl = lookup("switchLevel").unwrap();
        assert_eq!(
            contradiction(sl, "setLevel", "setLevel"),
            Contradiction::ParamDependent
        );
    }

    #[test]
    fn alarm_modes_contradict() {
        let alarm = lookup("alarm").unwrap();
        assert_eq!(contradiction(alarm, "siren", "off"), Contradiction::Direct);
        assert_eq!(
            contradiction(alarm, "siren", "strobe"),
            Contradiction::Direct
        );
    }

    #[test]
    fn unknown_commands_are_none() {
        let sw = lookup("switch").unwrap();
        assert_eq!(contradiction(sw, "on", "fly"), Contradiction::None);
    }

    #[test]
    fn opposing_command_lookup() {
        let sw = lookup("switch").unwrap();
        assert_eq!(opposing_command(sw, "on"), Some("off"));
        assert_eq!(opposing_command(sw, "off"), Some("on"));
        let lock = lookup("lock").unwrap();
        assert_eq!(opposing_command(lock, "lock"), Some("unlock"));
        let tone = lookup("tone").unwrap();
        assert_eq!(opposing_command(tone, "beep"), None);
    }

    #[test]
    fn thermostat_mode_commands_contradict() {
        let t = lookup("thermostat").unwrap();
        assert_eq!(contradiction(t, "heat", "cool"), Contradiction::Direct);
        assert_eq!(contradiction(t, "heat", "off"), Contradiction::Direct);
        // Setpoint writes race param-dependently.
        assert_eq!(
            contradiction(t, "setHeatingSetpoint", "setHeatingSetpoint"),
            Contradiction::ParamDependent
        );
        // Heating vs cooling setpoints target different attributes.
        assert_eq!(
            contradiction(t, "setHeatingSetpoint", "setCoolingSetpoint"),
            Contradiction::None
        );
    }
}
