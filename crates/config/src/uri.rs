//! The configuration URI format (paper §VII-A, Fig. 7a).
//!
//! The instrumented app assembles a URI
//! `http://my.com/appname:<app>/<devRef>:<deviceId>/.../<var>:<value>/`
//! carrying the app name, the device-variable → 128-bit-device-id bindings
//! and the user-specified values, and ships it to the HOMEGUARD phone app.

use hg_rules::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// The configuration information one installation produces.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConfigInfo {
    /// The app name.
    pub app: String,
    /// `input variable name → device id` bindings.
    pub devices: BTreeMap<String, String>,
    /// `input variable name → user value` bindings.
    pub values: BTreeMap<String, Value>,
}

impl ConfigInfo {
    /// Creates an empty record for `app`.
    pub fn new(app: impl Into<String>) -> ConfigInfo {
        ConfigInfo {
            app: app.into(),
            ..Default::default()
        }
    }

    /// Adds a device binding.
    pub fn bind_device(mut self, input: &str, device_id: &str) -> Self {
        self.devices
            .insert(input.to_string(), device_id.to_string());
        self
    }

    /// Adds a user value.
    pub fn set_value(mut self, input: &str, value: Value) -> Self {
        self.values.insert(input.to_string(), value);
        self
    }

    /// Encodes as the collection URI.
    pub fn to_uri(&self) -> String {
        let mut uri = format!("http://my.com/appname:{}/", escape(&self.app));
        for (input, id) in &self.devices {
            uri.push_str(&format!("{}:{}/", escape(input), escape(id)));
        }
        for (input, value) in &self.values {
            uri.push_str(&format!(
                "{}:{}/",
                escape(input),
                escape(&encode_value(value))
            ));
        }
        uri
    }

    /// Parses a collection URI back.
    ///
    /// # Errors
    ///
    /// Returns a [`UriError`] when the prefix or any segment is malformed.
    /// Device bindings and values are told apart by the value shape: 32-hex
    /// device ids versus typed value encodings.
    pub fn from_uri(uri: &str) -> Result<ConfigInfo, UriError> {
        let rest = uri
            .strip_prefix("http://my.com/appname:")
            .ok_or(UriError::BadPrefix)?;
        let mut segments = rest.split('/').filter(|s| !s.is_empty());
        let app = unescape(segments.next().ok_or(UriError::MissingApp)?);
        let mut info = ConfigInfo::new(app);
        for seg in segments {
            let (key, value) = seg.split_once(':').ok_or(UriError::BadSegment)?;
            let key = unescape(key);
            let value = unescape(value);
            if let Some(v) = decode_value(&value) {
                info.values.insert(key, v);
            } else {
                info.devices.insert(key, value);
            }
        }
        Ok(info)
    }
}

/// URI parsing failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UriError {
    /// The URI does not start with the collection prefix.
    BadPrefix,
    /// No app name segment.
    MissingApp,
    /// A segment without `key:value` shape.
    BadSegment,
}

impl fmt::Display for UriError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UriError::BadPrefix => f.write_str("missing collection URI prefix"),
            UriError::MissingApp => f.write_str("missing app name"),
            UriError::BadSegment => f.write_str("malformed key:value segment"),
        }
    }
}

impl std::error::Error for UriError {}

fn encode_value(v: &Value) -> String {
    match v {
        Value::Num(n) => format!("n{n}"),
        Value::Sym(s) => format!("s{s}"),
        Value::Bool(b) => format!("b{b}"),
        Value::Null => "z".to_string(),
    }
}

fn decode_value(text: &str) -> Option<Value> {
    let mut chars = text.chars();
    match chars.next()? {
        'n' => chars.as_str().parse().ok().map(Value::Num),
        's' => Some(Value::Sym(chars.as_str().to_string())),
        'b' => chars.as_str().parse().ok().map(Value::Bool),
        'z' if chars.as_str().is_empty() => Some(Value::Null),
        _ => None,
    }
}

fn escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('/', "%2F")
        .replace(':', "%3A")
}

fn unescape(s: &str) -> String {
    s.replace("%3A", ":")
        .replace("%2F", "/")
        .replace("%25", "%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let info = ConfigInfo::new("ComfortTV")
            .bind_device("tv1", "0e0b741baf1c4e6d8f0a1b2c3d4e5f60")
            .bind_device("window1", "ffee741baf1c4e6d8f0a1b2c3d4e5f61")
            .set_value("threshold1", Value::from_natural(30));
        let uri = info.to_uri();
        assert!(uri.starts_with("http://my.com/appname:ComfortTV/"), "{uri}");
        let back = ConfigInfo::from_uri(&uri).unwrap();
        assert_eq!(back, info);
    }

    #[test]
    fn value_kinds_roundtrip() {
        let info = ConfigInfo::new("X")
            .set_value("a", Value::Num(-42))
            .set_value("b", Value::sym("Night"))
            .set_value("c", Value::Bool(true))
            .set_value("d", Value::Null);
        let back = ConfigInfo::from_uri(&info.to_uri()).unwrap();
        assert_eq!(back, info);
    }

    #[test]
    fn escaping_special_chars() {
        let info = ConfigInfo::new("App/With:Colons").set_value("x", Value::sym("a/b:c"));
        let back = ConfigInfo::from_uri(&info.to_uri()).unwrap();
        assert_eq!(back, info);
    }

    #[test]
    fn parse_errors() {
        assert_eq!(ConfigInfo::from_uri("nope"), Err(UriError::BadPrefix));
        assert_eq!(
            ConfigInfo::from_uri("http://my.com/appname:"),
            Err(UriError::MissingApp)
        );
        assert_eq!(
            ConfigInfo::from_uri("http://my.com/appname:A/garbage/"),
            Err(UriError::BadSegment)
        );
    }
}
