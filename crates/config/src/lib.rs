//! # hg-config — configuration-information collection (paper §VII)
//!
//! HomeGuard needs the install-time configuration of each app — which
//! physical devices were bound to which input slots (the 128-bit device
//! ids) and the user-specified values (thresholds, phone numbers) — to
//! detect CAI threats precisely. SmartThings offers no API for this, so the
//! paper's deployment path is:
//!
//! 1. [`instrument`](instrument::instrument) the app so its `updated()`
//!    method assembles a collection [URI](uri::ConfigInfo) (Listing 3);
//! 2. ship the URI to the HOMEGUARD phone app over
//!    [SMS or HTTP](channel::Channel) (§VII-B);
//! 3. the phone app parses the URI back into a [`ConfigInfo`] that the
//!    detector turns into device constraints and value substitutions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod instrument;
pub mod uri;

pub use channel::{Channel, SimulatedChannel, INSTRUMENTATION_OVERHEAD_MS};
pub use instrument::{instrument, Transport};
pub use uri::{ConfigInfo, UriError};
