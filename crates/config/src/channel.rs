//! Simulated messaging channels (paper §VII-B, §VIII-C).
//!
//! The paper measures the cloud-to-phone delivery latency of the collection
//! URI over 100 trials: ~3120 ms for SMS and ~1058 ms for HTTP/FCM, plus a
//! ~27 ms instrumentation overhead inside the cloud. We model each channel
//! as a log-normal-ish jittered delay around those means over a *simulated*
//! clock — no wall-clock sleeping — so the E8 experiment reproduces the
//! numbers instantly and deterministically per seed.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Channel kind with its measured mean latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Channel {
    /// Carrier SMS (`sendSmsMessage`).
    Sms,
    /// HTTP push through Firebase Cloud Messaging.
    Http,
}

impl Channel {
    /// The paper's measured mean one-way latency in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        match self {
            Channel::Sms => 3_120.0,
            Channel::Http => 1_058.0,
        }
    }
}

/// The in-cloud instrumentation overhead the paper times at 27 ms
/// (`T2 − T1`).
pub const INSTRUMENTATION_OVERHEAD_MS: f64 = 27.0;

/// A simulated delivery: produces per-trial latencies.
#[derive(Debug)]
pub struct SimulatedChannel {
    channel: Channel,
    rng: StdRng,
}

impl SimulatedChannel {
    /// A channel with a deterministic seed.
    pub fn new(channel: Channel, seed: u64) -> SimulatedChannel {
        SimulatedChannel {
            channel,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// One delivery: returns the simulated end-to-end latency in
    /// milliseconds (instrumentation overhead + transport).
    ///
    /// Transport jitter: uniform ±35% around the measured mean with an
    /// occasional (5%) retry tail of +1 mean, which is how carrier SMS
    /// latencies distribute in practice.
    pub fn deliver(&mut self, payload: &str) -> f64 {
        // Payload size adds a negligible serialization cost.
        let size_cost = payload.len() as f64 * 0.01;
        let mean = self.channel.mean_latency_ms();
        let jitter = self.rng.gen_range(-0.35..0.35);
        let tail = if self.rng.gen_bool(0.05) { mean } else { 0.0 };
        INSTRUMENTATION_OVERHEAD_MS + size_cost + mean * (1.0 + jitter) + tail
    }

    /// Runs `trials` deliveries of `payload`, returning the mean latency.
    pub fn mean_over(&mut self, payload: &str, trials: usize) -> f64 {
        let total: f64 = (0..trials).map(|_| self.deliver(payload)).sum();
        total / trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sms_slower_than_http() {
        let mut sms = SimulatedChannel::new(Channel::Sms, 1);
        let mut http = SimulatedChannel::new(Channel::Http, 1);
        let uri = "http://my.com/appname:ComfortTV/tv1:0e0b/threshold1:n3000/";
        assert!(sms.mean_over(uri, 100) > http.mean_over(uri, 100));
    }

    #[test]
    fn means_near_paper_values() {
        let uri = "http://my.com/appname:ComfortTV/tv1:0e0b/threshold1:n3000/";
        let sms = SimulatedChannel::new(Channel::Sms, 7).mean_over(uri, 1000);
        let http = SimulatedChannel::new(Channel::Http, 7).mean_over(uri, 1000);
        // Within 20% of the paper's 3120 ms / 1058 ms.
        assert!((sms - 3120.0).abs() < 3120.0 * 0.2, "sms mean {sms}");
        assert!((http - 1058.0).abs() < 1058.0 * 0.2, "http mean {http}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SimulatedChannel::new(Channel::Sms, 9).mean_over("x", 10);
        let b = SimulatedChannel::new(Channel::Sms, 9).mean_over("x", 10);
        assert_eq!(a, b);
    }

    #[test]
    fn latency_includes_overhead() {
        let mut c = SimulatedChannel::new(Channel::Http, 2);
        assert!(c.deliver("x") > INSTRUMENTATION_OVERHEAD_MS);
    }
}
