//! SmartApp instrumentation (paper §VII-A, Listing 3).
//!
//! The instrumenter rewrites a SmartApp so that its `updated()` lifecycle
//! method collects the configuration information (device bindings and user
//! values) and ships it to the HOMEGUARD phone app via
//! `collectConfigInfo`. The process is fully automatic: the input
//! declarations are discovered by the same front end the rule extractor
//! uses.

use hg_lang::ast::{Block, Item, MethodDecl, Program};
use hg_lang::parser::parse;
use hg_lang::pretty::print_program;
use hg_lang::Span;
use hg_symexec::inputs::{collect_inputs, InputType};

/// Which messaging transport the inserted code uses (paper §VII-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// `sendSmsMessage(patchedphone, uri)` — easy to deploy, carrier-bound.
    Sms,
    /// `httpPost` to Firebase Cloud Messaging — works internationally,
    /// needs a relay.
    Http,
}

/// Instruments `source`, returning the rewritten SmartApp source.
///
/// The rewrite: (1) adds the `patchedphone` (or registration-token) input,
/// (2) appends collection code to `updated()` (creating the method if the
/// app lacks one), (3) appends the `collectConfigInfo` helper that builds
/// the URI and sends it.
///
/// # Errors
///
/// Returns the parser's error when the source is not valid SmartApp Groovy.
pub fn instrument(
    source: &str,
    app_name: &str,
    transport: Transport,
) -> Result<String, hg_lang::ParseError> {
    let program = parse(source)?;
    let inputs = collect_inputs(&program);

    let mut devices_list = String::new();
    let mut values_list = String::new();
    for decl in &inputs {
        match &decl.input_type {
            InputType::Capability(_) | InputType::NonStandardDevice(_) => {
                if !devices_list.is_empty() {
                    devices_list.push_str(", ");
                }
                devices_list.push_str(&format!("[devRefStr: \"{0}\", devRef: {0}]", decl.name));
            }
            InputType::Other(_) => {}
            _ => {
                if !values_list.is_empty() {
                    values_list.push_str(", ");
                }
                values_list.push_str(&format!("[varStr: \"{0}\", var: {0}]", decl.name));
            }
        }
    }

    let target_input = match transport {
        Transport::Sms => {
            r#"input "patchedphone", "phone", required: true, title: "Phone number?""#
        }
        Transport::Http => {
            r#"input "patchedtoken", "text", required: true, title: "Registration token?""#
        }
    };
    let send_stmt = match transport {
        Transport::Sms => "sendSmsMessage(patchedphone, uri)",
        Transport::Http => {
            "httpPost([uri: \"https://fcm.googleapis.com/send\", body: uri]) { resp -> }"
        }
    };

    let collection_call = format!(
        "def appname = \"{app_name}\"\n\
         def devices = [{devices_list}]\n\
         def values = [{values_list}]\n\
         collectConfigInfo(appname, devices, values)"
    );

    // Re-emit the program with `updated()` augmented.
    let mut rewritten = program.clone();
    let injected: Program =
        parse(&format!("def updated() {{\n{collection_call}\n}}")).expect("generated code parses");
    let injected_stmts: Vec<_> = match injected.items.first() {
        Some(Item::Method(m)) => m.body.stmts.clone(),
        _ => unreachable!("generated exactly one method"),
    };
    let mut has_updated = false;
    for item in &mut rewritten.items {
        if let Item::Method(m) = item {
            if m.name == "updated" {
                m.body.stmts.extend(injected_stmts.iter().cloned());
                has_updated = true;
            }
        }
    }
    if !has_updated {
        rewritten.items.push(Item::Method(MethodDecl {
            name: "updated".to_string(),
            params: vec![],
            body: Block {
                stmts: injected_stmts,
                span: Span::dummy(),
            },
            span: Span::dummy(),
        }));
    }

    let helper = format!(
        r#"
{target_input}

def collectConfigInfo(appname, devices, values) {{
    def uri = "http://my.com/appname:${{appname}}/"
    devices.each {{ dev ->
        uri = uri + dev.devRefStr + ":" + dev.devRef.getId() + "/"
    }}
    values.each {{ val ->
        uri = uri + val.varStr + ":" + val.var + "/"
    }}
    {send_stmt}
}}
"#
    );

    Ok(format!("{}\n{helper}", print_program(&rewritten)))
}

#[cfg(test)]
mod tests {
    use super::*;

    const APP: &str = r#"
definition(name: "ComfortTV")
input "tv1", "capability.switch", title: "Which TV?"
input "threshold1", "number", title: "Higher than?"
def installed() { subscribe(tv1, "switch", onHandler) }
def updated() { unsubscribe() }
def onHandler(evt) { }
"#;

    #[test]
    fn instrumented_app_still_parses() {
        let out = instrument(APP, "ComfortTV", Transport::Sms).unwrap();
        parse(&out).unwrap_or_else(|e| panic!("instrumented app invalid: {e}\n{out}"));
    }

    #[test]
    fn collection_code_appended_to_updated() {
        let out = instrument(APP, "ComfortTV", Transport::Sms).unwrap();
        assert!(
            out.contains("collectConfigInfo(appname, devices, values)"),
            "{out}"
        );
        assert!(out.contains("devRefStr: \"tv1\""), "{out}");
        assert!(out.contains("varStr: \"threshold1\""), "{out}");
        assert!(out.contains("sendSmsMessage(patchedphone, uri)"), "{out}");
        assert!(out.contains("patchedphone"), "{out}");
    }

    #[test]
    fn http_transport_uses_post() {
        let out = instrument(APP, "ComfortTV", Transport::Http).unwrap();
        assert!(out.contains("httpPost"), "{out}");
        assert!(out.contains("patchedtoken"), "{out}");
        assert!(!out.contains("sendSmsMessage"), "{out}");
    }

    #[test]
    fn updated_created_when_missing() {
        let src = r#"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(lamp, "switch", h) }
def h(evt) { }
"#;
        let out = instrument(src, "NoUpdated", Transport::Sms).unwrap();
        let parsed = parse(&out).unwrap();
        assert!(parsed.method("updated").is_some());
    }

    #[test]
    fn original_behavior_preserved() {
        let out = instrument(APP, "ComfortTV", Transport::Sms).unwrap();
        let parsed = parse(&out).unwrap();
        // Original methods still present with original statements first.
        let updated = parsed.method("updated").unwrap();
        assert!(updated.body.stmts.len() > 1);
        assert!(parsed.method("installed").is_some());
        assert!(parsed.method("onHandler").is_some());
    }

    #[test]
    fn instrumentation_is_analyzable() {
        // The instrumented app must still extract the same rules.
        use hg_symexec::{extract, ExtractorConfig};
        let src = r#"
definition(name: "Mini")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.on() }
"#;
        let before = extract(src, "Mini", &ExtractorConfig::default()).unwrap();
        let out = instrument(src, "Mini", Transport::Sms).unwrap();
        let after = extract(&out, "Mini", &ExtractorConfig::default()).unwrap();
        assert_eq!(before.rules.len(), after.rules.len());
        assert_eq!(before.rules[0].actions, after.rules[0].actions);
    }
}
