//! Lexer for the SmartApp Groovy subset.
//!
//! The lexer is hand-written: SmartApps are small (a few hundred lines) and
//! the token grammar is simple, so a single forward pass with one character
//! of lookahead suffices. Line breaks are not emitted as tokens; instead each
//! token records whether a newline precedes it (see [`Token::newline_before`]),
//! which the parser uses for Groovy's newline-terminated statements.

use crate::error::{ParseError, ParseErrorKind, ParseResult};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Lexes `source` completely, returning the token stream terminated by
/// a single [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns a [`ParseError`] on unterminated strings/comments, malformed
/// numbers, or characters outside the subset.
///
/// # Examples
///
/// ```
/// use hg_lang::lexer::lex;
/// use hg_lang::token::TokenKind;
///
/// let tokens = lex("def x = 1").unwrap();
/// assert_eq!(tokens[0].kind, TokenKind::Def);
/// assert_eq!(tokens[2].kind, TokenKind::Assign);
/// assert_eq!(tokens.last().unwrap().kind, TokenKind::Eof);
/// ```
pub fn lex(source: &str) -> ParseResult<Vec<Token>> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    pending_newline: bool,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            pending_newline: false,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> ParseResult<Vec<Token>> {
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else {
                self.emit(TokenKind::Eof, start, line, col);
                return Ok(self.tokens);
            };
            match c {
                c if c.is_ascii_alphabetic() || c == '_' || c == '$' => self.word(start, line, col),
                c if c.is_ascii_digit() => self.number(start, line, col)?,
                '\'' => self.single_quoted(start, line, col)?,
                '"' => self.double_quoted(start, line, col)?,
                _ => self.punct(start, line, col)?,
            }
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn span_from(&self, start: usize, line: u32, col: u32) -> Span {
        Span::new(start, self.pos, line, col)
    }

    fn emit(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        let span = self.span_from(start, line, col);
        let newline_before = std::mem::take(&mut self.pending_newline);
        self.tokens.push(Token {
            kind,
            span,
            newline_before,
        });
    }

    /// Skips whitespace and comments, recording whether a newline was seen.
    fn skip_trivia(&mut self) -> ParseResult<()> {
        loop {
            match self.peek() {
                Some('\n') => {
                    self.pending_newline = true;
                    self.bump();
                }
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    let (line, col, start) = (self.line, self.col, self.pos);
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some('*') if self.peek2() == Some('/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some('\n') => {
                                self.pending_newline = true;
                                self.bump();
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(ParseError::new(
                                    Span::new(start, self.pos, line, col),
                                    ParseErrorKind::UnterminatedComment,
                                ));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn word(&mut self, start: usize, line: u32, col: u32) {
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                self.bump();
            } else {
                break;
            }
        }
        let text = &self.src[start..self.pos];
        let kind = TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()));
        self.emit(kind, start, line, col);
    }

    fn number(&mut self, start: usize, line: u32, col: u32) -> ParseResult<()> {
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        // A decimal point only counts when followed by a digit; `0..5` must
        // lex as `0` `..` `5` and `dev.on()` style is unreachable here.
        let mut is_decimal = false;
        if self.peek() == Some('.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            is_decimal = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text = &self.src[start..self.pos];
        let kind = if is_decimal {
            TokenKind::Decimal(text.to_string())
        } else {
            match text.parse::<i64>() {
                Ok(n) => TokenKind::Int(n),
                Err(_) => {
                    return Err(ParseError::new(
                        self.span_from(start, line, col),
                        ParseErrorKind::InvalidNumber(text.to_string()),
                    ));
                }
            }
        };
        self.emit(kind, start, line, col);
        Ok(())
    }

    fn string_body(
        &mut self,
        quote: char,
        start: usize,
        line: u32,
        col: u32,
    ) -> ParseResult<String> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => {
                    return Err(ParseError::new(
                        self.span_from(start, line, col),
                        ParseErrorKind::UnterminatedString,
                    ));
                }
                Some(c) if c == quote => {
                    self.bump();
                    return Ok(out);
                }
                Some('\\') => {
                    self.bump();
                    let escaped = self.bump().ok_or_else(|| {
                        ParseError::new(
                            self.span_from(start, line, col),
                            ParseErrorKind::UnterminatedString,
                        )
                    })?;
                    match escaped {
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        '\\' => out.push('\\'),
                        '\'' => out.push('\''),
                        '"' => out.push('"'),
                        '$' => out.push_str("\\$"), // keep escaped-$ distinct from interpolation
                        other => {
                            out.push('\\');
                            out.push(other);
                        }
                    }
                }
                Some(c) => {
                    // Raw `${` must survive into the GStr payload for the
                    // parser to split; braces inside the interpolation are
                    // tracked so a `}` within it does not end anything.
                    out.push(c);
                    self.bump();
                }
            }
        }
    }

    fn single_quoted(&mut self, start: usize, line: u32, col: u32) -> ParseResult<()> {
        let body = self.string_body('\'', start, line, col)?;
        // Single-quoted Groovy strings never interpolate; un-escape `\$`.
        let body = body.replace("\\$", "$");
        self.emit(TokenKind::Str(body), start, line, col);
        Ok(())
    }

    fn double_quoted(&mut self, start: usize, line: u32, col: u32) -> ParseResult<()> {
        let body = self.string_body('"', start, line, col)?;
        if body.contains("${") || body.contains('$') && has_bare_dollar_ident(&body) {
            self.emit(TokenKind::GStr(body), start, line, col);
        } else {
            self.emit(TokenKind::Str(body.replace("\\$", "$")), start, line, col);
        }
        Ok(())
    }

    fn punct(&mut self, start: usize, line: u32, col: u32) -> ParseResult<()> {
        let c = self.bump().expect("punct called at end of input");
        let two = |l: &Self| l.peek();
        let kind = match c {
            '(' => TokenKind::LParen,
            ')' => TokenKind::RParen,
            '{' => TokenKind::LBrace,
            '}' => TokenKind::RBrace,
            '[' => TokenKind::LBracket,
            ']' => TokenKind::RBracket,
            ',' => TokenKind::Comma,
            ':' => TokenKind::Colon,
            ';' => TokenKind::Semi,
            '%' => TokenKind::Percent,
            '*' => TokenKind::Star,
            '/' => TokenKind::Slash,
            '.' => {
                if two(self) == Some('.') {
                    self.bump();
                    TokenKind::DotDot
                } else {
                    TokenKind::Dot
                }
            }
            '?' => match two(self) {
                Some('.') => {
                    self.bump();
                    TokenKind::SafeDot
                }
                Some(':') => {
                    self.bump();
                    TokenKind::Elvis
                }
                _ => TokenKind::Question,
            },
            '=' => {
                if two(self) == Some('=') {
                    self.bump();
                    TokenKind::Eq
                } else {
                    TokenKind::Assign
                }
            }
            '!' => {
                if two(self) == Some('=') {
                    self.bump();
                    TokenKind::Ne
                } else {
                    TokenKind::Not
                }
            }
            '<' => {
                if two(self) == Some('=') {
                    self.bump();
                    TokenKind::Le
                } else {
                    TokenKind::Lt
                }
            }
            '>' => {
                if two(self) == Some('=') {
                    self.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            '+' => {
                if two(self) == Some('=') {
                    self.bump();
                    TokenKind::PlusAssign
                } else {
                    TokenKind::Plus
                }
            }
            '-' => match two(self) {
                Some('>') => {
                    self.bump();
                    TokenKind::Arrow
                }
                Some('=') => {
                    self.bump();
                    TokenKind::MinusAssign
                }
                _ => TokenKind::Minus,
            },
            '&' => {
                if two(self) == Some('&') {
                    self.bump();
                    TokenKind::AndAnd
                } else {
                    return Err(ParseError::new(
                        self.span_from(start, line, col),
                        ParseErrorKind::UnexpectedChar('&'),
                    ));
                }
            }
            '|' => {
                if two(self) == Some('|') {
                    self.bump();
                    TokenKind::OrOr
                } else {
                    return Err(ParseError::new(
                        self.span_from(start, line, col),
                        ParseErrorKind::UnexpectedChar('|'),
                    ));
                }
            }
            other => {
                return Err(ParseError::new(
                    self.span_from(start, line, col),
                    ParseErrorKind::UnexpectedChar(other),
                ));
            }
        };
        self.emit(kind, start, line, col);
        Ok(())
    }

    // Suppress dead-code warning for `bytes`; it exists for future ASCII fast
    // paths but `peek` is already fast enough for SmartApp-sized sources.
    #[allow(dead_code)]
    fn raw(&self) -> &[u8] {
        self.bytes
    }
}

/// Whether `body` contains a `$ident` interpolation (Groovy allows both
/// `$foo` and `${foo}` in GStrings).
fn has_bare_dollar_ident(body: &str) -> bool {
    let bytes = body.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'$' && i + 1 < bytes.len() {
            // `\$` was encoded as the two bytes `\` `$` by the escaper.
            let escaped = i > 0 && bytes[i - 1] == b'\\';
            let next = bytes[i + 1];
            if !escaped && (next.is_ascii_alphabetic() || next == b'_') {
                return true;
            }
        }
        i += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_listing1_snippet() {
        let toks = kinds(r#"input "tv1", "capability.switch", title: "Which TV?""#);
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("input".into()),
                TokenKind::Str("tv1".into()),
                TokenKind::Comma,
                TokenKind::Str("capability.switch".into()),
                TokenKind::Comma,
                TokenKind::Ident("title".into()),
                TokenKind::Colon,
                TokenKind::Str("Which TV?".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn distinguishes_numbers() {
        assert_eq!(kinds("30")[0], TokenKind::Int(30));
        assert_eq!(kinds("30.5")[0], TokenKind::Decimal("30.5".into()));
        // Ranges must not be eaten as decimals.
        assert_eq!(
            kinds("0..5"),
            vec![
                TokenKind::Int(0),
                TokenKind::DotDot,
                TokenKind::Int(5),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn newline_tracking() {
        let toks = lex("a\nb c").unwrap();
        assert!(!toks[0].newline_before);
        assert!(toks[1].newline_before);
        assert!(!toks[2].newline_before);
    }

    #[test]
    fn comments_are_skipped_but_preserve_newlines() {
        let toks = lex("a // comment\nb /* multi\nline */ c").unwrap();
        let ks: Vec<_> = toks.iter().map(|t| t.kind.clone()).collect();
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof
            ]
        );
        assert!(toks[1].newline_before);
        assert!(toks[2].newline_before);
    }

    #[test]
    fn gstring_detection() {
        assert!(matches!(kinds(r#""plain""#)[0], TokenKind::Str(_)));
        assert!(matches!(
            kinds(r#""has ${x} interp""#)[0],
            TokenKind::GStr(_)
        ));
        assert!(matches!(kinds(r#""has $x interp""#)[0], TokenKind::GStr(_)));
        assert!(matches!(kinds(r#""price \$5""#)[0], TokenKind::Str(_)));
    }

    #[test]
    fn escapes_in_strings() {
        assert_eq!(kinds(r#"'a\nb'"#)[0], TokenKind::Str("a\nb".into()));
        assert_eq!(kinds(r#"'don\'t'"#)[0], TokenKind::Str("don't".into()));
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("a?.b ?: c -> d"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::SafeDot,
                TokenKind::Ident("b".into()),
                TokenKind::Elvis,
                TokenKind::Ident("c".into()),
                TokenKind::Arrow,
                TokenKind::Ident("d".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("a <= b >= c == d != e"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Le,
                TokenKind::Ident("b".into()),
                TokenKind::Ge,
                TokenKind::Ident("c".into()),
                TokenKind::Eq,
                TokenKind::Ident("d".into()),
                TokenKind::Ne,
                TokenKind::Ident("e".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("'oops").is_err());
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        assert!(lex("/* never ends").is_err());
    }

    #[test]
    fn unexpected_character_is_an_error() {
        assert!(lex("a # b").is_err());
        assert!(lex("a & b").is_err());
    }

    #[test]
    fn compound_assignment() {
        assert_eq!(
            kinds("x += 1"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::PlusAssign,
                TokenKind::Int(1),
                TokenKind::Eof
            ]
        );
    }
}
