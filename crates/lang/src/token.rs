//! Tokens of the SmartApp Groovy subset.

use crate::span::Span;
use std::fmt;

/// A lexed token: a [`TokenKind`] plus its [`Span`] in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is, with any literal payload.
    pub kind: TokenKind,
    /// Where the token appears in the source.
    pub span: Span,
    /// Whether at least one line break separates this token from the
    /// previous one. Groovy statements are newline-terminated, so the parser
    /// consults this flag when deciding where a statement ends.
    pub newline_before: bool,
}

/// The kinds of token the lexer produces.
///
/// Numeric literals keep their textual distinction between integers and
/// decimals because SmartApp thresholds are frequently decimal
/// (`threshold > 30.5`) and the symbolic executor models them as scaled
/// fixed-point integers.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or non-keyword word, e.g. `tv1`, `subscribe`.
    Ident(String),
    /// Integer literal, e.g. `42`.
    Int(i64),
    /// Decimal literal, e.g. `3.5`. Stored as its textual digits to avoid
    /// committing to a float representation in the lexer.
    Decimal(String),
    /// Single-quoted string: no interpolation, e.g. `'switch'`.
    Str(String),
    /// Double-quoted string which may contain `${...}` interpolation.
    /// The raw text between the quotes is kept; the parser splits it.
    GStr(String),

    // Keywords.
    /// `def`
    Def,
    /// `if`
    If,
    /// `else`
    Else,
    /// `switch`
    Switch,
    /// `case`
    Case,
    /// `default`
    Default,
    /// `return`
    Return,
    /// `true`
    True,
    /// `false`
    False,
    /// `null`
    Null,
    /// `for`
    For,
    /// `while`
    While,
    /// `in`
    In,
    /// `break`
    Break,
    /// `continue`
    Continue,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `?.`
    SafeDot,
    /// `->`
    Arrow,
    /// `?`
    Question,
    /// `?:`
    Elvis,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Not,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `..`
    DotDot,

    /// End of input sentinel.
    Eof,
}

impl TokenKind {
    /// Human-readable description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(n) => format!("integer `{n}`"),
            TokenKind::Decimal(s) => format!("decimal `{s}`"),
            TokenKind::Str(s) => format!("string {s:?}"),
            TokenKind::GStr(s) => format!("string \"{s}\""),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.symbol()),
        }
    }

    /// The literal spelling of keyword/punctuation tokens.
    fn symbol(&self) -> &'static str {
        match self {
            TokenKind::Def => "def",
            TokenKind::If => "if",
            TokenKind::Else => "else",
            TokenKind::Switch => "switch",
            TokenKind::Case => "case",
            TokenKind::Default => "default",
            TokenKind::Return => "return",
            TokenKind::True => "true",
            TokenKind::False => "false",
            TokenKind::Null => "null",
            TokenKind::For => "for",
            TokenKind::While => "while",
            TokenKind::In => "in",
            TokenKind::Break => "break",
            TokenKind::Continue => "continue",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Comma => ",",
            TokenKind::Colon => ":",
            TokenKind::Semi => ";",
            TokenKind::Dot => ".",
            TokenKind::SafeDot => "?.",
            TokenKind::Arrow => "->",
            TokenKind::Question => "?",
            TokenKind::Elvis => "?:",
            TokenKind::Assign => "=",
            TokenKind::PlusAssign => "+=",
            TokenKind::MinusAssign => "-=",
            TokenKind::Eq => "==",
            TokenKind::Ne => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Not => "!",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::DotDot => "..",
            _ => unreachable!("literal tokens handled in describe()"),
        }
    }

    /// Looks up the keyword for `word`, if any.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        Some(match word {
            "def" => TokenKind::Def,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "switch" => TokenKind::Switch,
            "case" => TokenKind::Case,
            "default" => TokenKind::Default,
            "return" => TokenKind::Return,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "null" => TokenKind::Null,
            "for" => TokenKind::For,
            "while" => TokenKind::While,
            "in" => TokenKind::In,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            _ => return None,
        })
    }

    /// Whether this token can begin an expression. Used by the parser to
    /// recognize Groovy "command expressions" (`input "tv1", "capability..."`).
    pub fn starts_expression(&self) -> bool {
        matches!(
            self,
            TokenKind::Ident(_)
                | TokenKind::Int(_)
                | TokenKind::Decimal(_)
                | TokenKind::Str(_)
                | TokenKind::GStr(_)
                | TokenKind::True
                | TokenKind::False
                | TokenKind::Null
                | TokenKind::LParen
                | TokenKind::LBracket
                | TokenKind::LBrace
                | TokenKind::Not
                | TokenKind::Minus
        )
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("def"), Some(TokenKind::Def));
        assert_eq!(TokenKind::keyword("switch"), Some(TokenKind::Switch));
        assert_eq!(TokenKind::keyword("subscribe"), None);
    }

    #[test]
    fn describe_literals() {
        assert_eq!(TokenKind::Int(5).describe(), "integer `5`");
        assert!(TokenKind::Ident("tv1".into()).describe().contains("tv1"));
        assert_eq!(TokenKind::Elvis.describe(), "`?:`");
    }

    #[test]
    fn expression_starters() {
        assert!(TokenKind::Ident("x".into()).starts_expression());
        assert!(TokenKind::Str("s".into()).starts_expression());
        assert!(TokenKind::LBracket.starts_expression());
        assert!(!TokenKind::Comma.starts_expression());
        assert!(!TokenKind::Assign.starts_expression());
    }
}
