//! Pretty-printer: emits parseable Groovy-subset source from an AST.
//!
//! Used by the configuration-collection instrumenter (`hg-config`) to re-emit
//! a SmartApp after inserting collection code, and by tests to check the
//! round-trip property `parse(print(parse(s))) == parse(s)`.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole program as source text.
pub fn print_program(program: &Program) -> String {
    let mut p = Printer::new();
    for item in &program.items {
        match item {
            Item::Method(m) => p.method(m),
            Item::Stmt(s) => p.stmt(s),
        }
        p.blank_line();
    }
    p.out
}

/// Renders a single expression as source text.
pub fn print_expr(expr: &Expr) -> String {
    let mut p = Printer::new();
    p.expr(expr, 0);
    p.out
}

/// Renders a single statement as source text (no trailing newline).
pub fn print_stmt(stmt: &Stmt) -> String {
    let mut p = Printer::new();
    p.stmt(stmt);
    p.out.trim_end().to_string()
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Self {
        Printer {
            out: String::new(),
            indent: 0,
        }
    }

    fn line_start(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
    }

    fn nl(&mut self) {
        self.out.push('\n');
    }

    fn blank_line(&mut self) {
        if !self.out.ends_with("\n\n") {
            self.nl();
        }
    }

    fn method(&mut self, m: &MethodDecl) {
        self.line_start();
        let _ = write!(self.out, "def {}(", m.name);
        for (i, p) in m.params.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.out.push_str(&p.name);
            if let Some(d) = &p.default {
                self.out.push_str(" = ");
                self.expr(d, 0);
            }
        }
        self.out.push_str(") ");
        self.braced_block(&m.body);
        self.nl();
    }

    fn braced_block(&mut self, b: &Block) {
        self.out.push('{');
        self.nl();
        self.indent += 1;
        for s in &b.stmts {
            self.stmt(s);
        }
        self.indent -= 1;
        self.line_start();
        self.out.push('}');
    }

    fn stmt(&mut self, s: &Stmt) {
        self.line_start();
        match &s.kind {
            StmtKind::Expr(e) => self.expr(e, 0),
            StmtKind::Def { name, init } => {
                let _ = write!(self.out, "def {name}");
                if let Some(e) = init {
                    self.out.push_str(" = ");
                    self.expr(e, 0);
                }
            }
            StmtKind::Assign { target, op, value } => {
                self.expr(target, 0);
                self.out.push_str(match op {
                    AssignOp::Set => " = ",
                    AssignOp::Add => " += ",
                    AssignOp::Sub => " -= ",
                });
                self.expr(value, 0);
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.out.push_str("if (");
                self.expr(cond, 0);
                self.out.push_str(") ");
                self.braced_block(then_branch);
                if let Some(eb) = else_branch {
                    self.out.push_str(" else ");
                    // Re-sugar `else if`.
                    if eb.stmts.len() == 1 {
                        if let StmtKind::If { .. } = eb.stmts[0].kind {
                            let rendered = print_stmt(&eb.stmts[0]);
                            // Splice the nested if at the current indent.
                            self.out.push_str(rendered.trim_start());
                            self.nl();
                            return;
                        }
                    }
                    self.braced_block(eb);
                }
            }
            StmtKind::Switch {
                subject,
                cases,
                default,
            } => {
                self.out.push_str("switch (");
                self.expr(subject, 0);
                self.out.push_str(") {");
                self.nl();
                self.indent += 1;
                for c in cases {
                    self.line_start();
                    self.out.push_str("case ");
                    self.expr(&c.value, 0);
                    self.out.push(':');
                    self.nl();
                    self.indent += 1;
                    for st in &c.body.stmts {
                        self.stmt(st);
                    }
                    if !matches!(c.body.stmts.last().map(|s| &s.kind), Some(StmtKind::Break)) {
                        self.line_start();
                        self.out.push_str("break");
                        self.nl();
                    }
                    self.indent -= 1;
                }
                if let Some(d) = default {
                    self.line_start();
                    self.out.push_str("default:");
                    self.nl();
                    self.indent += 1;
                    for st in &d.stmts {
                        self.stmt(st);
                    }
                    self.indent -= 1;
                }
                self.indent -= 1;
                self.line_start();
                self.out.push('}');
            }
            StmtKind::Return(value) => {
                self.out.push_str("return");
                if let Some(e) = value {
                    self.out.push(' ');
                    self.expr(e, 0);
                }
            }
            StmtKind::ForIn {
                var,
                iterable,
                body,
            } => {
                let _ = write!(self.out, "for ({var} in ");
                self.expr(iterable, 0);
                self.out.push_str(") ");
                self.braced_block(body);
            }
            StmtKind::While { cond, body } => {
                self.out.push_str("while (");
                self.expr(cond, 0);
                self.out.push_str(") ");
                self.braced_block(body);
            }
            StmtKind::Break => self.out.push_str("break"),
            StmtKind::Continue => self.out.push_str("continue"),
        }
        self.nl();
    }

    /// `level` is the precedence of the surrounding operator, used to decide
    /// when parentheses are required.
    fn expr(&mut self, e: &Expr, level: u8) {
        match &e.kind {
            ExprKind::Int(n) => {
                let _ = write!(self.out, "{n}");
            }
            ExprKind::Decimal(d) => self.out.push_str(d),
            ExprKind::Str(s) => {
                let _ = write!(self.out, "\"{}\"", escape(s));
            }
            ExprKind::GStr(parts) => {
                self.out.push('"');
                for part in parts {
                    match part {
                        GStrPart::Lit(s) => self.out.push_str(&escape(s)),
                        GStrPart::Interp(inner) => {
                            self.out.push_str("${");
                            self.expr(inner, 0);
                            self.out.push('}');
                        }
                    }
                }
                self.out.push('"');
            }
            ExprKind::Bool(b) => {
                let _ = write!(self.out, "{b}");
            }
            ExprKind::Null => self.out.push_str("null"),
            ExprKind::ListLit(items) => {
                self.out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(item, 0);
                }
                self.out.push(']');
            }
            ExprKind::MapLit(entries) => {
                if entries.is_empty() {
                    self.out.push_str("[:]");
                    return;
                }
                self.out.push('[');
                for (i, entry) in entries.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    match &entry.key {
                        MapKey::Ident(s) => self.out.push_str(s),
                        MapKey::Str(s) => {
                            let _ = write!(self.out, "\"{}\"", escape(s));
                        }
                        MapKey::Int(n) => {
                            let _ = write!(self.out, "{n}");
                        }
                    }
                    self.out.push_str(": ");
                    self.expr(&entry.value, 0);
                }
                self.out.push(']');
            }
            ExprKind::Ident(name) => self.out.push_str(name),
            ExprKind::Prop { recv, name, safe } => {
                self.expr(recv, POSTFIX_LEVEL);
                self.out.push_str(if *safe { "?." } else { "." });
                self.out.push_str(name);
            }
            ExprKind::Index { recv, index } => {
                self.expr(recv, POSTFIX_LEVEL);
                self.out.push('[');
                self.expr(index, 0);
                self.out.push(']');
            }
            ExprKind::Call {
                recv,
                name,
                args,
                closure,
                safe,
            } => {
                if let Some(r) = recv {
                    self.expr(r, POSTFIX_LEVEL);
                    self.out.push_str(if *safe { "?." } else { "." });
                }
                self.out.push_str(name);
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    if let Some(n) = &a.name {
                        let _ = write!(self.out, "{n}: ");
                    }
                    self.expr(&a.value, 0);
                }
                self.out.push(')');
                if let Some(c) = closure {
                    self.out.push(' ');
                    self.closure(c);
                }
            }
            ExprKind::Closure(c) => self.closure(c),
            ExprKind::Unary { op, expr } => {
                self.out.push_str(op.symbol());
                self.expr(expr, UNARY_LEVEL);
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let my_level = op_level(*op);
                let need_parens = my_level < level;
                if need_parens {
                    self.out.push('(');
                }
                self.expr(lhs, my_level);
                let _ = write!(self.out, " {} ", op.symbol());
                self.expr(rhs, my_level + 1);
                if need_parens {
                    self.out.push(')');
                }
            }
            ExprKind::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                if level > 0 {
                    self.out.push('(');
                }
                self.expr(cond, 1);
                self.out.push_str(" ? ");
                self.expr(then_expr, 0);
                self.out.push_str(" : ");
                self.expr(else_expr, 0);
                if level > 0 {
                    self.out.push(')');
                }
            }
            ExprKind::Elvis { value, fallback } => {
                if level > 0 {
                    self.out.push('(');
                }
                self.expr(value, 1);
                self.out.push_str(" ?: ");
                self.expr(fallback, 0);
                if level > 0 {
                    self.out.push(')');
                }
            }
            ExprKind::Range { lo, hi } => {
                self.expr(lo, RANGE_PRINT_LEVEL + 1);
                self.out.push_str("..");
                self.expr(hi, RANGE_PRINT_LEVEL + 1);
            }
        }
    }

    fn closure(&mut self, c: &Closure) {
        self.out.push('{');
        if c.explicit_params {
            self.out.push(' ');
            for (i, p) in c.params.iter().enumerate() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                self.out.push_str(&p.name);
            }
            self.out.push_str(" ->");
        }
        self.nl();
        self.indent += 1;
        for s in &c.body.stmts {
            self.stmt(s);
        }
        self.indent -= 1;
        self.line_start();
        self.out.push('}');
    }
}

const POSTFIX_LEVEL: u8 = 10;
const UNARY_LEVEL: u8 = 9;
const RANGE_PRINT_LEVEL: u8 = 3;

fn op_level(op: BinaryOp) -> u8 {
    match op {
        BinaryOp::Or => 1,
        BinaryOp::And => 2,
        BinaryOp::Eq
        | BinaryOp::Ne
        | BinaryOp::Lt
        | BinaryOp::Le
        | BinaryOp::Gt
        | BinaryOp::Ge
        | BinaryOp::In => 3,
        BinaryOp::Add | BinaryOp::Sub => 5,
        BinaryOp::Mul | BinaryOp::Div | BinaryOp::Rem => 6,
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '$' => out.push_str("\\$"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expression};

    fn roundtrip(src: &str) {
        let p1 = parse(src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(
            strip_spans_program(&p1),
            strip_spans_program(&p2),
            "printed:\n{printed}"
        );
    }

    // Structural equality modulo spans: compare printed forms, which do not
    // contain spans by construction.
    fn strip_spans_program(p: &Program) -> String {
        print_program(p)
    }

    #[test]
    fn roundtrip_listing1() {
        roundtrip(
            r#"
input "tv1", "capability.switch", title: "Which TV?"
def installed() {
    subscribe(tv1, "switch", onHandler)
}
def onHandler(evt) {
    def t = tSensor.currentValue("temperature")
    if ((evt.value == "on") && (t > threshold1)) { turnOnWindow() }
}
"#,
        );
    }

    #[test]
    fn roundtrip_switch_and_loops() {
        roundtrip(
            r#"
def h(evt) {
    switch (evt.value) {
        case "on":
            a.on()
            break
        default:
            a.off()
    }
    for (s in list) { s.refresh() }
    while (x < 3) { x += 1 }
}
"#,
        );
    }

    #[test]
    fn roundtrip_expressions() {
        for src in [
            "a + b * c",
            "(a + b) * c",
            "a ? b : c",
            "x ?: y",
            "!done && ready",
            "t >= lo && t <= hi",
            "[1, 2, 3]",
            "[k: v, j: w]",
            "dev.currentValue(\"temperature\")",
            "xs.each { it.on() }",
            "0..5",
        ] {
            let e1 = parse_expression(src).unwrap();
            let printed = print_expr(&e1);
            let e2 = parse_expression(&printed)
                .unwrap_or_else(|err| panic!("reparse `{printed}`: {err}"));
            assert_eq!(print_expr(&e1), print_expr(&e2), "src: {src}");
        }
    }

    #[test]
    fn parens_added_when_needed() {
        // (a + b) * c must not print as a + b * c.
        let e = parse_expression("(a + b) * c").unwrap();
        let printed = print_expr(&e);
        let re = parse_expression(&printed).unwrap();
        assert_eq!(print_expr(&re), printed);
        assert!(printed.contains('('), "{printed}");
    }

    #[test]
    fn escapes_strings() {
        let e = parse_expression(r#""a\"b""#).unwrap();
        assert_eq!(print_expr(&e), r#""a\"b""#);
    }

    #[test]
    fn gstring_printing() {
        let e = parse_expression(r#""t=${t} end""#).unwrap();
        let printed = print_expr(&e);
        assert!(printed.contains("${t}"), "{printed}");
        let re = parse_expression(&printed).unwrap();
        assert_eq!(print_expr(&re), printed);
    }
}
