//! # hg-lang — SmartApp Groovy-subset front end
//!
//! SmartThings SmartApps are Groovy programs. HomeGuard's rule extractor
//! needs to symbolically execute them, and since no Groovy front end exists
//! in Rust this crate implements one from scratch for the language subset
//! SmartApps actually use (the SmartThings sandbox bans the dynamic parts of
//! Groovy — see §VIII-D2 of the paper).
//!
//! The crate provides:
//!
//! * [`lexer::lex`] — tokenization with Groovy newline semantics;
//! * [`parser::parse`] — a full parse to the [`ast`] types, including Groovy
//!   command expressions (`input "tv1", "capability.switch"`), trailing
//!   closures (`preferences { ... }`) and GString interpolation;
//! * [`pretty`] — a source emitter used by the configuration-collection
//!   instrumenter.
//!
//! # Examples
//!
//! ```
//! use hg_lang::parser::parse;
//!
//! let app = parse(r#"
//!     input "tv1", "capability.switch", title: "Which TV?"
//!     def installed() {
//!         subscribe(tv1, "switch", onHandler)
//!     }
//!     def onHandler(evt) {
//!         if (evt.value == "on") { window1.on() }
//!     }
//! "#).expect("valid SmartApp");
//! assert_eq!(app.methods().count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;

pub use ast::Program;
pub use error::{ParseError, ParseErrorKind, ParseResult};
pub use parser::parse;
pub use span::Span;
