//! Lexing and parsing errors.

use crate::span::Span;
use std::fmt;

/// An error produced while lexing or parsing SmartApp source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where in the source the error was detected.
    pub span: Span,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The different failure modes of the lexer and parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// A character that cannot begin any token.
    UnexpectedChar(char),
    /// A string literal that reaches end of file before its closing quote.
    UnterminatedString,
    /// A `/* ... */` comment that is never closed.
    UnterminatedComment,
    /// A `${ ... }` interpolation that is never closed.
    UnterminatedInterpolation,
    /// A numeric literal that does not parse (overflow, malformed).
    InvalidNumber(String),
    /// The parser wanted `expected` but found `found`.
    UnexpectedToken {
        /// What the parser wanted.
        expected: String,
        /// What it found instead.
        found: String,
    },
    /// Source ended in the middle of a construct.
    UnexpectedEof {
        /// What the parser wanted.
        expected: String,
    },
    /// A construct the Groovy subset deliberately does not support.
    Unsupported(String),
}

impl ParseError {
    /// Creates an error at `span`.
    pub fn new(span: Span, kind: ParseErrorKind) -> Self {
        ParseError { span, kind }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: ", self.span)?;
        match &self.kind {
            ParseErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            ParseErrorKind::UnterminatedString => write!(f, "unterminated string literal"),
            ParseErrorKind::UnterminatedComment => write!(f, "unterminated block comment"),
            ParseErrorKind::UnterminatedInterpolation => {
                write!(f, "unterminated ${{...}} interpolation")
            }
            ParseErrorKind::InvalidNumber(s) => write!(f, "invalid numeric literal `{s}`"),
            ParseErrorKind::UnexpectedToken { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            ParseErrorKind::UnexpectedEof { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
            ParseErrorKind::Unsupported(what) => {
                write!(f, "unsupported construct: {what}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Convenience alias for parse results.
pub type ParseResult<T> = Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location_and_kind() {
        let e = ParseError::new(
            Span::new(0, 1, 4, 2),
            ParseErrorKind::UnexpectedToken {
                expected: "`)`".into(),
                found: "`,`".into(),
            },
        );
        let s = e.to_string();
        assert!(s.contains("4:2"), "{s}");
        assert!(s.contains("expected `)`"), "{s}");
    }

    #[test]
    fn error_trait_is_implemented() {
        let e = ParseError::new(Span::dummy(), ParseErrorKind::UnterminatedString);
        let _: &dyn std::error::Error = &e;
    }
}
