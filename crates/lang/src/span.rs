//! Source positions and spans.
//!
//! Every token and AST node carries a [`Span`] so that later stages
//! (the symbolic executor, the instrumenter, error reporting) can point
//! back into the original SmartApp source.

use std::fmt;

/// A half-open byte range `[start, end)` into a source file, together with
/// the 1-based line/column of its start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first byte of the spanned text.
    pub start: usize,
    /// Byte offset one past the last byte of the spanned text.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column number of `start`.
    pub col: u32,
}

impl Span {
    /// Creates a new span.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// A zero-width span at the origin, used for synthesized nodes.
    pub fn dummy() -> Self {
        Span {
            start: 0,
            end: 0,
            line: 0,
            col: 0,
        }
    }

    /// Returns the smallest span covering both `self` and `other`.
    ///
    /// The line/column information is taken from whichever span starts first.
    pub fn merge(self, other: Span) -> Span {
        let (first, _) = if self.start <= other.start {
            (self, other)
        } else {
            (other, self)
        };
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: first.line,
            col: first.col,
        }
    }

    /// Length of the spanned text in bytes.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extracts the spanned slice out of `source`.
    ///
    /// Returns an empty string when the span is out of bounds, which can only
    /// happen if the span is applied to a different source than it came from.
    pub fn slice<'a>(&self, source: &'a str) -> &'a str {
        source.get(self.start..self.end).unwrap_or("")
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_orders_by_start() {
        let a = Span::new(10, 20, 2, 1);
        let b = Span::new(5, 12, 1, 6);
        let m = a.merge(b);
        assert_eq!(m.start, 5);
        assert_eq!(m.end, 20);
        assert_eq!(m.line, 1);
        assert_eq!(m.col, 6);
    }

    #[test]
    fn slice_is_safe_out_of_bounds() {
        let s = Span::new(100, 200, 1, 1);
        assert_eq!(s.slice("short"), "");
    }

    #[test]
    fn display_shows_line_col() {
        let s = Span::new(0, 1, 3, 7);
        assert_eq!(s.to_string(), "3:7");
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(Span::new(3, 8, 1, 4).len(), 5);
        assert!(Span::dummy().is_empty());
    }
}
