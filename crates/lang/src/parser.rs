//! Recursive-descent parser for the SmartApp Groovy subset.
//!
//! Statements are newline-terminated (Groovy style), which the parser decides
//! using the `newline_before` flag the lexer records on each token.
//! Expressions use Pratt-style precedence climbing. Two Groovy syntactic
//! idioms that SmartApps rely on heavily are supported:
//!
//! * **command expressions** — top-level calls without parentheses, e.g.
//!   `input "tv1", "capability.switch", title: "Which TV?"`;
//! * **trailing closures** — `preferences { ... }`, `devices.each { it.on() }`,
//!   including the combined form `section("x") { ... }`.

use crate::ast::*;
use crate::error::{ParseError, ParseErrorKind, ParseResult};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses a complete SmartApp source file.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered; SmartApps are small enough
/// that single-error reporting matches how the SmartThings IDE behaves.
///
/// # Examples
///
/// ```
/// use hg_lang::parser::parse;
///
/// let program = parse(r#"
///     input "tv1", "capability.switch", title: "Which TV?"
///     def installed() {
///         subscribe(tv1, "switch", onHandler)
///     }
/// "#).unwrap();
/// assert!(program.method("installed").is_some());
/// ```
pub fn parse(source: &str) -> ParseResult<Program> {
    let tokens = lex(source)?;
    Parser::new(tokens).program()
}

/// Parses a single expression, used for GString interpolations and tests.
pub fn parse_expression(source: &str) -> ParseResult<Expr> {
    let tokens = lex(source)?;
    let mut p = Parser::new(tokens);
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek_at(&self, offset: usize) -> &Token {
        let idx = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[idx]
    }

    fn bump(&mut self) -> Token {
        let tok = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> ParseResult<Token> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            Err(self.unexpected(&kind.describe()))
        }
    }

    fn expect_eof(&mut self) -> ParseResult<()> {
        if self.at(&TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.unexpected("end of input"))
        }
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        let tok = self.peek();
        if tok.kind == TokenKind::Eof {
            ParseError::new(
                tok.span,
                ParseErrorKind::UnexpectedEof {
                    expected: expected.into(),
                },
            )
        } else {
            ParseError::new(
                tok.span,
                ParseErrorKind::UnexpectedToken {
                    expected: expected.into(),
                    found: tok.kind.describe(),
                },
            )
        }
    }

    // ----- program structure -------------------------------------------------

    fn program(&mut self) -> ParseResult<Program> {
        let mut items = Vec::new();
        while !self.at(&TokenKind::Eof) {
            if self.at_method_decl() {
                items.push(Item::Method(self.method_decl()?));
            } else {
                items.push(Item::Stmt(self.stmt()?));
            }
            while self.eat(&TokenKind::Semi) {}
        }
        Ok(Program { items })
    }

    /// A method declaration is `def ident (` — distinguishing it from
    /// `def ident = expr` variable definitions.
    fn at_method_decl(&self) -> bool {
        self.at(&TokenKind::Def)
            && matches!(self.peek_at(1).kind, TokenKind::Ident(_))
            && self.peek_at(2).kind == TokenKind::LParen
    }

    fn method_decl(&mut self) -> ParseResult<MethodDecl> {
        let start = self.expect(TokenKind::Def)?.span;
        let name = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                let pname = self.ident()?;
                let default = if self.eat(&TokenKind::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                params.push(Param {
                    name: pname,
                    default,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let body = self.block()?;
        let span = start.merge(body.span);
        Ok(MethodDecl {
            name,
            params,
            body,
            span,
        })
    }

    fn ident(&mut self) -> ParseResult<String> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            // Contextual keywords are legal identifiers in Groovy member
            // positions (`evt.default` is unlikely but harmless to accept).
            TokenKind::In => {
                self.bump();
                Ok("in".to_string())
            }
            _ => Err(self.unexpected("identifier")),
        }
    }

    fn block(&mut self) -> ParseResult<Block> {
        let open = self.expect(TokenKind::LBrace)?.span;
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            if self.at(&TokenKind::Eof) {
                return Err(self.unexpected("`}`"));
            }
            stmts.push(self.stmt()?);
            while self.eat(&TokenKind::Semi) {}
        }
        let close = self.expect(TokenKind::RBrace)?.span;
        Ok(Block {
            stmts,
            span: open.merge(close),
        })
    }

    /// Either a braced block or a single statement (for brace-less `if`).
    fn block_or_single_stmt(&mut self) -> ParseResult<Block> {
        if self.at(&TokenKind::LBrace) {
            self.block()
        } else {
            let stmt = self.stmt()?;
            let span = stmt.span;
            Ok(Block {
                stmts: vec![stmt],
                span,
            })
        }
    }

    // ----- statements ---------------------------------------------------------

    fn stmt(&mut self) -> ParseResult<Stmt> {
        let start = self.peek().span;
        match self.peek_kind() {
            TokenKind::Def => self.def_stmt(),
            TokenKind::If => self.if_stmt(),
            TokenKind::Switch => self.switch_stmt(),
            TokenKind::Return => {
                self.bump();
                let value = if self.stmt_boundary() {
                    None
                } else {
                    Some(self.expr()?)
                };
                let span = match &value {
                    Some(e) => start.merge(e.span),
                    None => start,
                };
                Ok(Stmt {
                    kind: StmtKind::Return(value),
                    span,
                })
            }
            TokenKind::For => self.for_stmt(),
            TokenKind::While => self.while_stmt(),
            TokenKind::Break => {
                let span = self.bump().span;
                Ok(Stmt {
                    kind: StmtKind::Break,
                    span,
                })
            }
            TokenKind::Continue => {
                let span = self.bump().span;
                Ok(Stmt {
                    kind: StmtKind::Continue,
                    span,
                })
            }
            _ => self.expr_or_assign_stmt(),
        }
    }

    /// True when the current token ends the enclosing statement.
    fn stmt_boundary(&self) -> bool {
        let tok = self.peek();
        tok.newline_before
            || matches!(
                tok.kind,
                TokenKind::Semi | TokenKind::RBrace | TokenKind::Eof
            )
    }

    fn def_stmt(&mut self) -> ParseResult<Stmt> {
        let start = self.expect(TokenKind::Def)?.span;
        let name = self.ident()?;
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        let span = match &init {
            Some(e) => start.merge(e.span),
            None => start,
        };
        Ok(Stmt {
            kind: StmtKind::Def { name, init },
            span,
        })
    }

    fn if_stmt(&mut self) -> ParseResult<Stmt> {
        let start = self.expect(TokenKind::If)?.span;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let then_branch = self.block_or_single_stmt()?;
        let mut span = start.merge(then_branch.span);
        let else_branch = if self.at(&TokenKind::Else) {
            self.bump();
            let blk = if self.at(&TokenKind::If) {
                // `else if` nests as a one-statement block.
                let nested = self.if_stmt()?;
                let s = nested.span;
                Block {
                    stmts: vec![nested],
                    span: s,
                }
            } else {
                self.block_or_single_stmt()?
            };
            span = span.merge(blk.span);
            Some(blk)
        } else {
            None
        };
        Ok(Stmt {
            kind: StmtKind::If {
                cond,
                then_branch,
                else_branch,
            },
            span,
        })
    }

    fn switch_stmt(&mut self) -> ParseResult<Stmt> {
        let start = self.expect(TokenKind::Switch)?.span;
        self.expect(TokenKind::LParen)?;
        let subject = self.expr()?;
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::LBrace)?;
        let mut cases = Vec::new();
        let mut default = None;
        loop {
            match self.peek_kind() {
                TokenKind::Case => {
                    self.bump();
                    let value = self.expr()?;
                    self.expect(TokenKind::Colon)?;
                    let body = self.case_body()?;
                    cases.push(SwitchCase { value, body });
                }
                TokenKind::Default => {
                    self.bump();
                    self.expect(TokenKind::Colon)?;
                    default = Some(self.case_body()?);
                }
                TokenKind::RBrace => break,
                _ => return Err(self.unexpected("`case`, `default` or `}`")),
            }
        }
        let close = self.expect(TokenKind::RBrace)?.span;
        Ok(Stmt {
            kind: StmtKind::Switch {
                subject,
                cases,
                default,
            },
            span: start.merge(close),
        })
    }

    /// Statements of a case arm, up to the next `case`/`default`/`}`.
    fn case_body(&mut self) -> ParseResult<Block> {
        let start = self.peek().span;
        let mut stmts = Vec::new();
        while !matches!(
            self.peek_kind(),
            TokenKind::Case | TokenKind::Default | TokenKind::RBrace | TokenKind::Eof
        ) {
            stmts.push(self.stmt()?);
            while self.eat(&TokenKind::Semi) {}
        }
        let span = stmts
            .last()
            .map(|s: &Stmt| start.merge(s.span))
            .unwrap_or(start);
        Ok(Block { stmts, span })
    }

    fn for_stmt(&mut self) -> ParseResult<Stmt> {
        let start = self.expect(TokenKind::For)?.span;
        self.expect(TokenKind::LParen)?;
        // Accept both `for (x in xs)` and `for (def x in xs)`.
        self.eat(&TokenKind::Def);
        let var = self.ident()?;
        self.expect(TokenKind::In)?;
        let iterable = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let body = self.block_or_single_stmt()?;
        let span = start.merge(body.span);
        Ok(Stmt {
            kind: StmtKind::ForIn {
                var,
                iterable,
                body,
            },
            span,
        })
    }

    fn while_stmt(&mut self) -> ParseResult<Stmt> {
        let start = self.expect(TokenKind::While)?.span;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let body = self.block_or_single_stmt()?;
        let span = start.merge(body.span);
        Ok(Stmt {
            kind: StmtKind::While { cond, body },
            span,
        })
    }

    fn expr_or_assign_stmt(&mut self) -> ParseResult<Stmt> {
        // Groovy labeled statement: `label: expr` (used by `mappings`
        // blocks as `action: [GET: "handler"]`). The label is metadata; the
        // statement is the labeled expression.
        if matches!(self.peek_kind(), TokenKind::Ident(_))
            && self.peek_at(1).kind == TokenKind::Colon
            && self.peek_at(2).kind.starts_expression()
        {
            self.bump(); // label
            self.bump(); // colon
            let expr = self.expr()?;
            return Ok(Stmt {
                span: expr.span,
                kind: StmtKind::Expr(expr),
            });
        }
        // Command expression: `ident arg, arg, name: arg` with no parens.
        if let TokenKind::Ident(_) = self.peek_kind() {
            let next = self.peek_at(1);
            let same_line = !next.newline_before;
            let call_like = next.kind.starts_expression() || is_named_arg_start(self, 1);
            // `ident (`/`ident {`/`ident .` etc. are ordinary postfix forms;
            // `ident ident`, `ident "str"`, `ident 5`, `ident name: v` are
            // command expressions.
            let postfix = matches!(
                next.kind,
                TokenKind::LParen
                    | TokenKind::LBrace
                    | TokenKind::Dot
                    | TokenKind::SafeDot
                    | TokenKind::LBracket
            );
            if same_line && call_like && !postfix {
                return self.command_expr_stmt();
            }
        }
        let expr = self.expr()?;
        let start = expr.span;
        let op = match self.peek_kind() {
            TokenKind::Assign => Some(AssignOp::Set),
            TokenKind::PlusAssign => Some(AssignOp::Add),
            TokenKind::MinusAssign => Some(AssignOp::Sub),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let value = self.expr()?;
            let span = start.merge(value.span);
            return Ok(Stmt {
                kind: StmtKind::Assign {
                    target: expr,
                    op,
                    value,
                },
                span,
            });
        }
        Ok(Stmt {
            span: expr.span,
            kind: StmtKind::Expr(expr),
        })
    }

    /// `input "tv1", "capability.switch", title: "Which TV?"`
    fn command_expr_stmt(&mut self) -> ParseResult<Stmt> {
        let name_tok = self.bump();
        let name = match name_tok.kind {
            TokenKind::Ident(n) => n,
            _ => unreachable!("caller checked for identifier"),
        };
        let mut args = Vec::new();
        let mut end = name_tok.span;
        loop {
            let arg = self.call_arg()?;
            end = end.merge(arg.value.span);
            args.push(arg);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let span = name_tok.span.merge(end);
        let expr = Expr::new(
            ExprKind::Call {
                recv: None,
                name,
                args,
                closure: None,
                safe: false,
            },
            span,
        );
        Ok(Stmt {
            kind: StmtKind::Expr(expr),
            span,
        })
    }

    fn call_arg(&mut self) -> ParseResult<Arg> {
        if is_named_arg_start(self, 0) {
            let name = self.ident()?;
            self.expect(TokenKind::Colon)?;
            let value = self.expr()?;
            Ok(Arg::named(name, value))
        } else if matches!(self.peek_kind(), TokenKind::Str(_) | TokenKind::GStr(_))
            && self.peek_at(1).kind == TokenKind::Colon
        {
            // `"title": value` string-named argument.
            let key = match self.bump().kind {
                TokenKind::Str(s) | TokenKind::GStr(s) => s,
                _ => unreachable!(),
            };
            self.expect(TokenKind::Colon)?;
            let value = self.expr()?;
            Ok(Arg::named(key, value))
        } else {
            Ok(Arg::positional(self.expr()?))
        }
    }

    // ----- expressions ---------------------------------------------------------

    fn expr(&mut self) -> ParseResult<Expr> {
        self.ternary()
    }

    fn ternary(&mut self) -> ParseResult<Expr> {
        let cond = self.binary(0)?;
        match self.peek_kind() {
            TokenKind::Question => {
                self.bump();
                let then_expr = self.ternary()?;
                self.expect(TokenKind::Colon)?;
                let else_expr = self.ternary()?;
                let span = cond.span.merge(else_expr.span);
                Ok(Expr::new(
                    ExprKind::Ternary {
                        cond: Box::new(cond),
                        then_expr: Box::new(then_expr),
                        else_expr: Box::new(else_expr),
                    },
                    span,
                ))
            }
            TokenKind::Elvis => {
                self.bump();
                let fallback = self.ternary()?;
                let span = cond.span.merge(fallback.span);
                Ok(Expr::new(
                    ExprKind::Elvis {
                        value: Box::new(cond),
                        fallback: Box::new(fallback),
                    },
                    span,
                ))
            }
            _ => Ok(cond),
        }
    }

    /// Precedence-climbing over binary operators.
    fn binary(&mut self, min_level: u8) -> ParseResult<Expr> {
        let mut lhs = self.unary()?;
        while let Some((op, level)) = binary_op(self.peek_kind()) {
            if level < min_level {
                break;
            }
            self.bump();
            let rhs = self.binary(level + 1)?;
            let span = lhs.span.merge(rhs.span);
            if op == BinaryOp::In {
                lhs = Expr::new(
                    ExprKind::Binary {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    },
                    span,
                );
            } else if level == RANGE_LEVEL {
                lhs = Expr::new(
                    ExprKind::Range {
                        lo: Box::new(lhs),
                        hi: Box::new(rhs),
                    },
                    span,
                );
            } else {
                lhs = Expr::new(
                    ExprKind::Binary {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    },
                    span,
                );
            }
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> ParseResult<Expr> {
        let start = self.peek().span;
        match self.peek_kind() {
            TokenKind::Not => {
                self.bump();
                let expr = self.unary()?;
                let span = start.merge(expr.span);
                Ok(Expr::new(
                    ExprKind::Unary {
                        op: UnaryOp::Not,
                        expr: Box::new(expr),
                    },
                    span,
                ))
            }
            TokenKind::Minus => {
                self.bump();
                let expr = self.unary()?;
                let span = start.merge(expr.span);
                Ok(Expr::new(
                    ExprKind::Unary {
                        op: UnaryOp::Neg,
                        expr: Box::new(expr),
                    },
                    span,
                ))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> ParseResult<Expr> {
        let mut expr = self.primary()?;
        loop {
            match self.peek_kind() {
                TokenKind::Dot | TokenKind::SafeDot => {
                    let safe = self.peek_kind() == &TokenKind::SafeDot;
                    self.bump();
                    let name = self.ident()?;
                    expr = self.member_tail(expr, name, safe)?;
                }
                TokenKind::LBracket if !self.peek().newline_before => {
                    self.bump();
                    let index = self.expr()?;
                    let close = self.expect(TokenKind::RBracket)?.span;
                    let span = expr.span.merge(close);
                    expr = Expr::new(
                        ExprKind::Index {
                            recv: Box::new(expr),
                            index: Box::new(index),
                        },
                        span,
                    );
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    /// After `recv.name`: decide between a property access and a method call
    /// (with optional parenthesized arguments and/or a trailing closure).
    fn member_tail(&mut self, recv: Expr, name: String, safe: bool) -> ParseResult<Expr> {
        let recv_span = recv.span;
        if self.at(&TokenKind::LParen) && !self.peek().newline_before {
            let (args, end) = self.paren_args()?;
            let closure = self.trailing_closure()?;
            let span = recv_span.merge(closure.as_ref().map(|c| c.span).unwrap_or(end));
            return Ok(Expr::new(
                ExprKind::Call {
                    recv: Some(Box::new(recv)),
                    name,
                    args,
                    closure: closure.map(Box::new),
                    safe,
                },
                span,
            ));
        }
        if self.at(&TokenKind::LBrace) && !self.peek().newline_before {
            let closure = self.closure()?;
            let span = recv_span.merge(closure.span);
            return Ok(Expr::new(
                ExprKind::Call {
                    recv: Some(Box::new(recv)),
                    name,
                    args: Vec::new(),
                    closure: Some(Box::new(closure)),
                    safe,
                },
                span,
            ));
        }
        let span = recv_span; // property span approximated by receiver span
        Ok(Expr::new(
            ExprKind::Prop {
                recv: Box::new(recv),
                name,
                safe,
            },
            span,
        ))
    }

    fn paren_args(&mut self) -> ParseResult<(Vec<Arg>, Span)> {
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                args.push(self.call_arg()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let close = self.expect(TokenKind::RParen)?.span;
        Ok((args, close))
    }

    fn trailing_closure(&mut self) -> ParseResult<Option<Closure>> {
        if self.at(&TokenKind::LBrace) && !self.peek().newline_before {
            Ok(Some(self.closure()?))
        } else {
            Ok(None)
        }
    }

    /// `{ a, b -> stmts }` or `{ stmts }` (implicit `it`).
    fn closure(&mut self) -> ParseResult<Closure> {
        let open = self.expect(TokenKind::LBrace)?.span;
        // Look ahead for a parameter list: `ident (, ident)* ->`.
        let mut params = Vec::new();
        let mut explicit_params = false;
        let save = self.pos;
        let mut scan_ok = true;
        loop {
            match self.peek_kind().clone() {
                TokenKind::Ident(name) => {
                    params.push(Param {
                        name,
                        default: None,
                    });
                    self.bump();
                    match self.peek_kind() {
                        TokenKind::Comma => {
                            self.bump();
                        }
                        TokenKind::Arrow => {
                            self.bump();
                            explicit_params = true;
                            break;
                        }
                        _ => {
                            scan_ok = false;
                            break;
                        }
                    }
                }
                TokenKind::Arrow if params.is_empty() => {
                    // `{ -> body }` zero-parameter closure.
                    self.bump();
                    explicit_params = true;
                    break;
                }
                _ => {
                    scan_ok = false;
                    break;
                }
            }
        }
        if !explicit_params || !scan_ok {
            self.pos = save;
            params = Vec::new();
            explicit_params = false;
        }
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            if self.at(&TokenKind::Eof) {
                return Err(self.unexpected("`}`"));
            }
            stmts.push(self.stmt()?);
            while self.eat(&TokenKind::Semi) {}
        }
        let close = self.expect(TokenKind::RBrace)?.span;
        let span = open.merge(close);
        let body_span = span;
        Ok(Closure {
            params,
            explicit_params,
            body: Block {
                stmts,
                span: body_span,
            },
            span,
        })
    }

    fn primary(&mut self) -> ParseResult<Expr> {
        let tok = self.peek().clone();
        match tok.kind {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::new(ExprKind::Int(n), tok.span))
            }
            TokenKind::Decimal(d) => {
                self.bump();
                Ok(Expr::new(ExprKind::Decimal(d), tok.span))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::new(ExprKind::Str(s), tok.span))
            }
            TokenKind::GStr(raw) => {
                self.bump();
                let parts = parse_gstring(&raw, tok.span)?;
                Ok(Expr::new(ExprKind::GStr(parts), tok.span))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::new(ExprKind::Bool(true), tok.span))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::new(ExprKind::Bool(false), tok.span))
            }
            TokenKind::Null => {
                self.bump();
                Ok(Expr::new(ExprKind::Null, tok.span))
            }
            TokenKind::Ident(name) => {
                self.bump();
                // Free call with parens and/or trailing closure?
                if self.at(&TokenKind::LParen) && !self.peek().newline_before {
                    let (args, end) = self.paren_args()?;
                    let closure = self.trailing_closure()?;
                    let span = tok
                        .span
                        .merge(closure.as_ref().map(|c| c.span).unwrap_or(end));
                    return Ok(Expr::new(
                        ExprKind::Call {
                            recv: None,
                            name,
                            args,
                            closure: closure.map(Box::new),
                            safe: false,
                        },
                        span,
                    ));
                }
                if self.at(&TokenKind::LBrace) && !self.peek().newline_before {
                    let closure = self.closure()?;
                    let span = tok.span.merge(closure.span);
                    return Ok(Expr::new(
                        ExprKind::Call {
                            recv: None,
                            name,
                            args: Vec::new(),
                            closure: Some(Box::new(closure)),
                            safe: false,
                        },
                        span,
                    ));
                }
                Ok(Expr::new(ExprKind::Ident(name), tok.span))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::LBracket => self.list_or_map(),
            TokenKind::LBrace => {
                let c = self.closure()?;
                let span = c.span;
                Ok(Expr::new(ExprKind::Closure(Box::new(c)), span))
            }
            _ => Err(self.unexpected("expression")),
        }
    }

    fn list_or_map(&mut self) -> ParseResult<Expr> {
        let open = self.expect(TokenKind::LBracket)?.span;
        // `[:]` is the empty map.
        if self.at(&TokenKind::Colon) {
            self.bump();
            let close = self.expect(TokenKind::RBracket)?.span;
            return Ok(Expr::new(ExprKind::MapLit(Vec::new()), open.merge(close)));
        }
        if self.at(&TokenKind::RBracket) {
            let close = self.bump().span;
            return Ok(Expr::new(ExprKind::ListLit(Vec::new()), open.merge(close)));
        }
        // Decide map vs list by looking for `key :` ahead.
        if self.map_entry_ahead() {
            let mut entries = Vec::new();
            loop {
                let key = self.map_key()?;
                self.expect(TokenKind::Colon)?;
                let value = self.expr()?;
                entries.push(MapEntry { key, value });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            let close = self.expect(TokenKind::RBracket)?.span;
            return Ok(Expr::new(ExprKind::MapLit(entries), open.merge(close)));
        }
        let mut items = Vec::new();
        loop {
            items.push(self.expr()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let close = self.expect(TokenKind::RBracket)?.span;
        Ok(Expr::new(ExprKind::ListLit(items), open.merge(close)))
    }

    fn map_entry_ahead(&self) -> bool {
        matches!(
            self.peek_kind(),
            TokenKind::Ident(_) | TokenKind::Str(_) | TokenKind::GStr(_) | TokenKind::Int(_)
        ) && self.peek_at(1).kind == TokenKind::Colon
    }

    fn map_key(&mut self) -> ParseResult<MapKey> {
        match self.bump().kind {
            TokenKind::Ident(s) => Ok(MapKey::Ident(s)),
            TokenKind::Str(s) | TokenKind::GStr(s) => Ok(MapKey::Str(s)),
            TokenKind::Int(n) => Ok(MapKey::Int(n)),
            _ => Err(self.unexpected("map key")),
        }
    }
}

/// Is the token at `offset` the start of a named argument (`ident :` but not
/// a ternary's `? :`)?
fn is_named_arg_start(p: &Parser, offset: usize) -> bool {
    matches!(p.peek_at(offset).kind, TokenKind::Ident(_))
        && p.peek_at(offset + 1).kind == TokenKind::Colon
}

const RANGE_LEVEL: u8 = 3;

/// Maps a token to its binary operator and precedence level.
/// Levels: 0 `||`, 1 `&&`, 2 `==`/`!=`/relational/`in`, 3 `..`,
/// 4 `+`/`-`, 5 `*`/`/`/`%`.
fn binary_op(kind: &TokenKind) -> Option<(BinaryOp, u8)> {
    Some(match kind {
        TokenKind::OrOr => (BinaryOp::Or, 0),
        TokenKind::AndAnd => (BinaryOp::And, 1),
        TokenKind::Eq => (BinaryOp::Eq, 2),
        TokenKind::Ne => (BinaryOp::Ne, 2),
        TokenKind::Lt => (BinaryOp::Lt, 2),
        TokenKind::Le => (BinaryOp::Le, 2),
        TokenKind::Gt => (BinaryOp::Gt, 2),
        TokenKind::Ge => (BinaryOp::Ge, 2),
        TokenKind::In => (BinaryOp::In, 2),
        // `..` has no BinaryOp; reuse Add slot and special-case by level.
        TokenKind::DotDot => (BinaryOp::Add, RANGE_LEVEL),
        TokenKind::Plus => (BinaryOp::Add, 4),
        TokenKind::Minus => (BinaryOp::Sub, 4),
        TokenKind::Star => (BinaryOp::Mul, 5),
        TokenKind::Slash => (BinaryOp::Div, 5),
        TokenKind::Percent => (BinaryOp::Rem, 5),
        _ => return None,
    })
}

/// Splits a raw GString body into literal and interpolated parts.
fn parse_gstring(raw: &str, span: Span) -> ParseResult<Vec<GStrPart>> {
    let mut parts = Vec::new();
    let mut lit = String::new();
    let bytes = raw.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'\\' && i + 1 < bytes.len() && bytes[i + 1] == b'$' {
            lit.push('$');
            i += 2;
            continue;
        }
        if bytes[i] == b'$' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'{' {
                // `${ expr }` with brace balancing.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    match bytes[j] {
                        b'{' => depth += 1,
                        b'}' => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                if depth != 0 {
                    return Err(ParseError::new(
                        span,
                        ParseErrorKind::UnterminatedInterpolation,
                    ));
                }
                let inner = &raw[i + 2..j - 1];
                if !lit.is_empty() {
                    parts.push(GStrPart::Lit(std::mem::take(&mut lit)));
                }
                let expr = parse_expression(inner)?;
                parts.push(GStrPart::Interp(expr));
                i = j;
                continue;
            }
            if bytes[i + 1].is_ascii_alphabetic() || bytes[i + 1] == b'_' {
                // `$ident.prop` shorthand.
                let mut j = i + 1;
                while j < bytes.len()
                    && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_' || bytes[j] == b'.')
                {
                    // A trailing dot is punctuation, not property access.
                    if bytes[j] == b'.'
                        && !(j + 1 < bytes.len()
                            && (bytes[j + 1].is_ascii_alphabetic() || bytes[j + 1] == b'_'))
                    {
                        break;
                    }
                    j += 1;
                }
                let inner = &raw[i + 1..j];
                if !lit.is_empty() {
                    parts.push(GStrPart::Lit(std::mem::take(&mut lit)));
                }
                let expr = parse_expression(inner)?;
                parts.push(GStrPart::Interp(expr));
                i = j;
                continue;
            }
        }
        // Plain byte: copy (multi-byte chars copied byte-wise is fine since we
        // only split at ASCII `$`).
        let ch_len = utf8_len(bytes[i]);
        lit.push_str(&raw[i..i + ch_len]);
        i += ch_len;
    }
    if !lit.is_empty() {
        parts.push(GStrPart::Lit(lit));
    }
    Ok(parts)
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_listing1() {
        let src = r#"
input "tv1", "capability.switch", title: "Which TV?"
input "tSensor", "capability.temperatureMeasurement"
input "threshold1", "number", title: "Higher than?"
input "window1", "capability.switch"
def installed() {
    subscribe(tv1, "switch", onHandler)
}
def updated() {
    unsubscribe()
    subscribe(tv1, "switch", onHandler)
}
def onHandler(evt) {
    def t = tSensor.currentValue("temperature")
    if ((evt.value == "on") && (t > threshold1)) turnOnWindow()
}
def turnOnWindow() {
    if (window1.currentSwitch == "off")
        window1.on()
}
"#;
        let p = parse(src).unwrap();
        assert_eq!(p.methods().count(), 4);
        assert_eq!(p.top_level_stmts().count(), 4);
        let on_handler = p.method("onHandler").unwrap();
        assert_eq!(on_handler.params.len(), 1);
        assert_eq!(on_handler.params[0].name, "evt");
        // First stmt: def t = ...
        match &on_handler.body.stmts[0].kind {
            StmtKind::Def { name, init } => {
                assert_eq!(name, "t");
                assert!(init.is_some());
            }
            other => panic!("expected def, got {other:?}"),
        }
    }

    #[test]
    fn command_expression_named_args() {
        let p = parse(r#"input "x", "number", title: "T?", required: false"#).unwrap();
        let stmt = p.top_level_stmts().next().unwrap();
        match &stmt.kind {
            StmtKind::Expr(e) => match &e.kind {
                ExprKind::Call { name, args, .. } => {
                    assert_eq!(name, "input");
                    assert_eq!(args.len(), 4);
                    assert_eq!(args[2].name.as_deref(), Some("title"));
                    assert_eq!(args[3].name.as_deref(), Some("required"));
                }
                other => panic!("expected call, got {other:?}"),
            },
            other => panic!("expected expr stmt, got {other:?}"),
        }
    }

    #[test]
    fn trailing_closure_forms() {
        let p = parse(
            r#"
preferences {
    section("TV") {
        input "tv1", "capability.switch"
    }
}
"#,
        )
        .unwrap();
        let stmt = p.top_level_stmts().next().unwrap();
        let StmtKind::Expr(e) = &stmt.kind else {
            panic!()
        };
        let ExprKind::Call { name, closure, .. } = &e.kind else {
            panic!()
        };
        assert_eq!(name, "preferences");
        let section = &closure.as_ref().unwrap().body.stmts[0];
        let StmtKind::Expr(e2) = &section.kind else {
            panic!()
        };
        let ExprKind::Call {
            name: n2,
            args,
            closure: c2,
            ..
        } = &e2.kind
        else {
            panic!()
        };
        assert_eq!(n2, "section");
        assert_eq!(args.len(), 1);
        assert!(c2.is_some());
    }

    #[test]
    fn method_call_with_closure_arg() {
        let e = parse_expression("switches.each { it.on() }").unwrap();
        let ExprKind::Call {
            recv,
            name,
            closure,
            ..
        } = &e.kind
        else {
            panic!()
        };
        assert!(recv.is_some());
        assert_eq!(name, "each");
        let c = closure.as_ref().unwrap();
        assert!(!c.explicit_params);
    }

    #[test]
    fn closure_with_params() {
        let e = parse_expression("devices.each { dev -> dev.off() }").unwrap();
        let ExprKind::Call { closure, .. } = &e.kind else {
            panic!()
        };
        let c = closure.as_ref().unwrap();
        assert!(c.explicit_params);
        assert_eq!(c.params[0].name, "dev");
    }

    #[test]
    fn precedence() {
        let e = parse_expression("a || b && c == d + e * f").unwrap();
        // Outermost is ||.
        let ExprKind::Binary { op, rhs, .. } = &e.kind else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::Or);
        let ExprKind::Binary { op: op2, .. } = &rhs.kind else {
            panic!()
        };
        assert_eq!(*op2, BinaryOp::And);
    }

    #[test]
    fn ternary_and_elvis() {
        let e = parse_expression("a > 1 ? \"hot\" : \"cold\"").unwrap();
        assert!(matches!(e.kind, ExprKind::Ternary { .. }));
        let e2 = parse_expression("name ?: \"default\"").unwrap();
        assert!(matches!(e2.kind, ExprKind::Elvis { .. }));
    }

    #[test]
    fn nested_ternary_right_assoc() {
        let e = parse_expression("a ? b : c ? d : e").unwrap();
        let ExprKind::Ternary { else_expr, .. } = &e.kind else {
            panic!()
        };
        assert!(matches!(else_expr.kind, ExprKind::Ternary { .. }));
    }

    #[test]
    fn map_and_list_literals() {
        let m = parse_expression(r#"[devRefStr: "tv1", devRef: tv1]"#).unwrap();
        let ExprKind::MapLit(entries) = &m.kind else {
            panic!()
        };
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].key, MapKey::Ident("devRefStr".into()));

        let l = parse_expression("[1, 2, 3]").unwrap();
        let ExprKind::ListLit(items) = &l.kind else {
            panic!()
        };
        assert_eq!(items.len(), 3);

        let empty_map = parse_expression("[:]").unwrap();
        assert!(matches!(empty_map.kind, ExprKind::MapLit(ref v) if v.is_empty()));
        let empty_list = parse_expression("[]").unwrap();
        assert!(matches!(empty_list.kind, ExprKind::ListLit(ref v) if v.is_empty()));
    }

    #[test]
    fn switch_statement() {
        let p = parse(
            r#"
def handler(evt) {
    switch (evt.value) {
        case "on":
            light.on()
            break
        case "off":
            light.off()
            break
        default:
            log.debug "none"
    }
}
"#,
        )
        .unwrap();
        let m = p.method("handler").unwrap();
        let StmtKind::Switch { cases, default, .. } = &m.body.stmts[0].kind else {
            panic!()
        };
        assert_eq!(cases.len(), 2);
        assert!(default.is_some());
    }

    #[test]
    fn gstring_interpolation() {
        let e = parse_expression(r#""temp is ${t + 1} degrees""#).unwrap();
        let ExprKind::GStr(parts) = &e.kind else {
            panic!()
        };
        assert_eq!(parts.len(), 3);
        assert!(matches!(&parts[0], GStrPart::Lit(s) if s == "temp is "));
        assert!(matches!(&parts[1], GStrPart::Interp(_)));
        assert!(matches!(&parts[2], GStrPart::Lit(s) if s == " degrees"));
    }

    #[test]
    fn gstring_dollar_ident() {
        let e = parse_expression(r#""hello $name!""#).unwrap();
        let ExprKind::GStr(parts) = &e.kind else {
            panic!()
        };
        assert_eq!(parts.len(), 3);
        let GStrPart::Interp(i) = &parts[1] else {
            panic!()
        };
        assert_eq!(i.as_ident(), Some("name"));
    }

    #[test]
    fn gstring_dollar_prop_chain() {
        let e = parse_expression(r#""dev $dev.id done""#).unwrap();
        let ExprKind::GStr(parts) = &e.kind else {
            panic!()
        };
        let GStrPart::Interp(i) = &parts[1] else {
            panic!()
        };
        assert!(matches!(&i.kind, ExprKind::Prop { name, .. } if name == "id"));
    }

    #[test]
    fn else_if_chain() {
        let p = parse(
            r#"
def h(evt) {
    if (a) { x() } else if (b) { y() } else { z() }
}
"#,
        )
        .unwrap();
        let m = p.method("h").unwrap();
        let StmtKind::If { else_branch, .. } = &m.body.stmts[0].kind else {
            panic!()
        };
        let eb = else_branch.as_ref().unwrap();
        assert!(matches!(eb.stmts[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn for_in_and_while() {
        let p = parse(
            r#"
def h() {
    for (s in switches) { s.on() }
    while (x < 3) { x = x + 1 }
}
"#,
        )
        .unwrap();
        let m = p.method("h").unwrap();
        assert!(matches!(m.body.stmts[0].kind, StmtKind::ForIn { .. }));
        assert!(matches!(m.body.stmts[1].kind, StmtKind::While { .. }));
    }

    #[test]
    fn assignment_forms() {
        let p = parse("def h() {\n x = 1\n x += 2\n state.count = 3\n}").unwrap();
        let m = p.method("h").unwrap();
        assert!(matches!(
            m.body.stmts[0].kind,
            StmtKind::Assign {
                op: AssignOp::Set,
                ..
            }
        ));
        assert!(matches!(
            m.body.stmts[1].kind,
            StmtKind::Assign {
                op: AssignOp::Add,
                ..
            }
        ));
        let StmtKind::Assign { target, .. } = &m.body.stmts[2].kind else {
            panic!()
        };
        assert!(matches!(&target.kind, ExprKind::Prop { name, .. } if name == "count"));
    }

    #[test]
    fn safe_navigation() {
        let e = parse_expression("evt?.device?.displayName").unwrap();
        let ExprKind::Prop { safe, .. } = &e.kind else {
            panic!()
        };
        assert!(safe);
    }

    #[test]
    fn range_in_for() {
        let p = parse("def h() { for (i in 0..5) { f(i) } }").unwrap();
        let m = p.method("h").unwrap();
        let StmtKind::ForIn { iterable, .. } = &m.body.stmts[0].kind else {
            panic!()
        };
        assert!(matches!(iterable.kind, ExprKind::Range { .. }));
    }

    #[test]
    fn command_expression_vs_property_stmt() {
        // `log.debug "msg"` is a member command expression... our subset
        // requires parens for member calls, but `log.debug("msg")` works and
        // plain `unsubscribe()` works.
        let p = parse("def h() {\n unsubscribe()\n log.debug(\"msg\")\n}").unwrap();
        assert_eq!(p.method("h").unwrap().body.stmts.len(), 2);
    }

    #[test]
    fn definition_call_named_args() {
        let p = parse(
            r#"
definition(
    name: "ComfortTV",
    namespace: "hg",
    author: "x",
    description: "opens window when hot"
)
"#,
        )
        .unwrap();
        let stmt = p.top_level_stmts().next().unwrap();
        let StmtKind::Expr(e) = &stmt.kind else {
            panic!()
        };
        let ExprKind::Call { name, args, .. } = &e.kind else {
            panic!()
        };
        assert_eq!(name, "definition");
        assert_eq!(args.len(), 4);
        assert!(args.iter().all(|a| a.name.is_some()));
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse("def f( {").is_err());
        assert!(parse("if").is_err());
        assert!(parse_expression("1 +").is_err());
    }

    #[test]
    fn unexpected_eof_error_kind() {
        let err = parse("def f() {").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnexpectedEof { .. }));
    }

    #[test]
    fn member_call_chain() {
        let e = parse_expression("location.modes.find { it.name == mode }").unwrap();
        let ExprKind::Call { recv, name, .. } = &e.kind else {
            panic!()
        };
        assert_eq!(name, "find");
        let ExprKind::Prop { name: pname, .. } = &recv.as_ref().unwrap().kind else {
            panic!()
        };
        assert_eq!(pname, "modes");
    }

    #[test]
    fn paren_less_subscribe_command() {
        let p = parse("def installed() {\n subscribe tv1, \"switch\", onHandler\n}").unwrap();
        let m = p.method("installed").unwrap();
        let StmtKind::Expr(e) = &m.body.stmts[0].kind else {
            panic!()
        };
        let ExprKind::Call { name, args, .. } = &e.kind else {
            panic!()
        };
        assert_eq!(name, "subscribe");
        assert_eq!(args.len(), 3);
    }

    #[test]
    fn index_expression() {
        let e = parse_expression("params[0]").unwrap();
        assert!(matches!(e.kind, ExprKind::Index { .. }));
    }

    #[test]
    fn negative_numbers_and_not() {
        let e = parse_expression("-5 + !flag").unwrap();
        let ExprKind::Binary { lhs, rhs, .. } = &e.kind else {
            panic!()
        };
        assert!(matches!(
            lhs.kind,
            ExprKind::Unary {
                op: UnaryOp::Neg,
                ..
            }
        ));
        assert!(matches!(
            rhs.kind,
            ExprKind::Unary {
                op: UnaryOp::Not,
                ..
            }
        ));
    }
}
