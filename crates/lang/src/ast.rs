//! Abstract syntax tree for the SmartApp Groovy subset.
//!
//! The tree deliberately mirrors how SmartApps are written rather than full
//! Groovy: top-level items are method declarations plus bare statements
//! (`definition(...)`, `preferences { ... }`, `input "x", ...`), and the
//! expression grammar covers the 38 Groovy expression forms that the paper's
//! symbolic executor models, restricted to those the SmartThings sandbox
//! permits.

use crate::span::Span;
use std::fmt;

/// A parsed SmartApp source file.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl Program {
    /// Finds the method declaration named `name`, if present.
    pub fn method(&self, name: &str) -> Option<&MethodDecl> {
        self.items.iter().find_map(|item| match item {
            Item::Method(m) if m.name == name => Some(m),
            _ => None,
        })
    }

    /// Iterates over all method declarations.
    pub fn methods(&self) -> impl Iterator<Item = &MethodDecl> {
        self.items.iter().filter_map(|item| match item {
            Item::Method(m) => Some(m),
            _ => None,
        })
    }

    /// Iterates over top-level statements (everything that is not a method).
    pub fn top_level_stmts(&self) -> impl Iterator<Item = &Stmt> {
        self.items.iter().filter_map(|item| match item {
            Item::Stmt(s) => Some(s),
            _ => None,
        })
    }
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `def name(params) { ... }`
    Method(MethodDecl),
    /// A bare top-level statement such as `input "tv1", "capability.switch"`.
    Stmt(Stmt),
}

/// A method declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDecl {
    /// Method name, e.g. `onHandler`.
    pub name: String,
    /// Declared parameters.
    pub params: Vec<Param>,
    /// Method body.
    pub body: Block,
    /// Span of the whole declaration.
    pub span: Span,
}

/// A method or closure parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Optional default value (`def m(x = 5)`).
    pub default: Option<Expr>,
}

/// A brace-delimited sequence of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
    /// Span covering the block.
    pub span: Span,
}

impl Block {
    /// An empty block with a dummy span, for synthesized nodes.
    pub fn empty() -> Self {
        Block {
            stmts: Vec::new(),
            span: Span::dummy(),
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Statement payload.
    pub kind: StmtKind,
    /// Span of the statement.
    pub span: Span,
}

/// Statement forms.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// An expression evaluated for effect, e.g. `window1.on()`.
    Expr(Expr),
    /// `def name = init` (or bare `def name`).
    Def {
        /// Variable name.
        name: String,
        /// Initializer, if present.
        init: Option<Expr>,
    },
    /// `target = value`, `target += value`, `target -= value`.
    Assign {
        /// Assignment target (identifier, property or index expression).
        target: Expr,
        /// Which assignment operator was used.
        op: AssignOp,
        /// Right-hand side.
        value: Expr,
    },
    /// `if (cond) { .. } else { .. }`; `else if` nests as a one-statement block.
    If {
        /// Branch condition.
        cond: Expr,
        /// Taken when `cond` is truthy.
        then_branch: Block,
        /// Taken otherwise, if present.
        else_branch: Option<Block>,
    },
    /// `switch (subject) { case v: ...; default: ... }`.
    Switch {
        /// The switched-on expression.
        subject: Expr,
        /// The `case` arms.
        cases: Vec<SwitchCase>,
        /// The `default` arm, if present.
        default: Option<Block>,
    },
    /// `return expr?`.
    Return(Option<Expr>),
    /// `for (x in iterable) { ... }`.
    ForIn {
        /// Loop variable name.
        var: String,
        /// The iterated collection or range.
        iterable: Expr,
        /// Loop body.
        body: Block,
    },
    /// `while (cond) { ... }`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `break`.
    Break,
    /// `continue`.
    Continue,
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Set,
    /// `+=`
    Add,
    /// `-=`
    Sub,
}

/// One `case value: body` arm of a switch.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchCase {
    /// The matched value.
    pub value: Expr,
    /// The statements executed on match (fallthrough is not modeled;
    /// SmartThings review guidelines require `break` per case).
    pub body: Block,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Expression payload.
    pub kind: ExprKind,
    /// Span of the expression.
    pub span: Span,
}

impl Expr {
    /// Creates an expression node.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Returns the identifier name if this is a bare identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Ident(name) => Some(name),
            _ => None,
        }
    }

    /// Returns the string payload if this is a plain string literal.
    pub fn as_str(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Expression forms.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Decimal literal, kept textual until the evaluator scales it.
    Decimal(String),
    /// Plain string literal.
    Str(String),
    /// Interpolated string: alternating literal and expression parts.
    GStr(Vec<GStrPart>),
    /// Boolean literal.
    Bool(bool),
    /// `null`.
    Null,
    /// `[a, b, c]`.
    ListLit(Vec<Expr>),
    /// `[k: v, ...]`; an empty `[:]` map has no entries.
    MapLit(Vec<MapEntry>),
    /// A bare identifier.
    Ident(String),
    /// Property access `recv.name` (or `recv?.name` when `safe`).
    Prop {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Property name.
        name: String,
        /// Whether `?.` safe navigation was used.
        safe: bool,
    },
    /// Index access `recv[index]`.
    Index {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// A call. `recv` is `None` for free-function calls (`subscribe(...)`),
    /// `Some` for method calls (`window1.on()`). A trailing closure argument
    /// (`devices.each { ... }`) is stored separately in `closure`.
    Call {
        /// Receiver for method calls, `None` for free calls.
        recv: Option<Box<Expr>>,
        /// Called method name.
        name: String,
        /// Ordinary arguments (positional and named).
        args: Vec<Arg>,
        /// Trailing closure argument, if any.
        closure: Option<Box<Closure>>,
        /// Whether `?.` safe navigation was used.
        safe: bool,
    },
    /// A closure literal used as a value.
    Closure(Box<Closure>),
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `cond ? then_expr : else_expr`.
    Ternary {
        /// The tested condition.
        cond: Box<Expr>,
        /// Value when the condition is truthy.
        then_expr: Box<Expr>,
        /// Value when the condition is falsy.
        else_expr: Box<Expr>,
    },
    /// `value ?: fallback`.
    Elvis {
        /// The primary value.
        value: Box<Expr>,
        /// Used when the primary value is falsy/null.
        fallback: Box<Expr>,
    },
    /// `lo..hi` inclusive range.
    Range {
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
    },
}

/// One `key: value` entry of a map literal.
#[derive(Debug, Clone, PartialEq)]
pub struct MapEntry {
    /// The entry key.
    pub key: MapKey,
    /// The entry value.
    pub value: Expr,
}

/// A map-literal key. Groovy map keys in SmartApps are identifiers
/// (`title: ...`), strings (`"GET": ...`) or occasionally integers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MapKey {
    /// An identifier key, e.g. `title`.
    Ident(String),
    /// A string key, e.g. `"GET"`.
    Str(String),
    /// An integer key.
    Int(i64),
}

impl MapKey {
    /// The key as text, regardless of its syntactic form.
    pub fn as_text(&self) -> String {
        match self {
            MapKey::Ident(s) | MapKey::Str(s) => s.clone(),
            MapKey::Int(n) => n.to_string(),
        }
    }
}

/// A literal or interpolated fragment of a GString.
#[derive(Debug, Clone, PartialEq)]
pub enum GStrPart {
    /// Literal text.
    Lit(String),
    /// An interpolated `${expr}` or `$ident`.
    Interp(Expr),
}

/// A call argument, optionally named (`title: "Which TV?"`).
#[derive(Debug, Clone, PartialEq)]
pub struct Arg {
    /// The argument label for named arguments.
    pub name: Option<String>,
    /// The argument value.
    pub value: Expr,
}

impl Arg {
    /// A positional argument.
    pub fn positional(value: Expr) -> Self {
        Arg { name: None, value }
    }

    /// A named argument.
    pub fn named(name: impl Into<String>, value: Expr) -> Self {
        Arg {
            name: Some(name.into()),
            value,
        }
    }
}

/// A closure literal `{ a, b -> body }`. A closure without an explicit
/// parameter list has the implicit parameter `it`.
#[derive(Debug, Clone, PartialEq)]
pub struct Closure {
    /// Declared parameters (empty means implicit `it`).
    pub params: Vec<Param>,
    /// Whether the parameter list was written explicitly.
    pub explicit_params: bool,
    /// The closure body.
    pub body: Block,
    /// Span of the closure.
    pub span: Span,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical negation `!`.
    Not,
    /// Arithmetic negation `-`.
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `||`
    Or,
    /// `&&`
    And,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `in` membership test.
    In,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
}

impl BinaryOp {
    /// Whether this operator yields a boolean.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
                | BinaryOp::In
        )
    }

    /// Whether this operator is `&&` or `||`.
    pub fn is_logical(&self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }

    /// The negated comparison, e.g. `<` becomes `>=`.
    ///
    /// Returns `None` for non-comparison operators and for `in`, whose
    /// negation has no operator form in the subset.
    pub fn negate(&self) -> Option<BinaryOp> {
        Some(match self {
            BinaryOp::Eq => BinaryOp::Ne,
            BinaryOp::Ne => BinaryOp::Eq,
            BinaryOp::Lt => BinaryOp::Ge,
            BinaryOp::Le => BinaryOp::Gt,
            BinaryOp::Gt => BinaryOp::Le,
            BinaryOp::Ge => BinaryOp::Lt,
            _ => return None,
        })
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

impl BinaryOp {
    /// The Groovy spelling of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinaryOp::Or => "||",
            BinaryOp::And => "&&",
            BinaryOp::Eq => "==",
            BinaryOp::Ne => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::In => "in",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Rem => "%",
        }
    }
}

impl UnaryOp {
    /// The Groovy spelling of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            UnaryOp::Not => "!",
            UnaryOp::Neg => "-",
        }
    }
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negate_comparisons() {
        assert_eq!(BinaryOp::Lt.negate(), Some(BinaryOp::Ge));
        assert_eq!(BinaryOp::Eq.negate(), Some(BinaryOp::Ne));
        assert_eq!(BinaryOp::Add.negate(), None);
        assert_eq!(BinaryOp::In.negate(), None);
    }

    #[test]
    fn classification() {
        assert!(BinaryOp::Le.is_comparison());
        assert!(!BinaryOp::Le.is_logical());
        assert!(BinaryOp::And.is_logical());
        assert!(!BinaryOp::Mul.is_comparison());
    }

    #[test]
    fn display_symbols() {
        assert_eq!(BinaryOp::Ge.to_string(), ">=");
        assert_eq!(UnaryOp::Not.to_string(), "!");
    }

    #[test]
    fn program_accessors() {
        let m = MethodDecl {
            name: "installed".into(),
            params: vec![],
            body: Block::empty(),
            span: Span::dummy(),
        };
        let p = Program {
            items: vec![Item::Method(m)],
        };
        assert!(p.method("installed").is_some());
        assert!(p.method("updated").is_none());
        assert_eq!(p.methods().count(), 1);
        assert_eq!(p.top_level_stmts().count(), 0);
    }
}
