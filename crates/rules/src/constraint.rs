//! Quantifier-free first-order constraint formulas.
//!
//! The symbolic executor represents a rule's trigger constraint and
//! condition as formulas over [`VarId`] variables (paper §V: "The semantics
//! of each app is then represented as quantifier-free first-order
//! formulas"). The detector merges formulas from different rules and hands
//! them to `hg-solver`.

use crate::value::Value;
use crate::varid::VarId;
use std::collections::BTreeSet;
use std::fmt;

/// Comparison operators in atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The negated operator.
    pub fn negate(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The operator with swapped operands (`a < b` ⇔ `b > a`).
    pub fn flip(&self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => *other,
        }
    }

    /// Evaluates the comparison on ordered operands.
    pub fn eval<T: PartialOrd + PartialEq>(&self, a: &T, b: &T) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// Spelling used in displays.
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// An arithmetic term over variables and constants.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A constant value.
    Const(Value),
    /// A variable.
    Var(VarId),
    /// `a + b`.
    Add(Box<Term>, Box<Term>),
    /// `a - b`.
    Sub(Box<Term>, Box<Term>),
    /// `a * b` (the solver requires at least one side to be constant).
    Mul(Box<Term>, Box<Term>),
    /// `a / b` (integer division on scaled values; solver requires a
    /// constant divisor).
    Div(Box<Term>, Box<Term>),
    /// `-a`.
    Neg(Box<Term>),
}

impl Term {
    /// A numeric constant from a scaled value.
    pub fn num(n: i64) -> Term {
        Term::Const(Value::Num(n))
    }

    /// A symbolic constant.
    pub fn sym(s: impl Into<String>) -> Term {
        Term::Const(Value::Sym(s.into()))
    }

    /// A variable term.
    pub fn var(v: VarId) -> Term {
        Term::Var(v)
    }

    /// Collects the variables in this term into `out`.
    pub fn collect_vars(&self, out: &mut BTreeSet<VarId>) {
        match self {
            Term::Const(_) => {}
            Term::Var(v) => {
                out.insert(v.clone());
            }
            Term::Add(a, b) | Term::Sub(a, b) | Term::Mul(a, b) | Term::Div(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Term::Neg(a) => a.collect_vars(out),
        }
    }

    /// Substitutes variables with constants per `lookup`, folding constant
    /// arithmetic where possible.
    pub fn substitute(&self, lookup: &dyn Fn(&VarId) -> Option<Value>) -> Term {
        match self {
            Term::Const(_) => self.clone(),
            Term::Var(v) => match lookup(v) {
                Some(val) => Term::Const(val),
                None => self.clone(),
            },
            Term::Add(a, b) => fold2(
                a.substitute(lookup),
                b.substitute(lookup),
                Term::Add,
                |x, y| x.checked_add(y),
            ),
            Term::Sub(a, b) => fold2(
                a.substitute(lookup),
                b.substitute(lookup),
                Term::Sub,
                |x, y| x.checked_sub(y),
            ),
            Term::Mul(a, b) => fold2(
                a.substitute(lookup),
                b.substitute(lookup),
                Term::Mul,
                |x, y| {
                    // Scaled multiplication: (x/S)*(y/S) = x*y/S².
                    x.checked_mul(y).map(|p| p / hg_capability::domains::SCALE)
                },
            ),
            Term::Div(a, b) => fold2(
                a.substitute(lookup),
                b.substitute(lookup),
                Term::Div,
                |x, y| {
                    if y == 0 {
                        None
                    } else {
                        x.checked_mul(hg_capability::domains::SCALE).map(|p| p / y)
                    }
                },
            ),
            Term::Neg(a) => {
                let inner = a.substitute(lookup);
                if let Term::Const(Value::Num(n)) = inner {
                    Term::num(-n)
                } else {
                    Term::Neg(Box::new(inner))
                }
            }
        }
    }

    /// The constant value, if this term is a constant.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Const(v) => Some(v),
            _ => None,
        }
    }
}

fn fold2(
    a: Term,
    b: Term,
    ctor: fn(Box<Term>, Box<Term>) -> Term,
    op: impl Fn(i64, i64) -> Option<i64>,
) -> Term {
    if let (Term::Const(Value::Num(x)), Term::Const(Value::Num(y))) = (&a, &b) {
        if let Some(r) = op(*x, *y) {
            return Term::num(r);
        }
    }
    ctor(Box::new(a), Box::new(b))
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(v) => write!(f, "{v}"),
            Term::Var(v) => write!(f, "{v}"),
            Term::Add(a, b) => write!(f, "({a} + {b})"),
            Term::Sub(a, b) => write!(f, "({a} - {b})"),
            Term::Mul(a, b) => write!(f, "({a} * {b})"),
            Term::Div(a, b) => write!(f, "({a} / {b})"),
            Term::Neg(a) => write!(f, "(-{a})"),
        }
    }
}

/// A constraint formula.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// Always satisfied.
    True,
    /// Never satisfied.
    False,
    /// An atomic comparison.
    Cmp {
        /// Left operand.
        lhs: Term,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        rhs: Term,
    },
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Negation.
    Not(Box<Formula>),
}

impl Formula {
    /// Builds `lhs op rhs`.
    pub fn cmp(lhs: Term, op: CmpOp, rhs: Term) -> Formula {
        Formula::Cmp { lhs, op, rhs }
    }

    /// Builds `var == value`.
    pub fn var_eq(var: VarId, value: Value) -> Formula {
        Formula::cmp(Term::Var(var), CmpOp::Eq, Term::Const(value))
    }

    /// Conjunction that flattens nested `And`s and drops `True`s.
    pub fn and(parts: impl IntoIterator<Item = Formula>) -> Formula {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::True,
            1 => flat.pop().expect("len checked"),
            _ => Formula::And(flat),
        }
    }

    /// Disjunction that flattens nested `Or`s and drops `False`s.
    pub fn or(parts: impl IntoIterator<Item = Formula>) -> Formula {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::False,
            1 => flat.pop().expect("len checked"),
            _ => Formula::Or(flat),
        }
    }

    /// Negation with basic simplification (negation pushing on atoms).
    pub fn negate(self) -> Formula {
        match self {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Cmp { lhs, op, rhs } => Formula::Cmp {
                lhs,
                op: op.negate(),
                rhs,
            },
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// All variables mentioned by the formula.
    pub fn variables(&self) -> BTreeSet<VarId> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<VarId>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Cmp { lhs, rhs, .. } => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
            Formula::And(parts) | Formula::Or(parts) => {
                for p in parts {
                    p.collect_vars(out);
                }
            }
            Formula::Not(inner) => inner.collect_vars(out),
        }
    }

    /// Substitutes variables with constants, simplifying decidable atoms.
    pub fn substitute(&self, lookup: &dyn Fn(&VarId) -> Option<Value>) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Cmp { lhs, op, rhs } => {
                let l = lhs.substitute(lookup);
                let r = rhs.substitute(lookup);
                if let (Some(a), Some(b)) = (l.as_const(), r.as_const()) {
                    if let Some(res) = eval_const_cmp(a, *op, b) {
                        return if res { Formula::True } else { Formula::False };
                    }
                }
                Formula::Cmp {
                    lhs: l,
                    op: *op,
                    rhs: r,
                }
            }
            Formula::And(parts) => Formula::and(parts.iter().map(|p| p.substitute(lookup))),
            Formula::Or(parts) => Formula::or(parts.iter().map(|p| p.substitute(lookup))),
            Formula::Not(inner) => inner.substitute(lookup).negate(),
        }
    }

    /// Renames device references in variables (used when unifying two rules'
    /// device slots during store-wide analysis).
    pub fn map_vars(&self, f: &dyn Fn(&VarId) -> VarId) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Cmp { lhs, op, rhs } => Formula::Cmp {
                lhs: map_term_vars(lhs, f),
                op: *op,
                rhs: map_term_vars(rhs, f),
            },
            Formula::And(parts) => Formula::And(parts.iter().map(|p| p.map_vars(f)).collect()),
            Formula::Or(parts) => Formula::Or(parts.iter().map(|p| p.map_vars(f)).collect()),
            Formula::Not(inner) => Formula::Not(Box::new(inner.map_vars(f))),
        }
    }
}

fn map_term_vars(t: &Term, f: &dyn Fn(&VarId) -> VarId) -> Term {
    match t {
        Term::Const(_) => t.clone(),
        Term::Var(v) => Term::Var(f(v)),
        Term::Add(a, b) => Term::Add(Box::new(map_term_vars(a, f)), Box::new(map_term_vars(b, f))),
        Term::Sub(a, b) => Term::Sub(Box::new(map_term_vars(a, f)), Box::new(map_term_vars(b, f))),
        Term::Mul(a, b) => Term::Mul(Box::new(map_term_vars(a, f)), Box::new(map_term_vars(b, f))),
        Term::Div(a, b) => Term::Div(Box::new(map_term_vars(a, f)), Box::new(map_term_vars(b, f))),
        Term::Neg(a) => Term::Neg(Box::new(map_term_vars(a, f))),
    }
}

/// Evaluates a comparison between two constants, or `None` when the
/// pair is not decidable at fold time (ordered comparisons between
/// non-numeric values). This is the constant-folding rule used by
/// [`Formula::substitute`]; the detector's lowering tier reuses it so
/// lowered programs fold exactly like solver-bound formulas.
pub fn eval_const_cmp(a: &Value, op: CmpOp, b: &Value) -> Option<bool> {
    match (a, b) {
        (Value::Num(x), Value::Num(y)) => Some(op.eval(x, y)),
        (Value::Sym(x), Value::Sym(y)) => match op {
            CmpOp::Eq => Some(x == y),
            CmpOp::Ne => Some(x != y),
            _ => None,
        },
        (Value::Bool(x), Value::Bool(y)) => match op {
            CmpOp::Eq => Some(x == y),
            CmpOp::Ne => Some(x != y),
            _ => None,
        },
        (Value::Null, Value::Null) => match op {
            CmpOp::Eq => Some(true),
            CmpOp::Ne => Some(false),
            _ => None,
        },
        // Cross-type equality is false in our model (Groovy would coerce,
        // but SmartApp comparisons are homogeneous in practice).
        (_, _) => match op {
            CmpOp::Eq => Some(false),
            CmpOp::Ne => Some(true),
            _ => None,
        },
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => f.write_str("true"),
            Formula::False => f.write_str("false"),
            Formula::Cmp { lhs, op, rhs } => write!(f, "{lhs} {op} {rhs}"),
            Formula::And(parts) => {
                f.write_str("(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" && ")?;
                    }
                    write!(f, "{p}")?;
                }
                f.write_str(")")
            }
            Formula::Or(parts) => {
                f.write_str("(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" || ")?;
                    }
                    write!(f, "{p}")?;
                }
                f.write_str(")")
            }
            Formula::Not(inner) => write!(f, "!({inner})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::varid::DeviceRef;

    fn tvar() -> VarId {
        VarId::env("temperature")
    }

    #[test]
    fn and_flattens_and_simplifies() {
        let f = Formula::and([Formula::True, Formula::True]);
        assert_eq!(f, Formula::True);
        let g = Formula::and([Formula::True, Formula::False]);
        assert_eq!(g, Formula::False);
        let atom = Formula::cmp(Term::var(tvar()), CmpOp::Gt, Term::num(3000));
        let h = Formula::and([atom.clone(), Formula::True]);
        assert_eq!(h, atom);
        let nested = Formula::and([Formula::and([atom.clone(), atom.clone()]), atom.clone()]);
        assert!(matches!(nested, Formula::And(ref v) if v.len() == 3));
    }

    #[test]
    fn or_flattens_and_simplifies() {
        assert_eq!(
            Formula::or([Formula::False, Formula::False]),
            Formula::False
        );
        assert_eq!(Formula::or([Formula::False, Formula::True]), Formula::True);
    }

    #[test]
    fn negate_pushes_into_atoms() {
        let atom = Formula::cmp(Term::var(tvar()), CmpOp::Gt, Term::num(5));
        let neg = atom.negate();
        assert_eq!(
            neg,
            Formula::cmp(Term::var(tvar()), CmpOp::Le, Term::num(5))
        );
        assert_eq!(Formula::True.negate(), Formula::False);
        let double = Formula::Not(Box::new(Formula::True)).negate();
        assert_eq!(double, Formula::True);
    }

    #[test]
    fn variable_collection() {
        let f = Formula::and([
            Formula::cmp(Term::var(tvar()), CmpOp::Gt, Term::num(5)),
            Formula::var_eq(VarId::Mode, Value::sym("Home")),
        ]);
        let vars = f.variables();
        assert_eq!(vars.len(), 2);
        assert!(vars.contains(&VarId::Mode));
    }

    #[test]
    fn substitution_folds_constants() {
        let f = Formula::cmp(Term::var(tvar()), CmpOp::Gt, Term::num(3000));
        let t = f.substitute(&|v| (v == &tvar()).then_some(Value::Num(3500)));
        assert_eq!(t, Formula::True);
        let fa = f.substitute(&|v| (v == &tvar()).then_some(Value::Num(2000)));
        assert_eq!(fa, Formula::False);
        let unk = f.substitute(&|_| None);
        assert_eq!(unk, f);
    }

    #[test]
    fn substitution_in_arithmetic() {
        // t + 5 > 30, t = 26 → true
        let t = Term::Add(Box::new(Term::var(tvar())), Box::new(Term::num(500)));
        let f = Formula::cmp(t, CmpOp::Gt, Term::num(3000));
        assert_eq!(
            f.substitute(&|v| (v == &tvar()).then_some(Value::Num(2600))),
            Formula::True
        );
    }

    #[test]
    fn scaled_multiplication() {
        // 2 * 3 under scale 100: 200 * 300 / 100 = 600.
        let t = Term::Mul(Box::new(Term::num(200)), Box::new(Term::num(300)));
        assert_eq!(t.substitute(&|_| None), Term::num(600));
        let d = Term::Div(Box::new(Term::num(600)), Box::new(Term::num(300)));
        assert_eq!(d.substitute(&|_| None), Term::num(200));
    }

    #[test]
    fn cross_type_equality_is_false() {
        let f = Formula::cmp(Term::sym("on"), CmpOp::Eq, Term::num(1));
        assert_eq!(f.substitute(&|_| None), Formula::False);
        let g = Formula::cmp(Term::sym("on"), CmpOp::Ne, Term::num(1));
        assert_eq!(g.substitute(&|_| None), Formula::True);
    }

    #[test]
    fn map_vars_rebinds_devices() {
        let unbound = DeviceRef::Unbound {
            app: "A".into(),
            input: "tv1".into(),
            capability: "switch".into(),
            kind: hg_capability::device_kind::DeviceKind::Tv,
        };
        let f = Formula::var_eq(VarId::device_attr(unbound, "switch"), Value::sym("on"));
        let mapped = f.map_vars(&|v| match v {
            VarId::DeviceAttr { attribute, .. } => {
                VarId::device_attr(DeviceRef::bound("0e0b"), attribute.clone())
            }
            other => other.clone(),
        });
        let vars = mapped.variables();
        assert!(vars.iter().all(|v| matches!(
            v,
            VarId::DeviceAttr {
                device: DeviceRef::Bound { .. },
                ..
            }
        )));
    }

    #[test]
    fn display_forms() {
        let f = Formula::and([
            Formula::cmp(Term::var(tvar()), CmpOp::Gt, Term::num(3000)),
            Formula::var_eq(VarId::Mode, Value::sym("Night")),
        ]);
        let s = f.to_string();
        assert!(s.contains("env.temperature > 30"), "{s}");
        assert!(s.contains("mode == Night"), "{s}");
    }

    #[test]
    fn cmp_op_negate_flip() {
        assert_eq!(CmpOp::Lt.negate(), CmpOp::Ge);
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
        assert!(CmpOp::Le.eval(&1, &1));
        assert!(!CmpOp::Gt.eval(&1, &1));
    }
}
