//! # hg-rules — HomeGuard's rule intermediate representation
//!
//! The symbolic executor (`hg-symexec`) lowers each SmartApp into
//! trigger-condition-action [`Rule`]s (paper §V, Listing 2) whose trigger
//! constraints and condition predicates are quantifier-free first-order
//! [`Formula`]s over canonical [`VarId`] variables. The detector
//! (`hg-detector`) merges these formulas across apps and checks
//! satisfiability with `hg-solver`.
//!
//! The crate also provides the JSON rule-file codec ([`json`]) that the
//! HomeGuard backend uses to store and ship extracted rules (§VIII-C
//! measures these files at ~6 KB per app).
//!
//! # Examples
//!
//! ```
//! use hg_rules::prelude::*;
//!
//! // env.temperature > 30 && mode == "Night"
//! let f = Formula::and([
//!     Formula::cmp(Term::var(VarId::env("temperature")), CmpOp::Gt,
//!                  Term::num(30 * hg_capability::domains::SCALE)),
//!     Formula::var_eq(VarId::Mode, Value::sym("Night")),
//! ]);
//! assert_eq!(f.variables().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constraint;
pub mod json;
pub mod rule;
pub mod value;
pub mod varid;

/// Commonly used items.
pub mod prelude {
    pub use crate::constraint::{CmpOp, Formula, Term};
    pub use crate::rule::{
        Action, ActionSubject, Condition, DataConstraint, Rule, RuleId, Trigger,
    };
    pub use crate::value::Value;
    pub use crate::varid::{DeviceRef, VarId};
}

pub use constraint::{CmpOp, Formula, Term};
pub use rule::{Action, ActionSubject, Condition, DataConstraint, Rule, RuleId, Trigger};
pub use value::Value;
pub use varid::{DeviceRef, VarId};
