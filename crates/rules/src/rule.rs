//! The trigger-condition-action rule representation (paper Listing 2,
//! Table II).

use crate::constraint::{Formula, Term};
use crate::varid::{DeviceRef, VarId};
use std::fmt;

/// Identifies a rule within a home: the owning app plus the rule's index in
/// that app's extraction output.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId {
    /// The app name.
    pub app: String,
    /// The rule index within the app (extraction order).
    pub index: usize,
}

impl RuleId {
    /// Creates a rule id.
    pub fn new(app: impl Into<String>, index: usize) -> RuleId {
        RuleId {
            app: app.into(),
            index,
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.app, self.index)
    }
}

/// What fires a rule.
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum Trigger {
    /// A subscribed device event: `subscribe(dev, "attr", handler)`.
    DeviceEvent {
        /// The subscribed device.
        subject: DeviceRef,
        /// The subscribed attribute.
        attribute: String,
        /// The constraint on the event value, if the subscription named a
        /// value (`"switch.on"`) or the handler compared `evt.value`.
        /// `None` means any state change triggers the rule.
        constraint: Option<Formula>,
    },
    /// A location-mode change subscription.
    ModeChange {
        /// Constraint on the new mode, if any.
        constraint: Option<Formula>,
    },
    /// Sunrise/sunset or a user-scheduled time of day.
    TimeOfDay {
        /// Scheduled minutes since midnight, if statically known.
        at_minutes: Option<u32>,
        /// Human-readable schedule description (e.g. `"sunset"`).
        description: String,
    },
    /// Recurring schedule (`runEvery5Minutes` installed at entry points).
    Periodic {
        /// Repetition period in seconds.
        period_secs: u64,
    },
    /// The user tapped the app in the companion app (`app.touch`).
    AppTouch,
}

impl Trigger {
    /// The device this trigger subscribes to, if it is a device event.
    pub fn subject(&self) -> Option<&DeviceRef> {
        match self {
            Trigger::DeviceEvent { subject, .. } => Some(subject),
            _ => None,
        }
    }

    /// The trigger's value constraint, if any.
    pub fn constraint(&self) -> Option<&Formula> {
        match self {
            Trigger::DeviceEvent { constraint, .. } => constraint.as_ref(),
            Trigger::ModeChange { constraint } => constraint.as_ref(),
            _ => None,
        }
    }

    /// The canonical variable observed by this trigger, if one exists.
    ///
    /// Used by Trigger-Interference detection: rule `R1` can trigger `R2`
    /// when `R1`'s action writes this variable.
    pub fn observed_var(&self) -> Option<VarId> {
        match self {
            Trigger::DeviceEvent {
                subject, attribute, ..
            } => Some(VarId::canonical_attr(subject, attribute)),
            Trigger::ModeChange { .. } => Some(VarId::Mode),
            _ => None,
        }
    }
}

/// One recorded data constraint: how a local variable got its value
/// (Listing 2's "data constraints" section; Table II shows e.g.
/// `t = tSensor.temperature`).
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct DataConstraint {
    /// The assigned name as written in the app.
    pub name: String,
    /// The value it was bound to, as a term over symbolic sources.
    pub term: Term,
}

impl fmt::Display for DataConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.name, self.term)
    }
}

/// A rule's condition: the predicate that must hold (with data constraints
/// kept for display fidelity — the predicate formula already has them
/// substituted through).
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct Condition {
    /// How intermediate variables were derived.
    pub data_constraints: Vec<DataConstraint>,
    /// The path predicate over canonical variables.
    pub predicate: Formula,
}

impl Condition {
    /// The trivially-true condition.
    pub fn always() -> Condition {
        Condition {
            data_constraints: Vec::new(),
            predicate: Formula::True,
        }
    }
}

/// The entity an action operates on.
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum ActionSubject {
    /// A device actuator.
    Device(DeviceRef),
    /// The location mode (virtual actuator).
    LocationMode,
    /// An outbound message (SMS/push); `target` is the destination if known.
    Message {
        /// Phone number / registration token, when statically known.
        target: Option<String>,
    },
    /// An outbound HTTP request.
    Http {
        /// Request method (`GET`, `POST`, ...).
        method: String,
        /// Destination URL, when statically known.
        url: Option<String>,
    },
    /// A raw hub command.
    HubCommand,
}

impl ActionSubject {
    /// The device reference, if the subject is a device.
    pub fn device(&self) -> Option<&DeviceRef> {
        match self {
            ActionSubject::Device(d) => Some(d),
            _ => None,
        }
    }
}

/// One command issued by a rule (Listing 2's action section).
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct Action {
    /// What the command operates on.
    pub subject: ActionSubject,
    /// The command name (`on`, `off`, `lock`, `setLevel`,
    /// `setLocationMode`, `sendSms`, ...).
    pub command: String,
    /// Command parameters as terms (may reference user inputs).
    pub params: Vec<Term>,
    /// Scheduled delay in seconds before the command is issued (`when` in
    /// Listing 2; 0 = immediately).
    pub when_secs: u64,
    /// Repetition interval in seconds (`period`; 0 = once).
    pub period_secs: u64,
}

impl Action {
    /// An immediate, one-shot device command.
    pub fn device(device: DeviceRef, command: impl Into<String>) -> Action {
        Action {
            subject: ActionSubject::Device(device),
            command: command.into(),
            params: Vec::new(),
            when_secs: 0,
            period_secs: 0,
        }
    }

    /// Adds parameters.
    pub fn with_params(mut self, params: Vec<Term>) -> Action {
        self.params = params;
        self
    }

    /// Adds a delay.
    pub fn after(mut self, when_secs: u64) -> Action {
        self.when_secs = when_secs;
        self
    }

    /// Whether this action controls a physical or virtual actuator (as
    /// opposed to messaging/HTTP, which only detection of privacy flows
    /// cares about).
    pub fn is_actuation(&self) -> bool {
        matches!(
            self.subject,
            ActionSubject::Device(_) | ActionSubject::LocationMode
        )
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.subject {
            ActionSubject::Device(d) => write!(f, "{d} -> {}", self.command)?,
            ActionSubject::LocationMode => write!(f, "location -> {}", self.command)?,
            ActionSubject::Message { target } => write!(
                f,
                "message({}) -> {}",
                target.as_deref().unwrap_or("?"),
                self.command
            )?,
            ActionSubject::Http { method, url } => {
                write!(f, "http {} {}", method, url.as_deref().unwrap_or("?"))?
            }
            ActionSubject::HubCommand => write!(f, "hub -> {}", self.command)?,
        }
        if !self.params.is_empty() {
            f.write_str("(")?;
            for (i, p) in self.params.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{p}")?;
            }
            f.write_str(")")?;
        }
        if self.when_secs > 0 {
            write!(f, " after {}s", self.when_secs)?;
        }
        if self.period_secs > 0 {
            write!(f, " every {}s", self.period_secs)?;
        }
        Ok(())
    }
}

/// A complete trigger-condition-action rule.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct Rule {
    /// Rule identity.
    pub id: RuleId,
    /// What fires the rule.
    pub trigger: Trigger,
    /// What must hold for the actions to run.
    pub condition: Condition,
    /// The commands issued.
    pub actions: Vec<Action>,
}

impl Rule {
    /// The conjunction of the trigger constraint and the condition
    /// predicate — the formula that must be satisfiable for the rule to
    /// take effect (used by overlap detection).
    pub fn situation(&self) -> Formula {
        let mut parts = Vec::new();
        if let Some(c) = self.trigger.constraint() {
            parts.push(c.clone());
        }
        parts.push(self.condition.predicate.clone());
        Formula::and(parts)
    }

    /// All device references the rule mentions (trigger subject plus action
    /// subjects plus condition variables).
    pub fn devices(&self) -> Vec<&DeviceRef> {
        let mut out = Vec::new();
        if let Some(d) = self.trigger.subject() {
            out.push(d);
        }
        for a in &self.actions {
            if let Some(d) = a.subject.device() {
                out.push(d);
            }
        }
        out
    }

    /// The actuation actions only.
    pub fn actuations(&self) -> impl Iterator<Item = &Action> {
        self.actions.iter().filter(|a| a.is_actuation())
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "rule {}:", self.id)?;
        match &self.trigger {
            Trigger::DeviceEvent {
                subject,
                attribute,
                constraint,
            } => {
                write!(f, "  when {subject}.{attribute} changes")?;
                if let Some(c) = constraint {
                    write!(f, " and {c}")?;
                }
                writeln!(f)?;
            }
            Trigger::ModeChange { constraint } => {
                write!(f, "  when mode changes")?;
                if let Some(c) = constraint {
                    write!(f, " and {c}")?;
                }
                writeln!(f)?;
            }
            Trigger::TimeOfDay { description, .. } => writeln!(f, "  at {description}")?,
            Trigger::Periodic { period_secs } => writeln!(f, "  every {period_secs}s")?,
            Trigger::AppTouch => writeln!(f, "  when the app is tapped")?,
        }
        if self.condition.predicate != Formula::True {
            writeln!(f, "  if {}", self.condition.predicate)?;
        }
        for a in &self.actions {
            writeln!(f, "  then {a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::CmpOp;
    use crate::value::Value;
    use hg_capability::device_kind::DeviceKind;

    fn tv() -> DeviceRef {
        DeviceRef::Unbound {
            app: "ComfortTV".into(),
            input: "tv1".into(),
            capability: "switch".into(),
            kind: DeviceKind::Tv,
        }
    }

    fn window() -> DeviceRef {
        DeviceRef::Unbound {
            app: "ComfortTV".into(),
            input: "window1".into(),
            capability: "switch".into(),
            kind: DeviceKind::WindowOpener,
        }
    }

    fn rule1() -> Rule {
        // Paper Rule 1 / Table II: when TV turns on, if temperature > 30 and
        // window off, turn on window opener.
        Rule {
            id: RuleId::new("ComfortTV", 0),
            trigger: Trigger::DeviceEvent {
                subject: tv(),
                attribute: "switch".into(),
                constraint: Some(Formula::var_eq(
                    VarId::device_attr(tv(), "switch"),
                    Value::sym("on"),
                )),
            },
            condition: Condition {
                data_constraints: vec![DataConstraint {
                    name: "t".into(),
                    term: Term::var(VarId::device_attr(
                        DeviceRef::Unbound {
                            app: "ComfortTV".into(),
                            input: "tSensor".into(),
                            capability: "temperatureMeasurement".into(),
                            kind: DeviceKind::Unknown,
                        },
                        "temperature",
                    )),
                }],
                predicate: Formula::and([
                    Formula::cmp(
                        Term::var(VarId::env("temperature")),
                        CmpOp::Gt,
                        Term::var(VarId::UserInput {
                            app: "ComfortTV".into(),
                            name: "threshold1".into(),
                        }),
                    ),
                    Formula::var_eq(VarId::device_attr(window(), "switch"), Value::sym("off")),
                ]),
            },
            actions: vec![Action::device(window(), "on")],
        }
    }

    #[test]
    fn situation_conjoins_trigger_and_condition() {
        let r = rule1();
        let sit = r.situation();
        let vars = sit.variables();
        assert!(vars
            .iter()
            .any(|v| matches!(v, VarId::Env(p) if p == "temperature")));
        assert!(vars.iter().any(|v| matches!(v, VarId::UserInput { .. })));
        // Trigger constraint folded in.
        assert!(vars
            .iter()
            .any(|v| matches!(v, VarId::DeviceAttr { attribute, .. } if attribute == "switch")));
    }

    #[test]
    fn devices_lists_trigger_and_action_subjects() {
        let r = rule1();
        let devs = r.devices();
        assert_eq!(devs.len(), 2);
    }

    #[test]
    fn actuations_filter() {
        let mut r = rule1();
        r.actions.push(Action {
            subject: ActionSubject::Message { target: None },
            command: "sendSms".into(),
            params: vec![],
            when_secs: 0,
            period_secs: 0,
        });
        assert_eq!(r.actuations().count(), 1);
        assert_eq!(r.actions.len(), 2);
    }

    #[test]
    fn display_is_readable() {
        let r = rule1();
        let s = r.to_string();
        assert!(s.contains("ComfortTV#0"), "{s}");
        assert!(s.contains("when"), "{s}");
        assert!(s.contains("then"), "{s}");
    }

    #[test]
    fn action_builders() {
        let a = Action::device(window(), "setLevel")
            .with_params(vec![Term::num(5000)])
            .after(300);
        assert_eq!(a.when_secs, 300);
        assert_eq!(a.params.len(), 1);
        assert!(a.is_actuation());
        let s = a.to_string();
        assert!(s.contains("after 300s"), "{s}");
    }

    #[test]
    fn trigger_observed_var() {
        let r = rule1();
        let v = r.trigger.observed_var().unwrap();
        assert!(matches!(v, VarId::DeviceAttr { attribute, .. } if attribute == "switch"));
        assert_eq!(Trigger::AppTouch.observed_var(), None);
        assert_eq!(
            Trigger::ModeChange { constraint: None }.observed_var(),
            Some(VarId::Mode)
        );
    }
}
