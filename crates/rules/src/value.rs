//! Runtime/constraint values.

use hg_capability::domains::{parse_scaled, unscaled_to_string};
use std::fmt;

/// A concrete value appearing in rules and constraints.
///
/// Numbers are scaled fixed-point (`hg_capability::domains::SCALE`); symbols
/// are interned attribute values such as `"on"` or `"locked"`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A scaled fixed-point number.
    Num(i64),
    /// A symbolic enum value (`"on"`, `"locked"`, a mode name, ...).
    Sym(String),
    /// A boolean.
    Bool(bool),
    /// Groovy `null`.
    Null,
}

impl Value {
    /// Builds a numeric value from a natural-unit integer.
    pub fn from_natural(n: i64) -> Value {
        Value::Num(n * hg_capability::domains::SCALE)
    }

    /// Builds a numeric value from decimal text (`"30.5"`).
    pub fn from_decimal_text(text: &str) -> Option<Value> {
        parse_scaled(text).map(Value::Num)
    }

    /// Builds a symbolic value.
    pub fn sym(s: impl Into<String>) -> Value {
        Value::Sym(s.into())
    }

    /// The scaled number, if numeric.
    pub fn as_num(&self) -> Option<i64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The symbol text, if symbolic.
    pub fn as_sym(&self) -> Option<&str> {
        match self {
            Value::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// Groovy truthiness: `false`, `null`, `0` and `""` are falsy.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Null => false,
            Value::Num(n) => *n != 0,
            Value::Sym(s) => !s.is_empty(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(n) => f.write_str(&unscaled_to_string(*n)),
            Value::Sym(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => f.write_str("null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        assert_eq!(Value::from_natural(30), Value::Num(3000));
        assert_eq!(Value::from_decimal_text("30.5"), Some(Value::Num(3050)));
        assert_eq!(Value::from_decimal_text("x"), None);
        assert_eq!(Value::sym("on").as_sym(), Some("on"));
        assert_eq!(Value::Num(5).as_num(), Some(5));
        assert_eq!(Value::sym("on").as_num(), None);
    }

    #[test]
    fn truthiness_follows_groovy() {
        assert!(Value::Bool(true).truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(!Value::Null.truthy());
        assert!(!Value::Num(0).truthy());
        assert!(Value::Num(1).truthy());
        assert!(!Value::Sym(String::new()).truthy());
        assert!(Value::sym("on").truthy());
    }

    #[test]
    fn display_unscales_numbers() {
        assert_eq!(Value::Num(3050).to_string(), "30.5");
        assert_eq!(Value::sym("on").to_string(), "on");
        assert_eq!(Value::Null.to_string(), "null");
    }
}
