//! A small self-contained JSON codec for rule files.
//!
//! The paper stores extracted rules as JSON on the HomeGuard backend
//! (§VIII-C measures an average rule file of 6.2 KB per app). We hand-roll
//! the codec rather than pull in an unapproved dependency; the format is a
//! direct structural encoding of [`Rule`].

use crate::constraint::{CmpOp, Formula, Term};
use crate::rule::{Action, ActionSubject, Condition, DataConstraint, Rule, RuleId, Trigger};
use crate::value::Value;
use crate::varid::{DeviceRef, VarId};
use hg_capability::device_kind::DeviceKind;
use std::collections::BTreeMap;
use std::fmt;

/// Version of the rule-file / snapshot schema this codec writes.
///
/// Bumped whenever the structural encoding of [`Rule`] (or anything layered
/// on it, such as `hg-persist` snapshots) changes incompatibly. Readers
/// embed it in their envelopes and refuse documents from a different
/// schema generation instead of misparsing them.
pub const SCHEMA_VERSION: i64 = 1;

/// A JSON document value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (always integral in rule files).
    Num(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload.
    pub fn as_num(&self) -> Option<i64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Array payload.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&n.to_string()),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError {
                pos: p.pos,
                message: "trailing characters",
            });
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub pos: usize,
    /// Description of the problem.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            pos: self.pos,
            message,
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn keyword(&mut self, kw: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err("invalid keyword"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<i64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'/') => out.push('/'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("peeked byte exists");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // {
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:`"));
            }
            self.pos += 1;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

// ----- rule encoding ----------------------------------------------------------

/// Encodes a rule to its JSON document.
pub fn rule_to_json(rule: &Rule) -> Json {
    Json::obj([
        ("app", Json::str(&rule.id.app)),
        ("index", Json::Num(rule.id.index as i64)),
        ("trigger", trigger_to_json(&rule.trigger)),
        ("condition", condition_to_json(&rule.condition)),
        (
            "actions",
            Json::Arr(rule.actions.iter().map(action_to_json).collect()),
        ),
    ])
}

/// Decodes a rule from its JSON document.
///
/// # Errors
///
/// Returns a static message naming the first malformed field.
pub fn rule_from_json(json: &Json) -> Result<Rule, &'static str> {
    let app = json
        .get("app")
        .and_then(Json::as_str)
        .ok_or("missing app")?;
    let index = json
        .get("index")
        .and_then(Json::as_num)
        .ok_or("missing index")? as usize;
    let trigger = trigger_from_json(json.get("trigger").ok_or("missing trigger")?)?;
    let condition = condition_from_json(json.get("condition").ok_or("missing condition")?)?;
    let actions = json
        .get("actions")
        .and_then(Json::as_arr)
        .ok_or("missing actions")?
        .iter()
        .map(action_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Rule {
        id: RuleId::new(app, index),
        trigger,
        condition,
        actions,
    })
}

/// Serializes a set of rules (an app's rule file) to JSON text.
pub fn rules_to_text(rules: &[Rule]) -> String {
    Json::Arr(rules.iter().map(rule_to_json).collect()).to_text()
}

/// Parses an app's rule file back.
///
/// # Errors
///
/// Returns a message for malformed JSON or rule structure.
pub fn rules_from_text(text: &str) -> Result<Vec<Rule>, String> {
    let json = Json::parse(text).map_err(|e| e.to_string())?;
    json.as_arr()
        .ok_or_else(|| "rule file must be a JSON array".to_string())?
        .iter()
        .map(|j| rule_from_json(j).map_err(|e| e.to_string()))
        .collect()
}

fn trigger_to_json(t: &Trigger) -> Json {
    match t {
        Trigger::DeviceEvent {
            subject,
            attribute,
            constraint,
        } => Json::obj([
            ("type", Json::str("deviceEvent")),
            ("subject", device_ref_to_json(subject)),
            ("attribute", Json::str(attribute)),
            (
                "constraint",
                constraint
                    .as_ref()
                    .map(formula_to_json)
                    .unwrap_or(Json::Null),
            ),
        ]),
        Trigger::ModeChange { constraint } => Json::obj([
            ("type", Json::str("modeChange")),
            (
                "constraint",
                constraint
                    .as_ref()
                    .map(formula_to_json)
                    .unwrap_or(Json::Null),
            ),
        ]),
        Trigger::TimeOfDay {
            at_minutes,
            description,
        } => Json::obj([
            ("type", Json::str("timeOfDay")),
            (
                "atMinutes",
                at_minutes
                    .map(|m| Json::Num(m as i64))
                    .unwrap_or(Json::Null),
            ),
            ("description", Json::str(description)),
        ]),
        Trigger::Periodic { period_secs } => Json::obj([
            ("type", Json::str("periodic")),
            ("periodSecs", Json::Num(*period_secs as i64)),
        ]),
        Trigger::AppTouch => Json::obj([("type", Json::str("appTouch"))]),
    }
}

fn trigger_from_json(j: &Json) -> Result<Trigger, &'static str> {
    match j.get("type").and_then(Json::as_str) {
        Some("deviceEvent") => Ok(Trigger::DeviceEvent {
            subject: device_ref_from_json(j.get("subject").ok_or("missing subject")?)?,
            attribute: j
                .get("attribute")
                .and_then(Json::as_str)
                .ok_or("missing attribute")?
                .to_string(),
            constraint: optional_formula(j.get("constraint"))?,
        }),
        Some("modeChange") => Ok(Trigger::ModeChange {
            constraint: optional_formula(j.get("constraint"))?,
        }),
        Some("timeOfDay") => Ok(Trigger::TimeOfDay {
            at_minutes: j.get("atMinutes").and_then(Json::as_num).map(|n| n as u32),
            description: j
                .get("description")
                .and_then(Json::as_str)
                .ok_or("missing description")?
                .to_string(),
        }),
        Some("periodic") => Ok(Trigger::Periodic {
            period_secs: j
                .get("periodSecs")
                .and_then(Json::as_num)
                .ok_or("missing period")? as u64,
        }),
        Some("appTouch") => Ok(Trigger::AppTouch),
        _ => Err("unknown trigger type"),
    }
}

fn optional_formula(j: Option<&Json>) -> Result<Option<Formula>, &'static str> {
    match j {
        None | Some(Json::Null) => Ok(None),
        Some(other) => formula_from_json(other).map(Some),
    }
}

fn condition_to_json(c: &Condition) -> Json {
    Json::obj([
        (
            "dataConstraints",
            Json::Arr(
                c.data_constraints
                    .iter()
                    .map(|d| {
                        Json::obj([
                            ("name", Json::str(&d.name)),
                            ("term", term_to_json(&d.term)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("predicate", formula_to_json(&c.predicate)),
    ])
}

fn condition_from_json(j: &Json) -> Result<Condition, &'static str> {
    let data_constraints = j
        .get("dataConstraints")
        .and_then(Json::as_arr)
        .ok_or("missing dataConstraints")?
        .iter()
        .map(|d| {
            Ok(DataConstraint {
                name: d
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("missing dc name")?
                    .to_string(),
                term: term_from_json(d.get("term").ok_or("missing dc term")?)?,
            })
        })
        .collect::<Result<Vec<_>, &'static str>>()?;
    let predicate = formula_from_json(j.get("predicate").ok_or("missing predicate")?)?;
    Ok(Condition {
        data_constraints,
        predicate,
    })
}

fn action_to_json(a: &Action) -> Json {
    let subject = match &a.subject {
        ActionSubject::Device(d) => Json::obj([
            ("type", Json::str("device")),
            ("device", device_ref_to_json(d)),
        ]),
        ActionSubject::LocationMode => Json::obj([("type", Json::str("locationMode"))]),
        ActionSubject::Message { target } => Json::obj([
            ("type", Json::str("message")),
            (
                "target",
                target.as_ref().map(Json::str).unwrap_or(Json::Null),
            ),
        ]),
        ActionSubject::Http { method, url } => Json::obj([
            ("type", Json::str("http")),
            ("method", Json::str(method)),
            ("url", url.as_ref().map(Json::str).unwrap_or(Json::Null)),
        ]),
        ActionSubject::HubCommand => Json::obj([("type", Json::str("hubCommand"))]),
    };
    Json::obj([
        ("subject", subject),
        ("command", Json::str(&a.command)),
        (
            "params",
            Json::Arr(a.params.iter().map(term_to_json).collect()),
        ),
        ("when", Json::Num(a.when_secs as i64)),
        ("period", Json::Num(a.period_secs as i64)),
    ])
}

fn action_from_json(j: &Json) -> Result<Action, &'static str> {
    let sj = j.get("subject").ok_or("missing subject")?;
    let subject = match sj.get("type").and_then(Json::as_str) {
        Some("device") => ActionSubject::Device(device_ref_from_json(
            sj.get("device").ok_or("missing device")?,
        )?),
        Some("locationMode") => ActionSubject::LocationMode,
        Some("message") => ActionSubject::Message {
            target: sj.get("target").and_then(Json::as_str).map(str::to_string),
        },
        Some("http") => ActionSubject::Http {
            method: sj
                .get("method")
                .and_then(Json::as_str)
                .ok_or("missing method")?
                .to_string(),
            url: sj.get("url").and_then(Json::as_str).map(str::to_string),
        },
        Some("hubCommand") => ActionSubject::HubCommand,
        _ => return Err("unknown action subject"),
    };
    Ok(Action {
        subject,
        command: j
            .get("command")
            .and_then(Json::as_str)
            .ok_or("missing command")?
            .to_string(),
        params: j
            .get("params")
            .and_then(Json::as_arr)
            .ok_or("missing params")?
            .iter()
            .map(term_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        when_secs: j.get("when").and_then(Json::as_num).unwrap_or(0) as u64,
        period_secs: j.get("period").and_then(Json::as_num).unwrap_or(0) as u64,
    })
}

fn device_ref_to_json(d: &DeviceRef) -> Json {
    match d {
        DeviceRef::Bound { device_id } => Json::obj([
            ("bound", Json::Bool(true)),
            ("deviceId", Json::str(device_id)),
        ]),
        DeviceRef::Unbound {
            app,
            input,
            capability,
            kind,
        } => Json::obj([
            ("bound", Json::Bool(false)),
            ("app", Json::str(app)),
            ("input", Json::str(input)),
            ("capability", Json::str(capability)),
            ("kind", Json::str(kind.name())),
        ]),
    }
}

fn device_ref_from_json(j: &Json) -> Result<DeviceRef, &'static str> {
    match j.get("bound") {
        Some(Json::Bool(true)) => Ok(DeviceRef::Bound {
            device_id: j
                .get("deviceId")
                .and_then(Json::as_str)
                .ok_or("missing deviceId")?
                .to_string(),
        }),
        Some(Json::Bool(false)) => {
            let kind_name = j.get("kind").and_then(Json::as_str).ok_or("missing kind")?;
            let kind = DeviceKind::ALL
                .into_iter()
                .find(|k| k.name() == kind_name)
                .unwrap_or(DeviceKind::Unknown);
            Ok(DeviceRef::Unbound {
                app: j
                    .get("app")
                    .and_then(Json::as_str)
                    .ok_or("missing app")?
                    .to_string(),
                input: j
                    .get("input")
                    .and_then(Json::as_str)
                    .ok_or("missing input")?
                    .to_string(),
                capability: j
                    .get("capability")
                    .and_then(Json::as_str)
                    .ok_or("missing capability")?
                    .to_string(),
                kind,
            })
        }
        _ => Err("missing bound flag"),
    }
}

/// Encodes a [`Value`] (shared with `hg-persist` session snapshots).
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Num(n) => Json::obj([("num", Json::Num(*n))]),
        Value::Sym(s) => Json::obj([("sym", Json::str(s))]),
        Value::Bool(b) => Json::obj([("bool", Json::Bool(*b))]),
        Value::Null => Json::Null,
    }
}

/// Decodes a [`Value`].
///
/// # Errors
///
/// Returns a static message on a malformed document.
pub fn value_from_json(j: &Json) -> Result<Value, &'static str> {
    if *j == Json::Null {
        return Ok(Value::Null);
    }
    if let Some(n) = j.get("num").and_then(Json::as_num) {
        return Ok(Value::Num(n));
    }
    if let Some(s) = j.get("sym").and_then(Json::as_str) {
        return Ok(Value::Sym(s.to_string()));
    }
    if let Some(Json::Bool(b)) = j.get("bool") {
        return Ok(Value::Bool(*b));
    }
    Err("invalid value")
}

/// Encodes a [`VarId`] (shared with `hg-persist` witness snapshots).
pub fn varid_to_json(v: &VarId) -> Json {
    match v {
        VarId::DeviceAttr { device, attribute } => Json::obj([
            ("type", Json::str("deviceAttr")),
            ("device", device_ref_to_json(device)),
            ("attribute", Json::str(attribute)),
        ]),
        VarId::Env(p) => Json::obj([("type", Json::str("env")), ("property", Json::str(p))]),
        VarId::Mode => Json::obj([("type", Json::str("mode"))]),
        VarId::TimeOfDay => Json::obj([("type", Json::str("timeOfDay"))]),
        VarId::DayOfWeek => Json::obj([("type", Json::str("dayOfWeek"))]),
        VarId::UserInput { app, name } => Json::obj([
            ("type", Json::str("userInput")),
            ("app", Json::str(app)),
            ("name", Json::str(name)),
        ]),
        VarId::State { app, name } => Json::obj([
            ("type", Json::str("state")),
            ("app", Json::str(app)),
            ("name", Json::str(name)),
        ]),
        VarId::Opaque { app, name } => Json::obj([
            ("type", Json::str("opaque")),
            ("app", Json::str(app)),
            ("name", Json::str(name)),
        ]),
    }
}

/// Decodes a [`VarId`].
///
/// # Errors
///
/// Returns a static message on a malformed document.
pub fn varid_from_json(j: &Json) -> Result<VarId, &'static str> {
    let get_app_name = || -> Result<(String, String), &'static str> {
        Ok((
            j.get("app")
                .and_then(Json::as_str)
                .ok_or("missing app")?
                .to_string(),
            j.get("name")
                .and_then(Json::as_str)
                .ok_or("missing name")?
                .to_string(),
        ))
    };
    match j.get("type").and_then(Json::as_str) {
        Some("deviceAttr") => Ok(VarId::DeviceAttr {
            device: device_ref_from_json(j.get("device").ok_or("missing device")?)?,
            attribute: j
                .get("attribute")
                .and_then(Json::as_str)
                .ok_or("missing attribute")?
                .to_string(),
        }),
        Some("env") => Ok(VarId::Env(
            j.get("property")
                .and_then(Json::as_str)
                .ok_or("missing property")?
                .to_string(),
        )),
        Some("mode") => Ok(VarId::Mode),
        Some("timeOfDay") => Ok(VarId::TimeOfDay),
        Some("dayOfWeek") => Ok(VarId::DayOfWeek),
        Some("userInput") => {
            let (app, name) = get_app_name()?;
            Ok(VarId::UserInput { app, name })
        }
        Some("state") => {
            let (app, name) = get_app_name()?;
            Ok(VarId::State { app, name })
        }
        Some("opaque") => {
            let (app, name) = get_app_name()?;
            Ok(VarId::Opaque { app, name })
        }
        _ => Err("unknown varid type"),
    }
}

fn term_to_json(t: &Term) -> Json {
    match t {
        Term::Const(v) => Json::obj([("const", value_to_json(v))]),
        Term::Var(v) => Json::obj([("var", varid_to_json(v))]),
        Term::Add(a, b) => binop_json("add", a, b),
        Term::Sub(a, b) => binop_json("sub", a, b),
        Term::Mul(a, b) => binop_json("mul", a, b),
        Term::Div(a, b) => binop_json("div", a, b),
        Term::Neg(a) => Json::obj([("neg", term_to_json(a))]),
    }
}

fn binop_json(op: &'static str, a: &Term, b: &Term) -> Json {
    Json::obj([(op, Json::Arr(vec![term_to_json(a), term_to_json(b)]))])
}

fn term_from_json(j: &Json) -> Result<Term, &'static str> {
    if let Some(v) = j.get("const") {
        return Ok(Term::Const(value_from_json(v)?));
    }
    if let Some(v) = j.get("var") {
        return Ok(Term::Var(varid_from_json(v)?));
    }
    for (key, ctor) in [
        ("add", Term::Add as fn(Box<Term>, Box<Term>) -> Term),
        ("sub", Term::Sub),
        ("mul", Term::Mul),
        ("div", Term::Div),
    ] {
        if let Some(pair) = j.get(key).and_then(Json::as_arr) {
            if pair.len() != 2 {
                return Err("binary term needs two operands");
            }
            return Ok(ctor(
                Box::new(term_from_json(&pair[0])?),
                Box::new(term_from_json(&pair[1])?),
            ));
        }
    }
    if let Some(inner) = j.get("neg") {
        return Ok(Term::Neg(Box::new(term_from_json(inner)?)));
    }
    Err("invalid term")
}

fn formula_to_json(f: &Formula) -> Json {
    match f {
        Formula::True => Json::Bool(true),
        Formula::False => Json::Bool(false),
        Formula::Cmp { lhs, op, rhs } => Json::obj([
            ("lhs", term_to_json(lhs)),
            ("op", Json::str(op.symbol())),
            ("rhs", term_to_json(rhs)),
        ]),
        Formula::And(parts) => Json::obj([(
            "and",
            Json::Arr(parts.iter().map(formula_to_json).collect()),
        )]),
        Formula::Or(parts) => {
            Json::obj([("or", Json::Arr(parts.iter().map(formula_to_json).collect()))])
        }
        Formula::Not(inner) => Json::obj([("not", formula_to_json(inner))]),
    }
}

fn formula_from_json(j: &Json) -> Result<Formula, &'static str> {
    match j {
        Json::Bool(true) => return Ok(Formula::True),
        Json::Bool(false) => return Ok(Formula::False),
        _ => {}
    }
    if let Some(parts) = j.get("and").and_then(Json::as_arr) {
        return Ok(Formula::And(
            parts
                .iter()
                .map(formula_from_json)
                .collect::<Result<_, _>>()?,
        ));
    }
    if let Some(parts) = j.get("or").and_then(Json::as_arr) {
        return Ok(Formula::Or(
            parts
                .iter()
                .map(formula_from_json)
                .collect::<Result<_, _>>()?,
        ));
    }
    if let Some(inner) = j.get("not") {
        return Ok(Formula::Not(Box::new(formula_from_json(inner)?)));
    }
    let op_text = j
        .get("op")
        .and_then(Json::as_str)
        .ok_or("invalid formula")?;
    let op = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ]
    .into_iter()
    .find(|o| o.symbol() == op_text)
    .ok_or("unknown operator")?;
    Ok(Formula::Cmp {
        lhs: term_from_json(j.get("lhs").ok_or("missing lhs")?)?,
        op,
        rhs: term_from_json(j.get("rhs").ok_or("missing rhs")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::CmpOp;
    use crate::rule::{Condition, Trigger};

    #[test]
    fn json_value_roundtrip() {
        let doc = Json::obj([
            ("a", Json::Num(-5)),
            ("b", Json::str("hi \"there\"\n")),
            ("c", Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("d", Json::Obj(BTreeMap::new())),
        ]);
        let text = doc.to_text();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn json_parse_errors() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("123abc").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn json_whitespace_tolerant() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    fn sample_rule() -> Rule {
        let window = DeviceRef::Unbound {
            app: "ComfortTV".into(),
            input: "window1".into(),
            capability: "switch".into(),
            kind: DeviceKind::WindowOpener,
        };
        let tv = DeviceRef::Unbound {
            app: "ComfortTV".into(),
            input: "tv1".into(),
            capability: "switch".into(),
            kind: DeviceKind::Tv,
        };
        Rule {
            id: RuleId::new("ComfortTV", 0),
            trigger: Trigger::DeviceEvent {
                subject: tv.clone(),
                attribute: "switch".into(),
                constraint: Some(Formula::var_eq(
                    VarId::device_attr(tv, "switch"),
                    Value::sym("on"),
                )),
            },
            condition: Condition {
                data_constraints: vec![DataConstraint {
                    name: "t".into(),
                    term: Term::var(VarId::env("temperature")),
                }],
                predicate: Formula::and([
                    Formula::cmp(
                        Term::var(VarId::env("temperature")),
                        CmpOp::Gt,
                        Term::var(VarId::UserInput {
                            app: "ComfortTV".into(),
                            name: "threshold1".into(),
                        }),
                    ),
                    Formula::var_eq(
                        VarId::device_attr(window.clone(), "switch"),
                        Value::sym("off"),
                    ),
                ]),
            },
            actions: vec![Action::device(window, "on")],
        }
    }

    #[test]
    fn rule_roundtrip() {
        let r = sample_rule();
        let encoded = rule_to_json(&r);
        let decoded = rule_from_json(&encoded).unwrap();
        assert_eq!(decoded, r);
    }

    #[test]
    fn rule_file_roundtrip() {
        let rules = vec![sample_rule(), sample_rule()];
        let text = rules_to_text(&rules);
        let back = rules_from_text(&text).unwrap();
        assert_eq!(back, rules);
    }

    #[test]
    fn rule_file_size_is_reasonable() {
        // Sanity for the §VIII-C size experiment: a one-rule app encodes to
        // a few KB at most.
        let text = rules_to_text(&[sample_rule()]);
        assert!(text.len() > 100);
        assert!(
            text.len() < 8_000,
            "rule file unexpectedly large: {}",
            text.len()
        );
    }

    #[test]
    fn all_trigger_kinds_roundtrip() {
        for trig in [
            Trigger::ModeChange { constraint: None },
            Trigger::TimeOfDay {
                at_minutes: Some(420),
                description: "7:00".into(),
            },
            Trigger::TimeOfDay {
                at_minutes: None,
                description: "sunset".into(),
            },
            Trigger::Periodic { period_secs: 300 },
            Trigger::AppTouch,
        ] {
            let mut r = sample_rule();
            r.trigger = trig;
            let decoded = rule_from_json(&rule_to_json(&r)).unwrap();
            assert_eq!(decoded, r);
        }
    }

    #[test]
    fn all_action_subjects_roundtrip() {
        for subject in [
            ActionSubject::LocationMode,
            ActionSubject::Message {
                target: Some("555".into()),
            },
            ActionSubject::Message { target: None },
            ActionSubject::Http {
                method: "POST".into(),
                url: Some("http://x".into()),
            },
            ActionSubject::HubCommand,
        ] {
            let mut r = sample_rule();
            r.actions = vec![Action {
                subject,
                command: "go".into(),
                params: vec![Term::num(5), Term::sym("x")],
                when_secs: 60,
                period_secs: 300,
            }];
            let decoded = rule_from_json(&rule_to_json(&r)).unwrap();
            assert_eq!(decoded, r);
        }
    }

    #[test]
    fn nested_term_roundtrip() {
        let t = Term::Add(
            Box::new(Term::Mul(
                Box::new(Term::num(2)),
                Box::new(Term::var(VarId::Mode)),
            )),
            Box::new(Term::Neg(Box::new(Term::num(7)))),
        );
        let decoded = term_from_json(&term_to_json(&t)).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn malformed_rule_rejected() {
        let j = Json::obj([("app", Json::str("X"))]);
        assert!(rule_from_json(&j).is_err());
        assert!(rules_from_text("{}").is_err());
        assert!(rules_from_text("not json").is_err());
    }
}
