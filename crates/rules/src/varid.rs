//! Canonical constraint-variable identities.
//!
//! Overlap detection (paper §VI-A2) works by merging the constraint formulas
//! of two rules and asking a solver whether the conjunction is satisfiable.
//! For that to be meaningful, the two rules' formulas must use *the same
//! variable* exactly when they observe the same piece of world state. This
//! module defines that canonical naming.

use hg_capability::device_kind::DeviceKind;
use std::fmt;

/// A reference to a device as seen by a rule.
///
/// Before installation the rule only knows the input slot it was granted
/// ([`DeviceRef::Unbound`]); after configuration collection the 128-bit
/// device identifier pins it down ([`DeviceRef::Bound`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceRef {
    /// A concrete installed device, identified by its unique id.
    Bound {
        /// The 128-bit device identifier, hex-encoded.
        device_id: String,
    },
    /// An input slot not yet bound to a physical device.
    Unbound {
        /// The app that declared the input.
        app: String,
        /// The input variable name, e.g. `tv1`.
        input: String,
        /// The requested capability (short name).
        capability: String,
        /// Classified device kind (from titles/descriptions).
        kind: DeviceKind,
    },
}

impl DeviceRef {
    /// A bound reference.
    pub fn bound(device_id: impl Into<String>) -> DeviceRef {
        DeviceRef::Bound {
            device_id: device_id.into(),
        }
    }

    /// Whether two references certainly denote the same physical device.
    ///
    /// Bound references compare by id. Unbound references are never certain
    /// (binding happens at install time); callers doing store-wide analysis
    /// use [`DeviceRef::same_type`] instead, as §VIII-B of the paper does.
    pub fn same_device(&self, other: &DeviceRef) -> bool {
        match (self, other) {
            (DeviceRef::Bound { device_id: a }, DeviceRef::Bound { device_id: b }) => a == b,
            _ => false,
        }
    }

    /// Whether two references could be granted the same device type
    /// (capability and classified kind agree).
    pub fn same_type(&self, other: &DeviceRef) -> bool {
        match (self, other) {
            (
                DeviceRef::Unbound {
                    capability: ca,
                    kind: ka,
                    ..
                },
                DeviceRef::Unbound {
                    capability: cb,
                    kind: kb,
                    ..
                },
            ) => ca == cb && ka == kb,
            (DeviceRef::Bound { device_id: a }, DeviceRef::Bound { device_id: b }) => a == b,
            _ => false,
        }
    }

    /// The capability this reference was granted with, if known.
    pub fn capability(&self) -> Option<&str> {
        match self {
            DeviceRef::Unbound { capability, .. } => Some(capability),
            DeviceRef::Bound { .. } => None,
        }
    }

    /// The classified device kind, if known.
    pub fn kind(&self) -> Option<DeviceKind> {
        match self {
            DeviceRef::Unbound { kind, .. } => Some(*kind),
            DeviceRef::Bound { .. } => None,
        }
    }

    /// The canonical key used when building constraint variables: bound
    /// devices key by id; unbound ones by `app/input`.
    pub fn key(&self) -> String {
        match self {
            DeviceRef::Bound { device_id } => format!("id:{device_id}"),
            DeviceRef::Unbound { app, input, .. } => format!("slot:{app}/{input}"),
        }
    }
}

impl fmt::Display for DeviceRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceRef::Bound { device_id } => write!(f, "device {device_id}"),
            DeviceRef::Unbound {
                app,
                input,
                capability,
                ..
            } => {
                write!(f, "{app}/{input} ({capability})")
            }
        }
    }
}

/// A canonical constraint variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VarId {
    /// An attribute of a device: `dev:<key>.<attribute>`.
    DeviceAttr {
        /// The device.
        device: DeviceRef,
        /// The attribute name.
        attribute: String,
    },
    /// A home environment feature measured by sensors: `env.<property>`.
    Env(String),
    /// The location mode, a platform-defined virtual sensor/actuator.
    Mode,
    /// Time of day, in minutes since midnight (0..1439).
    TimeOfDay,
    /// Day of week, 0 = Monday .. 6 = Sunday.
    DayOfWeek,
    /// A user-configured input value: `user:<app>/<name>`.
    UserInput {
        /// The declaring app.
        app: String,
        /// The input variable name.
        name: String,
    },
    /// Persistent app state (`state.x` / `atomicState.x`).
    State {
        /// The owning app.
        app: String,
        /// The state key.
        name: String,
    },
    /// An opaque symbolic source (HTTP response field, undocumented API
    /// return value): `sym:<app>/<name>`.
    Opaque {
        /// The app in whose extraction the source appeared.
        app: String,
        /// A descriptive name assigned by the executor.
        name: String,
    },
}

impl VarId {
    /// A device-attribute variable.
    pub fn device_attr(device: DeviceRef, attribute: impl Into<String>) -> VarId {
        VarId::DeviceAttr {
            device,
            attribute: attribute.into(),
        }
    }

    /// The canonical variable for reading `attribute` of `device`.
    ///
    /// Environment-measured attributes (temperature, illuminance, humidity,
    /// power, carbon dioxide, sound level) unify across all sensors into a
    /// single `env.*` variable — in the paper's home-context model (Fig. 1)
    /// sensors *observe shared environment features*, which is exactly what
    /// makes the environmental interference channel (§VI-B/C) work.
    /// Device-private attributes (switch, lock, motion, ...) stay per-device.
    pub fn canonical_attr(device: &DeviceRef, attribute: &str) -> VarId {
        match attribute {
            "temperature" => VarId::env("temperature"),
            "illuminance" => VarId::env("illuminance"),
            "humidity" => VarId::env("humidity"),
            "power" => VarId::env("power"),
            "carbonDioxide" => VarId::env("airQuality"),
            "soundPressureLevel" => VarId::env("noise"),
            _ => VarId::device_attr(device.clone(), attribute),
        }
    }

    /// An environment variable for `property`.
    pub fn env(property: impl Into<String>) -> VarId {
        VarId::Env(property.into())
    }

    /// Whether this variable is shared world state that unifies across apps
    /// (environment, mode, time) as opposed to app-private state.
    pub fn is_shared_world(&self) -> bool {
        matches!(
            self,
            VarId::Env(_) | VarId::Mode | VarId::TimeOfDay | VarId::DayOfWeek
        ) || matches!(self, VarId::DeviceAttr { .. })
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarId::DeviceAttr { device, attribute } => {
                write!(f, "dev:{}.{attribute}", device.key())
            }
            VarId::Env(p) => write!(f, "env.{p}"),
            VarId::Mode => f.write_str("mode"),
            VarId::TimeOfDay => f.write_str("time.ofDay"),
            VarId::DayOfWeek => f.write_str("time.dayOfWeek"),
            VarId::UserInput { app, name } => write!(f, "user:{app}/{name}"),
            VarId::State { app, name } => write!(f, "state:{app}/{name}"),
            VarId::Opaque { app, name } => write!(f, "sym:{app}/{name}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unbound(app: &str, input: &str, cap: &str, kind: DeviceKind) -> DeviceRef {
        DeviceRef::Unbound {
            app: app.into(),
            input: input.into(),
            capability: cap.into(),
            kind,
        }
    }

    #[test]
    fn bound_same_device() {
        let a = DeviceRef::bound("0e0b741b");
        let b = DeviceRef::bound("0e0b741b");
        let c = DeviceRef::bound("deadbeef");
        assert!(a.same_device(&b));
        assert!(!a.same_device(&c));
    }

    #[test]
    fn unbound_never_same_device_but_maybe_same_type() {
        let a = unbound("A", "tv1", "switch", DeviceKind::Tv);
        let b = unbound("B", "tele", "switch", DeviceKind::Tv);
        let c = unbound("B", "lamp", "switch", DeviceKind::Light);
        assert!(!a.same_device(&b));
        assert!(a.same_type(&b));
        assert!(!a.same_type(&c));
    }

    #[test]
    fn keys_are_distinct() {
        let a = unbound("A", "tv1", "switch", DeviceKind::Tv);
        let b = DeviceRef::bound("0e0b");
        assert_ne!(a.key(), b.key());
        assert!(a.key().contains("A/tv1"));
        assert!(b.key().contains("0e0b"));
    }

    #[test]
    fn varid_display() {
        let v = VarId::device_attr(DeviceRef::bound("0e0b"), "switch");
        assert_eq!(v.to_string(), "dev:id:0e0b.switch");
        assert_eq!(VarId::env("temperature").to_string(), "env.temperature");
        assert_eq!(VarId::Mode.to_string(), "mode");
    }

    #[test]
    fn shared_world_classification() {
        assert!(VarId::env("temperature").is_shared_world());
        assert!(VarId::Mode.is_shared_world());
        assert!(VarId::device_attr(DeviceRef::bound("x"), "switch").is_shared_world());
        assert!(!VarId::UserInput {
            app: "A".into(),
            name: "t".into()
        }
        .is_shared_world());
        assert!(!VarId::State {
            app: "A".into(),
            name: "c".into()
        }
        .is_shared_world());
    }
}
