//! Per-`ThreatKind` mediation tests: one minimal two-rule corpus entry per
//! Table I kind, asserting the runtime policy decision for that kind —
//! blocked / reordered / deferred / journaled — end to end through
//! extraction, detection, mediation-point compilation and the enforcer.

use hg_detector::{Detector, Threat, ThreatKind, Unification};
use hg_rules::rule::Rule;
use hg_runtime::{Enforcer, HandlingPolicy, PolicyTable, Verdict};
use hg_sim::Decision;
use hg_symexec::{extract, ExtractorConfig};

/// Extracts two single-rule apps, detects their threats, and returns
/// (rules, threats).
fn corpus_pair(a: &str, an: &str, b: &str, bn: &str) -> (Vec<Rule>, Vec<Threat>) {
    let ra = extract(a, an, &ExtractorConfig::extended()).unwrap().rules;
    let rb = extract(b, bn, &ExtractorConfig::extended()).unwrap().rules;
    let det = Detector::store_wide();
    let mut threats = Vec::new();
    for x in &ra {
        for y in &rb {
            let (t, _) = det.detect_pair(x, y);
            threats.extend(t);
        }
    }
    let mut rules = ra;
    rules.extend(rb);
    (rules, threats)
}

fn threat_of(threats: &[Threat], kind: ThreatKind) -> &Threat {
    threats
        .iter()
        .find(|t| t.kind == kind)
        .unwrap_or_else(|| panic!("no {kind} in {threats:?}"))
}

fn enforcer(rules: &[Rule], threats: &[Threat], table: PolicyTable) -> Enforcer {
    Enforcer::from_threats(threats, rules, &Unification::ByType, &table)
}

#[test]
fn actuator_race_is_reordered_by_priority() {
    // Table I AR: same trigger, contradictory commands on the same window.
    let (rules, threats) = corpus_pair(
        r#"
input "d", "capability.contactSensor"
input "w", "capability.switch", title: "window opener"
def installed() { subscribe(d, "contact.open", h) }
def h(evt) { w.on() }
"#,
        "RaceA",
        r#"
input "d", "capability.contactSensor"
input "w", "capability.switch", title: "window opener"
def installed() { subscribe(d, "contact.open", h) }
def h(evt) { w.off() }
"#,
        "RaceB",
    );
    let ar = threat_of(&threats, ThreatKind::ActuatorRace).clone();
    // The user ranks RaceB (close the window) above RaceA.
    let table = PolicyTable::notify_all().prioritize([ar.target.clone(), ar.source.clone()]);
    let mut e = enforcer(&rules, &threats, table);

    // Priority does not suppress firings — both rules run...
    assert_eq!(e.decide_fire(&ar.source, 0), Decision::Allow);
    assert_eq!(e.decide_fire(&ar.target, 0), Decision::Allow);
    // ...but of the two same-instant conflicting commands on the shared
    // actuator, only the ranked winner's takes effect.
    let window = "type:switch/windowOpener";
    assert_eq!(
        e.decide_command(&ar.target, window, "off", 0),
        Decision::Allow
    );
    assert_eq!(
        e.decide_command(&ar.source, window, "on", 0),
        Decision::Suppress
    );
    let journal = e.journal();
    let decision = journal.for_kind(ThreatKind::ActuatorRace).next().unwrap();
    assert_eq!(decision.verdict, Verdict::Reordered);
    assert_eq!(decision.rule, ar.source);
}

#[test]
fn goal_conflict_is_blocked() {
    // Table I GC: heater (temperature ↑) vs window opener (temperature ↓).
    let (rules, threats) = corpus_pair(
        r#"
input "p", "capability.presenceSensor"
input "heater", "capability.switch", title: "space heater"
def installed() { subscribe(p, "presence.present", h) }
def h(evt) { heater.on() }
"#,
        "GoalA",
        r#"
input "l", "capability.illuminanceMeasurement"
input "w", "capability.switch", title: "window opener"
def installed() { subscribe(l, "illuminance", h) }
def h(evt) { if (evt.value < 10) { w.on() } }
"#,
        "GoalB",
    );
    let gc = threat_of(&threats, ThreatKind::GoalConflict).clone();
    let table = PolicyTable::notify_all().with(ThreatKind::GoalConflict, HandlingPolicy::Block);
    let mut e = enforcer(&rules, &threats, table);
    assert_eq!(e.decide_fire(&gc.source, 0), Decision::Allow);
    assert_eq!(e.decide_fire(&gc.target, 100), Decision::Suppress);
    let journal = e.journal();
    let decision = journal.for_kind(ThreatKind::GoalConflict).next().unwrap();
    assert_eq!(decision.verdict, Verdict::Blocked);
}

#[test]
fn covert_triggering_is_blocked() {
    // Table I CT: A turns the TV on, which is B's trigger.
    let (rules, threats) = corpus_pair(
        r#"
input "p", "capability.presenceSensor"
input "tv", "capability.switch", title: "the TV"
def installed() { subscribe(p, "presence.present", h) }
def h(evt) { tv.on() }
"#,
        "CovertA",
        r#"
input "tv", "capability.switch", title: "the TV"
input "w", "capability.switch", title: "window opener"
def installed() { subscribe(tv, "switch.on", h) }
def h(evt) { w.on() }
"#,
        "CovertB",
    );
    let ct = threat_of(&threats, ThreatKind::CovertTriggering).clone();
    let table = PolicyTable::notify_all().with(ThreatKind::CovertTriggering, HandlingPolicy::Block);
    let mut e = enforcer(&rules, &threats, table);
    assert_eq!(e.decide_fire(&ct.source, 0), Decision::Allow);
    // The covertly-triggered firing is refused.
    assert_eq!(e.decide_fire(&ct.target, 0), Decision::Suppress);
    let journal = e.journal();
    let decision = journal
        .for_kind(ThreatKind::CovertTriggering)
        .next()
        .unwrap();
    assert_eq!(decision.verdict, Verdict::Blocked);
    assert_eq!(decision.rule, ct.target);
}

#[test]
fn self_disabling_is_blocked() {
    // Table I SD: A turns the AC on; the power spike triggers B, which
    // turns it back off.
    let (rules, threats) = corpus_pair(
        r#"
input "m", "capability.motionSensor"
input "ac", "capability.switch", title: "air conditioner"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { ac.on() }
"#,
        "SelfA",
        r#"
input "meter", "capability.powerMeter"
input "ac", "capability.switch", title: "air conditioner"
def installed() { subscribe(meter, "power", h) }
def h(evt) { if (evt.value > 3000) { ac.off() } }
"#,
        "SelfB",
    );
    let sd = threat_of(&threats, ThreatKind::SelfDisabling).clone();
    let table = PolicyTable::notify_all().with(ThreatKind::SelfDisabling, HandlingPolicy::Block);
    let mut e = enforcer(&rules, &threats, table);
    assert_eq!(e.decide_fire(&sd.source, 0), Decision::Allow);
    assert_eq!(e.decide_fire(&sd.target, 50), Decision::Suppress);
    let journal = e.journal();
    let decision = journal.for_kind(ThreatKind::SelfDisabling).next().unwrap();
    assert_eq!(decision.verdict, Verdict::Blocked);
}

#[test]
fn loop_triggering_is_blocked() {
    // Table I LT: the lamp's own illuminance feedback flips it forever.
    let (rules, threats) = corpus_pair(
        r#"
input "l", "capability.illuminanceMeasurement"
input "lamp", "capability.switch", title: "lights"
def installed() { subscribe(l, "illuminance", h) }
def h(evt) { if (evt.value < 30) { lamp.on() } }
"#,
        "LoopA",
        r#"
input "l", "capability.illuminanceMeasurement"
input "lamp", "capability.switch", title: "lights"
def installed() { subscribe(l, "illuminance", h) }
def h(evt) { if (evt.value > 50) { lamp.off() } }
"#,
        "LoopB",
    );
    let lt = threat_of(&threats, ThreatKind::LoopTriggering).clone();
    let table = PolicyTable::notify_all().with(ThreatKind::LoopTriggering, HandlingPolicy::Block);
    let mut e = enforcer(&rules, &threats, table);
    assert_eq!(e.decide_fire(&lt.source, 0), Decision::Allow);
    // The loop's second edge is refused: the cycle cannot close.
    assert_eq!(e.decide_fire(&lt.target, 10), Decision::Suppress);
    let journal = e.journal();
    let decision = journal.for_kind(ThreatKind::LoopTriggering).next().unwrap();
    assert_eq!(decision.verdict, Verdict::Blocked);
}

#[test]
fn enabling_condition_is_deferred() {
    // Table I EC: A locks the door, enabling B's "door locked" condition.
    let (rules, threats) = corpus_pair(
        r#"
input "p", "capability.presenceSensor"
input "door", "capability.lock", title: "front door"
def installed() { subscribe(p, "presence.not present", h) }
def h(evt) { door.lock() }
"#,
        "EnableA",
        r#"
input "m", "capability.motionSensor"
input "door", "capability.lock", title: "front door"
input "cam", "capability.switch", title: "camera outlet"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { if (door.currentLock == "locked") { cam.on() } }
"#,
        "EnableB",
    );
    let ec = threat_of(&threats, ThreatKind::EnablingCondition).clone();
    let table = PolicyTable::notify_all().with(
        ThreatKind::EnablingCondition,
        HandlingPolicy::Defer { window_ms: 2_000 },
    );
    let mut e = enforcer(&rules, &threats, table);
    assert_eq!(e.decide_fire(&ec.source, 0), Decision::Allow);
    // The enabled rule still runs, but only past the mediation window.
    assert_eq!(
        e.decide_fire(&ec.target, 100),
        Decision::Defer { delay_ms: 2_000 }
    );
    let journal = e.journal();
    let decision = journal
        .for_kind(ThreatKind::EnablingCondition)
        .next()
        .unwrap();
    assert_eq!(decision.verdict, Verdict::Deferred { delay_ms: 2_000 });
}

#[test]
fn disabling_condition_is_journaled() {
    // Table I DC: A's delayed lamp-off falsifies B's "lamp on" condition.
    let (rules, threats) = corpus_pair(
        r#"
input "lamp", "capability.switch", title: "floor lamp"
def installed() { subscribe(lamp, "switch.on", h) }
def h(evt) { runIn(300, off) }
def off() { lamp.off() }
"#,
        "DisableA",
        r#"
input "lamp", "capability.switch", title: "floor lamp"
input "m", "capability.motionSensor"
input "siren", "capability.alarm"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { if (lamp.currentSwitch == "on") { siren.siren() } }
"#,
        "DisableB",
    );
    let dc = threat_of(&threats, ThreatKind::DisablingCondition).clone();
    let mut e = enforcer(&rules, &threats, PolicyTable::notify_all());
    assert_eq!(e.decide_fire(&dc.source, 0), Decision::Allow);
    // Notify never intervenes — the interference is made overt instead.
    assert_eq!(e.decide_fire(&dc.target, 100), Decision::Allow);
    assert_eq!(e.stats().mediated, 0);
    let journal = e.journal();
    let decision = journal
        .for_kind(ThreatKind::DisablingCondition)
        .next()
        .unwrap();
    assert_eq!(decision.verdict, Verdict::Notified);
    assert_eq!(decision.rule, dc.target);
    assert_eq!(decision.counterpart, dc.source);
}
