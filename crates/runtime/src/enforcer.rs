//! The runtime enforcer: policy arbitration over compiled mediation
//! points, with a decision journal and effort counters.
//!
//! The enforcer sits inline in an event loop (it implements
//! [`hg_sim::Mediator`] through [`SharedEnforcer`]) and answers two
//! questions:
//!
//! * **may this rule fire?** — [`Enforcer::decide_fire`]. If a mediation
//!   point pairs the rule with a counterpart that already acted in this
//!   run, the point's policy applies: `Block` suppresses the firing,
//!   `Defer` postpones its actions past the window, `Notify` journals and
//!   lets it through.
//! * **may this command execute?** — [`Enforcer::decide_command`], for the
//!   actuator-conflict kinds (AR/SD/LT). `Priority` arbitration lives
//!   here: of two same-instant conflicting commands on a shared actuator,
//!   only the higher-ranked rule's command takes effect, so the race's
//!   final state is deterministic regardless of scheduling order.
//!
//! Rules that key into no mediation point take an allow-everything fast
//! path that touches no state, which is what makes a mediated threat-free
//! home behave identically to an unmediated one.

use crate::point::MediationIndex;
use crate::policy::{HandlingPolicy, PolicyTable};
use hg_detector::{Threat, ThreatKind, Unification};
use hg_rules::rule::{Rule, RuleId};
use hg_sim::mediator::{Decision, Mediator};
use hg_sim::SimTime;
use hg_telemetry::{TelemetryBus, TelemetryEvent};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::Rc;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// What the enforcer did about one mediated event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The event was suppressed (`Block`).
    Blocked,
    /// A same-instant conflicting command lost the priority arbitration
    /// and was discarded (`Priority`).
    Reordered,
    /// The event was postponed past the mediation window (`Defer`).
    Deferred {
        /// By how much, in simulated milliseconds.
        delay_ms: u64,
    },
    /// The event was allowed through and journaled (`Notify`).
    Notified,
}

/// One journaled mediation decision, for incident audits.
#[derive(Debug, Clone)]
pub struct MediationDecision {
    /// Simulated time of the intercepted event.
    pub at: SimTime,
    /// The threat category of the mediation point that fired.
    pub kind: ThreatKind,
    /// The rule whose event was mediated.
    pub rule: RuleId,
    /// The other member of the threat pair.
    pub counterpart: RuleId,
    /// What happened.
    pub verdict: Verdict,
    /// Human-readable incident line.
    pub note: String,
}

impl fmt::Display for MediationDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t={}ms [{}] {:?} {}: {}",
            self.at,
            self.kind.acronym(),
            self.verdict,
            self.rule,
            self.note
        )
    }
}

/// The decision journal: every mediation decision, in order.
#[derive(Debug, Clone, Default)]
pub struct MediationTrace {
    entries: Vec<MediationDecision>,
}

impl MediationTrace {
    /// All decisions, in order.
    pub fn entries(&self) -> &[MediationDecision] {
        &self.entries
    }

    /// Number of journaled decisions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was journaled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Decisions for one threat kind.
    pub fn for_kind(&self, kind: ThreatKind) -> impl Iterator<Item = &MediationDecision> {
        self.entries.iter().filter(move |d| d.kind == kind)
    }

    /// Decisions involving one rule (as the mediated rule or counterpart).
    pub fn for_rule<'a>(
        &'a self,
        rule: &'a RuleId,
    ) -> impl Iterator<Item = &'a MediationDecision> + 'a {
        self.entries
            .iter()
            .filter(move |d| d.rule == *rule || d.counterpart == *rule)
    }

    fn push(&mut self, decision: MediationDecision) {
        self.entries.push(decision);
    }
}

/// Effort counters for the mediation engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MediationStats {
    /// Intercepted events (rule firings + actuator commands) seen.
    pub events: u64,
    /// Events where a non-allow decision was taken (blocked, reordered,
    /// deferred).
    pub mediated: u64,
    /// Journal entries written (includes `Notify` allows).
    pub journaled: u64,
    /// Total wall-clock decision time, nanoseconds.
    pub latency_ns: u128,
}

impl MediationStats {
    /// Mean wall-clock nanoseconds per intercepted event.
    pub fn mean_latency_ns(&self) -> u128 {
        if self.events == 0 {
            0
        } else {
            self.latency_ns / self.events as u128
        }
    }

    /// Folds another counter set in (merging per-enforcer deltas into a
    /// session- or fleet-level aggregate).
    pub fn absorb(&mut self, other: MediationStats) {
        self.events += other.events;
        self.mediated += other.mediated;
        self.journaled += other.journaled;
        self.latency_ns += other.latency_ns;
    }

    /// The counters accumulated since `before` (a snapshot of `self`
    /// taken earlier). Saturating so a reset between the snapshots
    /// degrades to zero rather than wrapping.
    pub fn since(&self, before: MediationStats) -> MediationStats {
        MediationStats {
            events: self.events.saturating_sub(before.events),
            mediated: self.mediated.saturating_sub(before.mediated),
            journaled: self.journaled.saturating_sub(before.journaled),
            latency_ns: self.latency_ns.saturating_sub(before.latency_ns),
        }
    }
}

/// The runtime mediation engine.
#[derive(Debug, Clone, Default)]
pub struct Enforcer {
    index: MediationIndex,
    /// Pair-member rules that fired in the current run.
    fired: BTreeSet<RuleId>,
    /// Last executed command per (device, pair-member rule) this run.
    commanded: BTreeMap<(String, RuleId), (SimTime, String)>,
    /// One-shot grants so a deferred command is allowed on replay, keyed
    /// by the earliest time the replay may pass — a fresh identical
    /// command issued before that instant goes through full mediation
    /// instead of consuming the grant.
    defer_tokens: BTreeMap<(RuleId, String, String), SimTime>,
    journal: MediationTrace,
    stats: MediationStats,
    /// Session-shared stats sink: every decision's counter delta is
    /// folded in, so a `Home` that hands out fresh enforcers per call can
    /// still answer "what has mediation cost this session" (the
    /// [`MediationStats`] accessor the service layer aggregates).
    sink: Option<Arc<Mutex<MediationStats>>>,
    /// Fleet event bus for per-decision [`TelemetryEvent::MediationDecision`]
    /// events; `None` publishes nothing.
    bus: Option<Arc<TelemetryBus>>,
    /// The owning home's raw id (0 outside a fleet), stamped on events.
    home_label: u64,
}

impl Enforcer {
    /// An enforcer over pre-compiled mediation points.
    pub fn new(index: MediationIndex) -> Enforcer {
        Enforcer {
            index,
            ..Enforcer::default()
        }
    }

    /// Compiles `threats` (an install-time report, or a session's confirmed
    /// threat set) against the installed `rules` and builds the enforcer.
    pub fn from_threats(
        threats: &[Threat],
        rules: &[Rule],
        unification: &Unification,
        table: &PolicyTable,
    ) -> Enforcer {
        Enforcer::new(MediationIndex::compile(threats, rules, unification, table))
    }

    /// The compiled mediation points.
    pub fn index(&self) -> &MediationIndex {
        &self.index
    }

    /// Swaps in a recompiled mediation index — how a live enforcer follows
    /// a lifecycle change (app uninstalled or upgraded, points retired or
    /// added) without losing its journal. **All** per-run memory — fired
    /// rules, executed commands and one-shot defer grants — is dropped:
    /// that state was accumulated under the old points' policies, and a
    /// grant or remembered firing carried across the swap would let a
    /// retired or re-policied pair keep influencing decisions (a defer
    /// token issued under the old window could wave a command straight
    /// past a stricter new policy). Journal and stats persist across the
    /// swap; the same wipe applies when an enforcer is rebuilt from a
    /// snapshot, so restored sessions never inherit in-flight grants.
    pub fn replace_index(&mut self, index: MediationIndex) {
        self.index = index;
        self.begin_run();
    }

    /// Wires this enforcer's observability: an optional session-shared
    /// stats sink (decision deltas are folded in as they happen), an
    /// optional fleet event bus, and the home label stamped on published
    /// events. Telemetry is a pure observer — decisions are identical
    /// with or without it.
    pub fn set_telemetry(
        &mut self,
        sink: Option<Arc<Mutex<MediationStats>>>,
        bus: Option<Arc<TelemetryBus>>,
        home_label: u64,
    ) {
        self.sink = sink;
        self.bus = bus;
        self.home_label = home_label;
    }

    /// The decision journal.
    pub fn journal(&self) -> &MediationTrace {
        &self.journal
    }

    /// The effort counters.
    pub fn stats(&self) -> MediationStats {
        self.stats
    }

    /// Clears per-run memory (fired rules, executed commands, defer
    /// grants). Call between simulation runs; the journal and stats are
    /// cumulative across runs.
    pub fn begin_run(&mut self) {
        self.fired.clear();
        self.commanded.clear();
        self.defer_tokens.clear();
    }

    /// Full reset: per-run memory, journal and stats.
    pub fn reset(&mut self) {
        self.begin_run();
        self.journal = MediationTrace::default();
        self.stats = MediationStats::default();
    }

    /// Mediates a rule firing. See the module docs for the policy
    /// semantics.
    pub fn decide_fire(&mut self, rule: &RuleId, at: SimTime) -> Decision {
        let started = Instant::now();
        let before = self.stats;
        self.stats.events += 1;
        let mut final_decision = Decision::Allow;
        let mut journal: Vec<MediationDecision> = Vec::new();
        let mut is_member = false;
        for point in self.index.points_for_rule(rule) {
            is_member = true;
            let Some(counterpart) = point.counterpart(rule) else {
                continue;
            };
            if !self.fired.contains(counterpart) && !self.commanded_any(counterpart) {
                continue; // the pair has not collided yet in this run
            }
            let verdict = match &point.policy {
                HandlingPolicy::Block => Some(Verdict::Blocked),
                HandlingPolicy::Defer { window_ms } => Some(Verdict::Deferred {
                    delay_ms: *window_ms,
                }),
                HandlingPolicy::Notify => Some(Verdict::Notified),
                // Priority arbitration happens at the command level.
                HandlingPolicy::Priority(_) => None,
            };
            if let Some(verdict) = verdict {
                journal.push(MediationDecision {
                    at,
                    kind: point.kind,
                    rule: rule.clone(),
                    counterpart: counterpart.clone(),
                    verdict,
                    note: format!(
                        "{} firing after {} acted ({} point, policy {})",
                        rule,
                        counterpart,
                        point.kind.acronym(),
                        point.policy.tag()
                    ),
                });
                final_decision = merge(final_decision, verdict);
            }
        }
        if is_member && !matches!(final_decision, Decision::Suppress) {
            self.fired.insert(rule.clone());
        }
        let kind = journal.first().map_or("-", |d| d.kind.acronym());
        self.commit(journal, &final_decision);
        self.stats.latency_ns += started.elapsed().as_nanos();
        self.report(before, kind, &final_decision);
        final_decision
    }

    /// Mediates an actuator command issued by `rule` against `device`.
    /// Only the actuator-conflict kinds (AR/SD/LT) mediate here; the other
    /// kinds act on firings.
    pub fn decide_command(
        &mut self,
        rule: &RuleId,
        device: &str,
        command: &str,
        at: SimTime,
    ) -> Decision {
        let started = Instant::now();
        let before = self.stats;
        self.stats.events += 1;
        let token = (rule.clone(), device.to_string(), command.to_string());
        if self
            .defer_tokens
            .get(&token)
            .is_some_and(|ready_at| at >= *ready_at)
        {
            // Replay of a command this enforcer deferred, arriving at or
            // after the granted instant: let it through. An identical
            // command arriving *early* (a fresh firing inside the window)
            // is not the replay and falls through to full mediation.
            self.defer_tokens.remove(&token);
            self.record_command(rule, device, command, at);
            self.stats.latency_ns += started.elapsed().as_nanos();
            self.report(before, "-", &Decision::Allow);
            return Decision::Allow;
        }
        let mut final_decision = Decision::Allow;
        let mut journal: Vec<MediationDecision> = Vec::new();
        for point in self.index.points_for_rule(rule) {
            if !matches!(
                point.kind,
                ThreatKind::ActuatorRace | ThreatKind::SelfDisabling | ThreatKind::LoopTriggering
            ) {
                continue;
            }
            if !point.actuators.is_empty() && !point.actuators.contains(device) {
                continue;
            }
            let Some(counterpart) = point.counterpart(rule) else {
                continue;
            };
            let Some((other_at, other_cmd)) = self
                .commanded
                .get(&(device.to_string(), counterpart.clone()))
            else {
                continue;
            };
            if other_cmd == command {
                continue; // identical commands cannot conflict
            }
            let verdict = match &point.policy {
                HandlingPolicy::Block => Some(Verdict::Blocked),
                HandlingPolicy::Priority(order) => {
                    // Arbitrate same-instant conflicts only: later commands
                    // overwrite earlier ones legitimately.
                    if *other_at != at {
                        None
                    } else {
                        match (rank(order, rule), rank(order, counterpart)) {
                            // Lower rank wins; unranked loses to ranked.
                            (Some(me), Some(other)) if me > other => Some(Verdict::Reordered),
                            (None, Some(_)) => Some(Verdict::Reordered),
                            // A pair the order never ranked cannot be
                            // arbitrated — fall back to blocking the later
                            // conflicting command so the race stays handled
                            // (and audited) instead of silently passing.
                            (None, None) => Some(Verdict::Blocked),
                            _ => None,
                        }
                    }
                }
                HandlingPolicy::Defer { window_ms } => {
                    if at < other_at.saturating_add(*window_ms) {
                        Some(Verdict::Deferred {
                            delay_ms: *window_ms,
                        })
                    } else {
                        None
                    }
                }
                HandlingPolicy::Notify => Some(Verdict::Notified),
            };
            if let Some(verdict) = verdict {
                journal.push(MediationDecision {
                    at,
                    kind: point.kind,
                    rule: rule.clone(),
                    counterpart: counterpart.clone(),
                    verdict,
                    note: format!(
                        "`{command}` on {device} conflicts with {counterpart}'s `{other_cmd}` \
                         ({} point, policy {})",
                        point.kind.acronym(),
                        point.policy.tag()
                    ),
                });
                final_decision = merge(final_decision, verdict);
            }
        }
        match final_decision {
            Decision::Allow => self.record_command(rule, device, command, at),
            Decision::Defer { delay_ms } => {
                self.defer_tokens.insert(token, at + delay_ms);
            }
            Decision::Suppress => {}
        }
        let kind = journal.first().map_or("-", |d| d.kind.acronym());
        self.commit(journal, &final_decision);
        self.stats.latency_ns += started.elapsed().as_nanos();
        self.report(before, kind, &final_decision);
        final_decision
    }

    /// Whether `rule` executed any command this run.
    fn commanded_any(&self, rule: &RuleId) -> bool {
        self.commanded.keys().any(|(_, r)| r == rule)
    }

    fn record_command(&mut self, rule: &RuleId, device: &str, command: &str, at: SimTime) {
        // A pair member's commands matter; others never reach this path
        // because `decide_command` only records after point lookups. Still
        // guard: only track rules that key into a point.
        if self.index.points_for_rule(rule).next().is_some() {
            self.commanded.insert(
                (device.to_string(), rule.clone()),
                (at, command.to_string()),
            );
        }
    }

    fn commit(&mut self, journal: Vec<MediationDecision>, decision: &Decision) {
        if !matches!(decision, Decision::Allow) {
            self.stats.mediated += 1;
        }
        self.stats.journaled += journal.len() as u64;
        for entry in journal {
            self.journal.push(entry);
        }
    }

    /// Observability tail of one decision: folds the counter delta since
    /// `before` into the shared sink and publishes the decision event.
    /// No-ops entirely when neither sink nor bus is wired.
    fn report(&mut self, before: MediationStats, kind: &'static str, decision: &Decision) {
        if self.sink.is_none() && self.bus.is_none() {
            return;
        }
        let delta = self.stats.since(before);
        if let Some(sink) = &self.sink {
            sink.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .absorb(delta);
        }
        if let Some(bus) = &self.bus {
            bus.publish(TelemetryEvent::MediationDecision {
                home: self.home_label,
                kind,
                verdict: match decision {
                    Decision::Allow => "allow",
                    Decision::Suppress => "suppress",
                    Decision::Defer { .. } => "defer",
                },
                latency_ns: delta.latency_ns as u64,
            });
        }
    }
}

/// Priority rank: position in the configured order, `None` if unranked.
fn rank(order: &[RuleId], rule: &RuleId) -> Option<usize> {
    order.iter().position(|r| r == rule)
}

/// Most-restrictive-wins decision merge across a rule's mediation points.
fn merge(current: Decision, verdict: Verdict) -> Decision {
    let proposed = match verdict {
        Verdict::Blocked | Verdict::Reordered => Decision::Suppress,
        Verdict::Deferred { delay_ms } => Decision::Defer { delay_ms },
        Verdict::Notified => Decision::Allow,
    };
    match (current, proposed) {
        (Decision::Suppress, _) | (_, Decision::Suppress) => Decision::Suppress,
        (Decision::Defer { delay_ms: a }, Decision::Defer { delay_ms: b }) => {
            Decision::Defer { delay_ms: a.max(b) }
        }
        (d @ Decision::Defer { .. }, Decision::Allow) => d,
        (Decision::Allow, d) => d,
    }
}

/// A clonable, shareable handle around an [`Enforcer`], so the same engine
/// can be installed into a simulator (as its [`Mediator`]) while the
/// harness keeps access to the journal and stats.
#[derive(Debug, Clone, Default)]
pub struct SharedEnforcer {
    inner: Rc<RefCell<Enforcer>>,
}

impl SharedEnforcer {
    /// Wraps an enforcer.
    pub fn new(enforcer: Enforcer) -> SharedEnforcer {
        SharedEnforcer {
            inner: Rc::new(RefCell::new(enforcer)),
        }
    }

    /// A boxed mediator handle for [`hg_sim::Home::set_mediator`]; the
    /// original handle keeps observing the same engine.
    pub fn mediator(&self) -> Box<dyn Mediator> {
        Box::new(self.clone())
    }

    /// Clears per-run memory (see [`Enforcer::begin_run`]).
    pub fn begin_run(&self) {
        self.inner.borrow_mut().begin_run();
    }

    /// Snapshot of the decision journal.
    pub fn journal(&self) -> MediationTrace {
        self.inner.borrow().journal().clone()
    }

    /// Snapshot of the effort counters.
    pub fn stats(&self) -> MediationStats {
        self.inner.borrow().stats()
    }

    /// Runs `f` against the underlying enforcer.
    pub fn with<R>(&self, f: impl FnOnce(&Enforcer) -> R) -> R {
        f(&self.inner.borrow())
    }
}

impl Mediator for SharedEnforcer {
    fn on_rule_fire(&mut self, rule: &RuleId, at: SimTime) -> Decision {
        self.inner.borrow_mut().decide_fire(rule, at)
    }

    fn on_command(&mut self, rule: &RuleId, device: &str, command: &str, at: SimTime) -> Decision {
        self.inner
            .borrow_mut()
            .decide_command(rule, device, command, at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::MediationPoint;
    use std::collections::BTreeSet;

    fn point(kind: ThreatKind, policy: HandlingPolicy) -> MediationPoint {
        MediationPoint {
            kind,
            source: RuleId::new("A", 0),
            target: RuleId::new("B", 0),
            actuators: BTreeSet::from(["lamp-1".to_string()]),
            property: None,
            trigger_vars: BTreeSet::new(),
            policy,
        }
    }

    fn enforcer_with(kind: ThreatKind, policy: HandlingPolicy) -> Enforcer {
        let mut index = MediationIndex::default();
        index.insert(point(kind, policy));
        Enforcer::new(index)
    }

    #[test]
    fn non_member_rules_take_the_fast_path() {
        let mut e = enforcer_with(ThreatKind::CovertTriggering, HandlingPolicy::Block);
        let other = RuleId::new("Other", 3);
        assert_eq!(e.decide_fire(&other, 0), Decision::Allow);
        assert_eq!(e.decide_command(&other, "lamp-1", "on", 0), Decision::Allow);
        assert!(e.journal().is_empty());
        assert_eq!(e.stats().events, 2);
        assert_eq!(e.stats().mediated, 0);
    }

    #[test]
    fn block_suppresses_second_member_firing() {
        let mut e = enforcer_with(ThreatKind::CovertTriggering, HandlingPolicy::Block);
        let (a, b) = (RuleId::new("A", 0), RuleId::new("B", 0));
        assert_eq!(e.decide_fire(&a, 0), Decision::Allow);
        assert_eq!(e.decide_fire(&b, 10), Decision::Suppress);
        assert_eq!(e.journal().len(), 1);
        assert_eq!(e.journal().entries()[0].verdict, Verdict::Blocked);
        // A suppressed firing is not remembered as fired: once A's side of
        // the run is over (new run), B fires freely again.
        e.begin_run();
        assert_eq!(e.decide_fire(&b, 20), Decision::Allow);
    }

    #[test]
    fn priority_discards_the_lower_ranked_same_instant_command() {
        let order = vec![RuleId::new("B", 0), RuleId::new("A", 0)];
        let mut e = enforcer_with(ThreatKind::ActuatorRace, HandlingPolicy::Priority(order));
        let (a, b) = (RuleId::new("A", 0), RuleId::new("B", 0));
        // B (rank 0) commands first; A's same-instant conflicting command
        // loses the arbitration.
        assert_eq!(e.decide_command(&b, "lamp-1", "off", 100), Decision::Allow);
        assert_eq!(
            e.decide_command(&a, "lamp-1", "on", 100),
            Decision::Suppress
        );
        assert_eq!(e.journal().entries()[0].verdict, Verdict::Reordered);
        // The other arrival order converges to the same winner: A lands
        // first, B (higher priority) overwrites it.
        e.begin_run();
        assert_eq!(e.decide_command(&a, "lamp-1", "on", 100), Decision::Allow);
        assert_eq!(e.decide_command(&b, "lamp-1", "off", 100), Decision::Allow);
        // A later conflicting command is a legitimate overwrite, not a race.
        e.begin_run();
        assert_eq!(e.decide_command(&b, "lamp-1", "off", 100), Decision::Allow);
        assert_eq!(e.decide_command(&a, "lamp-1", "on", 200), Decision::Allow);
    }

    #[test]
    fn defer_postpones_once_and_replays() {
        let mut e = enforcer_with(
            ThreatKind::ActuatorRace,
            HandlingPolicy::Defer { window_ms: 1_000 },
        );
        let (a, b) = (RuleId::new("A", 0), RuleId::new("B", 0));
        assert_eq!(e.decide_command(&a, "lamp-1", "on", 0), Decision::Allow);
        assert_eq!(
            e.decide_command(&b, "lamp-1", "off", 0),
            Decision::Defer { delay_ms: 1_000 }
        );
        // The replayed command holds a one-shot grant.
        assert_eq!(
            e.decide_command(&b, "lamp-1", "off", 1_000),
            Decision::Allow
        );
        assert_eq!(e.stats().mediated, 1);
    }

    #[test]
    fn unranked_priority_pair_falls_back_to_blocking() {
        // The order names other rules entirely: the pair cannot be
        // arbitrated, so the same-instant conflict is blocked and audited
        // rather than silently passed.
        let order = vec![RuleId::new("X", 0), RuleId::new("Y", 0)];
        let mut e = enforcer_with(ThreatKind::ActuatorRace, HandlingPolicy::Priority(order));
        let (a, b) = (RuleId::new("A", 0), RuleId::new("B", 0));
        assert_eq!(e.decide_command(&a, "lamp-1", "on", 100), Decision::Allow);
        assert_eq!(
            e.decide_command(&b, "lamp-1", "off", 100),
            Decision::Suppress
        );
        assert_eq!(e.journal().entries()[0].verdict, Verdict::Blocked);
    }

    #[test]
    fn early_identical_command_does_not_consume_the_defer_grant() {
        let mut e = enforcer_with(
            ThreatKind::ActuatorRace,
            HandlingPolicy::Defer { window_ms: 1_000 },
        );
        let (a, b) = (RuleId::new("A", 0), RuleId::new("B", 0));
        assert_eq!(e.decide_command(&a, "lamp-1", "on", 0), Decision::Allow);
        assert_eq!(
            e.decide_command(&b, "lamp-1", "off", 0),
            Decision::Defer { delay_ms: 1_000 }
        );
        // A *fresh* identical command inside the window is mediated again,
        // not waved through on the replay grant...
        assert_eq!(
            e.decide_command(&b, "lamp-1", "off", 500),
            Decision::Defer { delay_ms: 1_000 }
        );
        // ...while the true replay (at or past the granted instant) passes.
        assert_eq!(
            e.decide_command(&b, "lamp-1", "off", 1_500),
            Decision::Allow
        );
    }

    #[test]
    fn notify_journals_without_intervening() {
        let mut e = enforcer_with(ThreatKind::DisablingCondition, HandlingPolicy::Notify);
        let (a, b) = (RuleId::new("A", 0), RuleId::new("B", 0));
        assert_eq!(e.decide_fire(&a, 0), Decision::Allow);
        assert_eq!(e.decide_fire(&b, 5), Decision::Allow);
        assert_eq!(e.stats().mediated, 0);
        assert_eq!(e.journal().len(), 1);
        assert_eq!(e.journal().entries()[0].verdict, Verdict::Notified);
    }

    #[test]
    fn most_restrictive_policy_wins_across_points() {
        // The same pair is both a CT (notify) and an SD (block) point —
        // blocking wins.
        let mut index = MediationIndex::default();
        index.insert(point(ThreatKind::CovertTriggering, HandlingPolicy::Notify));
        index.insert(point(ThreatKind::SelfDisabling, HandlingPolicy::Block));
        let mut e = Enforcer::new(index);
        let (a, b) = (RuleId::new("A", 0), RuleId::new("B", 0));
        assert_eq!(e.decide_fire(&a, 0), Decision::Allow);
        assert_eq!(e.decide_fire(&b, 5), Decision::Suppress);
        // Both points journaled their view of the event.
        assert_eq!(e.journal().len(), 2);
    }

    #[test]
    fn replace_index_drops_state_of_retired_pairs() {
        let mut e = enforcer_with(ThreatKind::CovertTriggering, HandlingPolicy::Block);
        let (a, b) = (RuleId::new("A", 0), RuleId::new("B", 0));
        assert_eq!(e.decide_fire(&a, 0), Decision::Allow);
        assert_eq!(e.decide_fire(&b, 10), Decision::Suppress);
        let journaled = e.journal().len();

        // App A is uninstalled: the recompiled index has no points, so B
        // fires freely — A's remembered firing must not linger.
        let mut index = e.index().clone();
        index.remove_app("A");
        e.replace_index(index);
        assert_eq!(e.decide_fire(&b, 20), Decision::Allow);
        assert_eq!(e.journal().len(), journaled, "journal survives the swap");
    }

    #[test]
    fn defer_tokens_never_survive_replace_index() {
        // A deferred command holds a one-shot replay grant. The index is
        // then swapped (same points — an unrelated lifecycle change): the
        // grant was issued under the old index's policies and must die
        // with it, so the replay goes through full mediation again instead
        // of being waved past a possibly-stricter policy.
        let mut e = enforcer_with(
            ThreatKind::ActuatorRace,
            HandlingPolicy::Defer { window_ms: 1_000 },
        );
        let (a, b) = (RuleId::new("A", 0), RuleId::new("B", 0));
        assert_eq!(e.decide_command(&a, "lamp-1", "on", 0), Decision::Allow);
        assert_eq!(
            e.decide_command(&b, "lamp-1", "off", 0),
            Decision::Defer { delay_ms: 1_000 }
        );
        e.replace_index(e.index().clone());
        // No grant, and no remembered counterpart command either: the
        // replay is mediated from scratch and passes only because the
        // conflicting history is gone too.
        assert_eq!(
            e.decide_command(&b, "lamp-1", "off", 1_000),
            Decision::Allow
        );
        assert_eq!(e.stats().mediated, 1, "no second mediation consumed");
    }

    #[test]
    fn fired_memory_never_survives_replace_index() {
        // Block policy: A fired, then the index is swapped. B firing after
        // the swap must not be suppressed on the strength of pre-swap
        // memory.
        let mut e = enforcer_with(ThreatKind::CovertTriggering, HandlingPolicy::Block);
        let (a, b) = (RuleId::new("A", 0), RuleId::new("B", 0));
        assert_eq!(e.decide_fire(&a, 0), Decision::Allow);
        e.replace_index(e.index().clone());
        assert_eq!(e.decide_fire(&b, 10), Decision::Allow);
        assert!(e.journal().is_empty());
    }

    #[test]
    fn commanded_memory_never_survives_replace_index() {
        // Priority policy: A commanded, then the index is swapped. B's
        // same-instant conflicting command must not lose an arbitration
        // against a command that predates the swap.
        let order = vec![RuleId::new("A", 0), RuleId::new("B", 0)];
        let mut e = enforcer_with(ThreatKind::ActuatorRace, HandlingPolicy::Priority(order));
        let (a, b) = (RuleId::new("A", 0), RuleId::new("B", 0));
        assert_eq!(e.decide_command(&a, "lamp-1", "on", 100), Decision::Allow);
        e.replace_index(e.index().clone());
        assert_eq!(e.decide_command(&b, "lamp-1", "off", 100), Decision::Allow);
        assert_eq!(e.stats().mediated, 0);
    }

    #[test]
    fn telemetry_sink_and_bus_observe_without_changing_decisions() {
        use hg_telemetry::TelemetryBus;
        let sink = Arc::new(Mutex::new(MediationStats::default()));
        let bus = Arc::new(TelemetryBus::new());
        let mut observed = enforcer_with(ThreatKind::CovertTriggering, HandlingPolicy::Block);
        observed.set_telemetry(Some(sink.clone()), Some(bus.clone()), 7);
        let mut plain = enforcer_with(ThreatKind::CovertTriggering, HandlingPolicy::Block);

        let (a, b) = (RuleId::new("A", 0), RuleId::new("B", 0));
        for e in [&mut observed, &mut plain] {
            assert_eq!(e.decide_fire(&a, 0), Decision::Allow);
            assert_eq!(e.decide_fire(&b, 10), Decision::Suppress);
        }
        // The sink carries the same counters the enforcer reports.
        let sunk = *sink.lock().unwrap();
        assert_eq!(sunk.events, observed.stats().events);
        assert_eq!(sunk.mediated, 1);
        assert_eq!(sunk.journaled, 1);
        // One event per decision, stamped with the home label and verdict.
        let mut events = Vec::new();
        bus.drain_since(0, &mut events);
        assert_eq!(events.len(), 2);
        match &events[1].1 {
            hg_telemetry::TelemetryEvent::MediationDecision {
                home,
                kind,
                verdict,
                ..
            } => {
                assert_eq!((*home, *kind, *verdict), (7, "CT", "suppress"));
            }
            other => panic!("unexpected event {other:?}"),
        }
        // Pure observer: journals match entry for entry.
        assert_eq!(observed.journal().len(), plain.journal().len());
        assert_eq!(
            observed.journal().entries()[0].verdict,
            plain.journal().entries()[0].verdict
        );
    }

    #[test]
    fn stats_track_latency_and_reset() {
        let mut e = enforcer_with(ThreatKind::ActuatorRace, HandlingPolicy::Block);
        let a = RuleId::new("A", 0);
        e.decide_fire(&a, 0);
        assert!(e.stats().events == 1);
        e.reset();
        assert_eq!(e.stats(), MediationStats::default());
        assert!(e.journal().is_empty());
    }
}
