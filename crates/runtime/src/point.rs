//! Mediation points: the install-time threat report compiled into the
//! indexed form the runtime engine consults on every intercepted event.
//!
//! A [`MediationPoint`] is one detected [`Threat`] with its handling policy
//! resolved and its interaction keys precomputed the same way the
//! detector's `CandidateIndex` posts rules: the canonical actuator
//! identities both rules command, the goal property the pair fights over,
//! and the trigger variables the pair observes. The [`MediationIndex`]
//! holds the points under those keys plus a rule-identity posting — the
//! primary runtime key, since the event loop reports which rule is firing
//! or commanding.

use crate::policy::{HandlingPolicy, PolicyTable};
use hg_capability::domains::EnvProperty;
use hg_detector::{PreparedRule, Threat, ThreatKind, Unification};
use hg_rules::rule::{Rule, RuleId};
use hg_rules::varid::VarId;
use std::collections::{BTreeMap, BTreeSet};

/// One compiled mediation point: a detected threat, keyed for runtime
/// lookup, with its handling policy resolved.
#[derive(Debug, Clone)]
pub struct MediationPoint {
    /// The threat category (decides the policy and the journal entry).
    pub kind: ThreatKind,
    /// The interfering rule (R1 of the pair).
    pub source: RuleId,
    /// The interfered-with rule (R2 of the pair).
    pub target: RuleId,
    /// Canonical actuator identities both rules command (AR/SD/LT points;
    /// empty when the pair shares no actuator or the rules were not
    /// supplied at compile time).
    pub actuators: BTreeSet<String>,
    /// The contested goal property (GC and environment-channel points).
    pub property: Option<EnvProperty>,
    /// The trigger variables the pair observes, post-unification.
    pub trigger_vars: BTreeSet<VarId>,
    /// The resolved handling policy.
    pub policy: HandlingPolicy,
}

impl MediationPoint {
    /// The pair member opposite `rule`, if `rule` is a member.
    pub fn counterpart(&self, rule: &RuleId) -> Option<&RuleId> {
        if *rule == self.source {
            Some(&self.target)
        } else if *rule == self.target {
            Some(&self.source)
        } else {
            None
        }
    }
}

/// Compiled mediation points under their interaction keys.
#[derive(Debug, Clone, Default)]
pub struct MediationIndex {
    points: Vec<MediationPoint>,
    by_rule: BTreeMap<RuleId, Vec<usize>>,
    by_actuator: BTreeMap<String, Vec<usize>>,
    by_goal_prop: BTreeMap<EnvProperty, Vec<usize>>,
    by_trigger_var: BTreeMap<VarId, Vec<usize>>,
}

impl MediationIndex {
    /// Compiles an install-time threat report into mediation points.
    ///
    /// `rules` is the installed population the threats were detected over;
    /// supplying it (with the session's `unification`) lets the compiler
    /// resolve the shared actuator identities and trigger variables each
    /// pair collides on — the facets the detector's candidate index posts.
    /// Threats whose rules are absent from `rules` still compile, keyed by
    /// rule identity alone.
    pub fn compile(
        threats: &[Threat],
        rules: &[Rule],
        unification: &Unification,
        table: &PolicyTable,
    ) -> MediationIndex {
        let prepared: BTreeMap<&RuleId, PreparedRule> = rules
            .iter()
            .map(|r| (&r.id, PreparedRule::prepare(r, unification)))
            .collect();
        let mut index = MediationIndex::default();
        for threat in threats {
            let src = prepared.get(&threat.source);
            let dst = prepared.get(&threat.target);
            let mut actuators = BTreeSet::new();
            let mut trigger_vars = BTreeSet::new();
            if let (Some(s), Some(d)) = (src, dst) {
                let dst_keys: BTreeSet<&str> = d.actuator_keys().collect();
                for key in s.actuator_keys().filter(|k| dst_keys.contains(k)) {
                    actuators.insert(key.to_string());
                }
                trigger_vars.extend(s.trigger_var());
                trigger_vars.extend(d.trigger_var());
            }
            index.insert(MediationPoint {
                kind: threat.kind,
                source: threat.source.clone(),
                target: threat.target.clone(),
                actuators,
                property: threat.property,
                trigger_vars,
                policy: table.policy(threat.kind).clone(),
            });
        }
        index
    }

    /// Adds one compiled point to every posting it keys under.
    pub fn insert(&mut self, point: MediationPoint) {
        let id = self.points.len();
        for rule in [&point.source, &point.target] {
            self.by_rule.entry(rule.clone()).or_default().push(id);
        }
        for key in &point.actuators {
            self.by_actuator.entry(key.clone()).or_default().push(id);
        }
        if let Some(prop) = point.property {
            self.by_goal_prop.entry(prop).or_default().push(id);
        }
        for var in &point.trigger_vars {
            self.by_trigger_var.entry(var.clone()).or_default().push(id);
        }
        self.points.push(point);
    }

    /// Keeps only the points `keep` accepts, rebuilding every posting.
    /// Returns how many points were retired. This is the runtime half of
    /// rule retraction: when an app is uninstalled or upgraded, its
    /// mediation points must disappear with it.
    pub fn retain(&mut self, mut keep: impl FnMut(&MediationPoint) -> bool) -> usize {
        let before = self.points.len();
        let points = std::mem::take(&mut self.points);
        self.by_rule.clear();
        self.by_actuator.clear();
        self.by_goal_prop.clear();
        self.by_trigger_var.clear();
        for point in points {
            if keep(&point) {
                self.insert(point);
            }
        }
        before - self.points.len()
    }

    /// Retires every point whose pair involves a rule of `app` (uninstall /
    /// upgrade retraction). Returns how many points were retired.
    pub fn remove_app(&mut self, app: &str) -> usize {
        self.retain(|point| point.source.app != app && point.target.app != app)
    }

    /// Number of compiled points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no point is compiled (the enforcer's allow-everything fast
    /// path).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All compiled points.
    pub fn points(&self) -> &[MediationPoint] {
        &self.points
    }

    /// Points where `rule` is a pair member.
    pub fn points_for_rule(&self, rule: &RuleId) -> impl Iterator<Item = &MediationPoint> {
        self.by_rule
            .get(rule)
            .into_iter()
            .flatten()
            .map(|&i| &self.points[i])
    }

    /// Points keyed under a canonical actuator identity.
    pub fn points_for_actuator(&self, key: &str) -> impl Iterator<Item = &MediationPoint> {
        self.by_actuator
            .get(key)
            .into_iter()
            .flatten()
            .map(|&i| &self.points[i])
    }

    /// Points keyed under a contested goal property.
    pub fn points_for_property(&self, prop: EnvProperty) -> impl Iterator<Item = &MediationPoint> {
        self.by_goal_prop
            .get(&prop)
            .into_iter()
            .flatten()
            .map(|&i| &self.points[i])
    }

    /// Points whose pair observes `var` as a trigger.
    pub fn points_for_trigger_var(&self, var: &VarId) -> impl Iterator<Item = &MediationPoint> {
        self.by_trigger_var
            .get(var)
            .into_iter()
            .flatten()
            .map(|&i| &self.points[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hg_capability::device_kind::DeviceKind;
    use hg_rules::rule::{Action, Condition, Trigger};
    use hg_rules::varid::DeviceRef;

    fn lamp_rule(app: &str, command: &str) -> Rule {
        let m = DeviceRef::Unbound {
            app: app.into(),
            input: "m".into(),
            capability: "motionSensor".into(),
            kind: DeviceKind::Unknown,
        };
        let lamp = DeviceRef::Unbound {
            app: app.into(),
            input: "lamp".into(),
            capability: "switch".into(),
            kind: DeviceKind::Light,
        };
        Rule {
            id: RuleId::new(app, 0),
            trigger: Trigger::DeviceEvent {
                subject: m,
                attribute: "motion".into(),
                constraint: None,
            },
            condition: Condition::always(),
            actions: vec![Action::device(lamp, command)],
        }
    }

    fn race_threat(a: &Rule, b: &Rule) -> Threat {
        Threat {
            kind: ThreatKind::ActuatorRace,
            source: a.id.clone(),
            target: b.id.clone(),
            witness: None,
            actuator: Some("lamp".into()),
            property: None,
            note: "test race".into(),
        }
    }

    #[test]
    fn compile_resolves_shared_actuator_and_trigger_vars() {
        let a = lamp_rule("A", "on");
        let b = lamp_rule("B", "off");
        let threats = vec![race_threat(&a, &b)];
        let index = MediationIndex::compile(
            &threats,
            &[a.clone(), b.clone()],
            &Unification::ByType,
            &PolicyTable::block_all(),
        );
        assert_eq!(index.len(), 1);
        let point = &index.points()[0];
        assert_eq!(
            point.actuators.iter().collect::<Vec<_>>(),
            vec!["type:switch/light"]
        );
        assert!(!point.trigger_vars.is_empty());
        assert_eq!(point.policy, HandlingPolicy::Block);
        // Posted under both rule identities and the shared actuator key.
        assert_eq!(index.points_for_rule(&a.id).count(), 1);
        assert_eq!(index.points_for_rule(&b.id).count(), 1);
        assert_eq!(index.points_for_actuator("type:switch/light").count(), 1);
        let var = point.trigger_vars.iter().next().unwrap();
        assert_eq!(index.points_for_trigger_var(var).count(), 1);
    }

    #[test]
    fn compile_without_rules_keys_by_identity_only() {
        let a = lamp_rule("A", "on");
        let b = lamp_rule("B", "off");
        let threats = vec![race_threat(&a, &b)];
        let index = MediationIndex::compile(
            &threats,
            &[],
            &Unification::ByType,
            &PolicyTable::block_all(),
        );
        assert_eq!(index.len(), 1);
        assert!(index.points()[0].actuators.is_empty());
        assert_eq!(index.points_for_rule(&a.id).count(), 1);
    }

    #[test]
    fn remove_app_retires_points_and_postings() {
        let a = lamp_rule("A", "on");
        let b = lamp_rule("B", "off");
        let c = lamp_rule("C", "on");
        let threats = vec![race_threat(&a, &b), race_threat(&b, &c)];
        let mut index = MediationIndex::compile(
            &threats,
            &[a.clone(), b.clone(), c.clone()],
            &Unification::ByType,
            &PolicyTable::block_all(),
        );
        assert_eq!(index.len(), 2);

        // Retiring A drops only the A–B point; B–C survives with postings.
        assert_eq!(index.remove_app("A"), 1);
        assert_eq!(index.len(), 1);
        assert_eq!(index.points_for_rule(&a.id).count(), 0);
        assert_eq!(index.points_for_rule(&b.id).count(), 1);
        assert_eq!(index.points_for_actuator("type:switch/light").count(), 1);

        // Retiring B empties the index entirely.
        assert_eq!(index.remove_app("B"), 1);
        assert!(index.is_empty());
        assert_eq!(index.points_for_actuator("type:switch/light").count(), 0);
        assert_eq!(index.remove_app("B"), 0, "idempotent");
    }

    #[test]
    fn counterpart_orientation() {
        let a = lamp_rule("A", "on");
        let b = lamp_rule("B", "off");
        let threats = vec![race_threat(&a, &b)];
        let index = MediationIndex::compile(
            &threats,
            &[],
            &Unification::ByType,
            &PolicyTable::block_all(),
        );
        let p = &index.points()[0];
        assert_eq!(p.counterpart(&a.id), Some(&b.id));
        assert_eq!(p.counterpart(&b.id), Some(&a.id));
        assert_eq!(p.counterpart(&RuleId::new("C", 0)), None);
    }
}
