//! # hg-runtime — runtime mediation & threat-handling engine
//!
//! The paper is about *categorizing, detecting **and handling*** cross-app
//! interference. `hg-detector` covers detection at install time; this
//! crate is the handling half (§IX): a mediation layer that sits inline on
//! live event traffic, compiles the install-time threat report into
//! indexed **mediation points**, and applies a per-threat-kind handling
//! policy the moment an interference is about to manifest.
//!
//! ## From report to runtime
//!
//! ```text
//! ThreatReport (hg-detector)          event loop (hg-sim / live traffic)
//!   Threat{kind, R1, R2, ...}   ┌──── rule R is about to fire ──────────┐
//!        │ compile              │ actuator command is about to execute  │
//!        ▼                      └──────────────────┬────────────────────┘
//!   MediationIndex ── keyed like CandidateIndex ───┤ Mediator hook
//!   (rule id, actuator identity,                   ▼
//!    goal property, trigger vars)            Enforcer::decide_*
//!        │                                         │
//!        ▼                                         ▼
//!   per-kind HandlingPolicy              Allow / Suppress / Defer
//!                                        + MediationTrace journal entry
//! ```
//!
//! ## Policies and the paper's handling discussion
//!
//! The paper's §IX observes that once a CAI threat is *known*, the
//! platform can intervene at the event level; each [`HandlingPolicy`]
//! realizes one of the interventions discussed there:
//!
//! * [`HandlingPolicy::Block`] — refuse the interfering event. This is
//!   the paper's "deny the second, conflicting automation": the second
//!   member of a threat pair to act in a run is stopped (its firing
//!   dropped, or its conflicting actuator command discarded). Default for
//!   Goal Conflict, Covert Triggering, Self Disabling and Loop Triggering
//!   — breaking a triggering loop requires refusing one of its edges.
//! * [`HandlingPolicy::Priority`] — the paper's user-ranked arbitration
//!   for Actuator Races (Fig. 3): of two same-instant contradictory
//!   commands on the shared actuator, only the higher-ranked rule's
//!   command takes effect, so the race's outcome is deterministic instead
//!   of schedule-dependent ("turned on only / turned off only / on then
//!   off / off then on" collapses to one outcome).
//! * [`HandlingPolicy::Defer`] — separate the pair in time: the
//!   interfering event is postponed past a mediation window rather than
//!   dropped. Default for Enabling-Condition interference, where the
//!   threat exists only while the enabling write and the enabled rule
//!   coincide.
//! * [`HandlingPolicy::Notify`] — allow but journal, the paper's
//!   minimum handling: a Disabling-Condition interference silently mutes a
//!   rule, so the only meaningful intervention is making the covert overt
//!   in the incident journal ([`MediationTrace`]).
//!
//! All seven Table I kinds are covered by [`PolicyTable`]; the
//! [`Enforcer`] journals every decision and keeps [`MediationStats`]
//! (events seen, events mediated, per-decision latency) for the
//! `runtime_mediation` bench.
//!
//! ## Example
//!
//! ```
//! use hg_detector::{Detector, Unification};
//! use hg_runtime::{Enforcer, PolicyTable};
//! use hg_sim::Decision;
//! use hg_symexec::{extract, ExtractorConfig};
//!
//! let on = extract(r#"
//!     input "m", "capability.motionSensor"
//!     input "lamp", "capability.switch", title: "lamp"
//!     def installed() { subscribe(m, "motion.active", h) }
//!     def h(evt) { lamp.on() }
//! "#, "OnApp", &ExtractorConfig::default()).unwrap().rules;
//! let off = extract(r#"
//!     input "m", "capability.motionSensor"
//!     input "lamp", "capability.switch", title: "lamp"
//!     def installed() { subscribe(m, "motion.active", h) }
//!     def h(evt) { lamp.off() }
//! "#, "OffApp", &ExtractorConfig::default()).unwrap().rules;
//!
//! // Install-time detection finds the Actuator Race...
//! let (threats, _) = Detector::store_wide().detect_pair(&on[0], &off[0]);
//! assert!(!threats.is_empty());
//!
//! // ...and the runtime engine handles it: with the strict table the
//! // second firing of the pair is suppressed.
//! let rules = [on[0].clone(), off[0].clone()];
//! let mut enforcer = Enforcer::from_threats(
//!     &threats, &rules, &Unification::ByType, &PolicyTable::block_all());
//! assert_eq!(enforcer.decide_fire(&on[0].id, 0), Decision::Allow);
//! assert_eq!(enforcer.decide_fire(&off[0].id, 0), Decision::Suppress);
//! assert_eq!(enforcer.journal().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enforcer;
pub mod point;
pub mod policy;

pub use enforcer::{
    Enforcer, MediationDecision, MediationStats, MediationTrace, SharedEnforcer, Verdict,
};
pub use point::{MediationIndex, MediationPoint};
pub use policy::{HandlingPolicy, PolicyTable};
