//! Handling policies: what the mediation engine does when a detected
//! threat's interference is about to manifest at runtime (paper §IX).

use hg_detector::ThreatKind;
use hg_rules::rule::RuleId;
use std::collections::BTreeMap;

/// How one threat kind is handled at its mediation points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandlingPolicy {
    /// Suppress the interfering event: the second rule of the pair to act
    /// is stopped (firing dropped, command discarded).
    Block,
    /// Arbitrate same-instant conflicts deterministically: rules earlier in
    /// the order win; a losing same-instant command is discarded so the
    /// winner's command is the effective write.
    Priority(Vec<RuleId>),
    /// Let the interfering event through, but only after the mediation
    /// window has passed — separating the pair in time instead of dropping
    /// either side.
    Defer {
        /// The separation window in simulated milliseconds.
        window_ms: u64,
    },
    /// Allow everything, journal the incident for the user (the paper's
    /// minimum viable handling: make the covert overt).
    Notify,
}

impl HandlingPolicy {
    /// A short display tag for journals and demos.
    pub fn tag(&self) -> &'static str {
        match self {
            HandlingPolicy::Block => "block",
            HandlingPolicy::Priority(_) => "priority",
            HandlingPolicy::Defer { .. } => "defer",
            HandlingPolicy::Notify => "notify",
        }
    }
}

/// Per-threat-kind policy assignment, covering all seven Table I kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyTable {
    by_kind: BTreeMap<ThreatKind, HandlingPolicy>,
    fallback: HandlingPolicy,
}

impl Default for PolicyTable {
    /// The deployment defaults, mapped from the paper's handling
    /// discussion:
    ///
    /// * races and loops are actively broken (`Block` for GC/CT/SD/LT);
    /// * Actuator Races are arbitrated by rule priority once the user has
    ///   ranked the pair (until [`PolicyTable::prioritize`] supplies an
    ///   order, AR points fall back to blocking);
    /// * Enabling-Condition interference is deferred past the window in
    ///   which the enabling write and the enabled rule would coincide;
    /// * Disabling-Condition interference — a rule being silently muted —
    ///   cannot be "blocked" meaningfully, so it is surfaced via `Notify`.
    fn default() -> PolicyTable {
        let mut by_kind = BTreeMap::new();
        by_kind.insert(ThreatKind::ActuatorRace, HandlingPolicy::Block);
        by_kind.insert(ThreatKind::GoalConflict, HandlingPolicy::Block);
        by_kind.insert(ThreatKind::CovertTriggering, HandlingPolicy::Block);
        by_kind.insert(ThreatKind::SelfDisabling, HandlingPolicy::Block);
        by_kind.insert(ThreatKind::LoopTriggering, HandlingPolicy::Block);
        by_kind.insert(
            ThreatKind::EnablingCondition,
            HandlingPolicy::Defer { window_ms: 5_000 },
        );
        by_kind.insert(ThreatKind::DisablingCondition, HandlingPolicy::Notify);
        PolicyTable {
            by_kind,
            fallback: HandlingPolicy::Notify,
        }
    }
}

impl PolicyTable {
    /// Every kind handled with [`HandlingPolicy::Block`] — the strictest
    /// table, used by the differential fuzz harness.
    pub fn block_all() -> PolicyTable {
        PolicyTable {
            by_kind: BTreeMap::new(),
            fallback: HandlingPolicy::Block,
        }
    }

    /// Every kind handled with [`HandlingPolicy::Notify`] — pure journaling,
    /// no intervention.
    pub fn notify_all() -> PolicyTable {
        PolicyTable {
            by_kind: BTreeMap::new(),
            fallback: HandlingPolicy::Notify,
        }
    }

    /// Sets the policy for one threat kind.
    pub fn with(mut self, kind: ThreatKind, policy: HandlingPolicy) -> PolicyTable {
        self.by_kind.insert(kind, policy);
        self
    }

    /// Assigns a priority order for Actuator Races: rules earlier in
    /// `order` win same-instant conflicts.
    pub fn prioritize<I>(self, order: I) -> PolicyTable
    where
        I: IntoIterator<Item = RuleId>,
    {
        self.with(
            ThreatKind::ActuatorRace,
            HandlingPolicy::Priority(order.into_iter().collect()),
        )
    }

    /// The policy applied to `kind`.
    pub fn policy(&self, kind: ThreatKind) -> &HandlingPolicy {
        self.by_kind.get(&kind).unwrap_or(&self.fallback)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_all_seven_kinds() {
        let table = PolicyTable::default();
        for kind in ThreatKind::ALL {
            // Every kind resolves to a policy without hitting a panic path.
            let _ = table.policy(kind);
        }
        assert_eq!(
            table.policy(ThreatKind::DisablingCondition),
            &HandlingPolicy::Notify
        );
        assert!(matches!(
            table.policy(ThreatKind::EnablingCondition),
            HandlingPolicy::Defer { .. }
        ));
    }

    #[test]
    fn with_and_prioritize_override() {
        let table = PolicyTable::block_all()
            .with(ThreatKind::GoalConflict, HandlingPolicy::Notify)
            .prioritize([RuleId::new("A", 0), RuleId::new("B", 0)]);
        assert_eq!(
            table.policy(ThreatKind::GoalConflict),
            &HandlingPolicy::Notify
        );
        assert!(matches!(
            table.policy(ThreatKind::ActuatorRace),
            HandlingPolicy::Priority(order) if order.len() == 2
        ));
        assert_eq!(
            table.policy(ThreatKind::LoopTriggering),
            &HandlingPolicy::Block
        );
    }
}
