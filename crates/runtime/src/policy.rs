//! Handling policies: what the mediation engine does when a detected
//! threat's interference is about to manifest at runtime (paper §IX).

use hg_detector::ThreatKind;
use hg_rules::rule::RuleId;
use std::collections::BTreeMap;

/// How one threat kind is handled at its mediation points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandlingPolicy {
    /// Suppress the interfering event: the second rule of the pair to act
    /// is stopped (firing dropped, command discarded).
    Block,
    /// Arbitrate same-instant conflicts deterministically: rules earlier in
    /// the order win; a losing same-instant command is discarded so the
    /// winner's command is the effective write.
    Priority(Vec<RuleId>),
    /// Let the interfering event through, but only after the mediation
    /// window has passed — separating the pair in time instead of dropping
    /// either side.
    Defer {
        /// The separation window in simulated milliseconds.
        window_ms: u64,
    },
    /// Allow everything, journal the incident for the user (the paper's
    /// minimum viable handling: make the covert overt).
    Notify,
}

impl HandlingPolicy {
    /// A short display tag for journals and demos.
    pub fn tag(&self) -> &'static str {
        match self {
            HandlingPolicy::Block => "block",
            HandlingPolicy::Priority(_) => "priority",
            HandlingPolicy::Defer { .. } => "defer",
            HandlingPolicy::Notify => "notify",
        }
    }
}

/// Per-threat-kind policy assignment, covering all seven Table I kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyTable {
    by_kind: BTreeMap<ThreatKind, HandlingPolicy>,
    fallback: HandlingPolicy,
}

impl Default for PolicyTable {
    /// The deployment defaults, mapped from the paper's handling
    /// discussion:
    ///
    /// * races and loops are actively broken (`Block` for GC/CT/SD/LT);
    /// * Actuator Races are arbitrated by rule priority once the user has
    ///   ranked the pair (until [`PolicyTable::prioritize`] supplies an
    ///   order, AR points fall back to blocking);
    /// * Enabling-Condition interference is deferred past the window in
    ///   which the enabling write and the enabled rule would coincide;
    /// * Disabling-Condition interference — a rule being silently muted —
    ///   cannot be "blocked" meaningfully, so it is surfaced via `Notify`.
    fn default() -> PolicyTable {
        let mut by_kind = BTreeMap::new();
        by_kind.insert(ThreatKind::ActuatorRace, HandlingPolicy::Block);
        by_kind.insert(ThreatKind::GoalConflict, HandlingPolicy::Block);
        by_kind.insert(ThreatKind::CovertTriggering, HandlingPolicy::Block);
        by_kind.insert(ThreatKind::SelfDisabling, HandlingPolicy::Block);
        by_kind.insert(ThreatKind::LoopTriggering, HandlingPolicy::Block);
        by_kind.insert(
            ThreatKind::EnablingCondition,
            HandlingPolicy::Defer { window_ms: 5_000 },
        );
        by_kind.insert(ThreatKind::DisablingCondition, HandlingPolicy::Notify);
        PolicyTable {
            by_kind,
            fallback: HandlingPolicy::Notify,
        }
    }
}

impl PolicyTable {
    /// A table answering every kind with the same policy — the base other
    /// tables (and snapshot restoration) refine via [`PolicyTable::with`].
    pub fn uniform(policy: HandlingPolicy) -> PolicyTable {
        PolicyTable {
            by_kind: BTreeMap::new(),
            fallback: policy,
        }
    }

    /// Every kind handled with [`HandlingPolicy::Block`] — the strictest
    /// table, used by the differential fuzz harness.
    pub fn block_all() -> PolicyTable {
        PolicyTable::uniform(HandlingPolicy::Block)
    }

    /// Every kind handled with [`HandlingPolicy::Notify`] — pure journaling,
    /// no intervention.
    pub fn notify_all() -> PolicyTable {
        PolicyTable::uniform(HandlingPolicy::Notify)
    }

    /// Sets the policy for one threat kind.
    pub fn with(mut self, kind: ThreatKind, policy: HandlingPolicy) -> PolicyTable {
        self.by_kind.insert(kind, policy);
        self
    }

    /// Assigns a priority order for Actuator Races: rules earlier in
    /// `order` win same-instant conflicts.
    pub fn prioritize<I>(self, order: I) -> PolicyTable
    where
        I: IntoIterator<Item = RuleId>,
    {
        self.with(
            ThreatKind::ActuatorRace,
            HandlingPolicy::Priority(order.into_iter().collect()),
        )
    }

    /// The policy applied to `kind`.
    pub fn policy(&self, kind: ThreatKind) -> &HandlingPolicy {
        self.by_kind.get(&kind).unwrap_or(&self.fallback)
    }

    /// The fallback policy for kinds without an explicit assignment.
    pub fn fallback(&self) -> &HandlingPolicy {
        &self.fallback
    }

    /// The explicit per-kind assignments (kinds not listed resolve to the
    /// fallback). Snapshot serialization iterates this.
    pub fn entries(&self) -> impl Iterator<Item = (ThreatKind, &HandlingPolicy)> {
        self.by_kind.iter().map(|(k, p)| (*k, p))
    }

    /// Remaps every [`HandlingPolicy::Priority`] rank naming a rule of
    /// `app` through `map` — the upgrade/uninstall follow-up that keeps
    /// priority orders honest. A rank with no mapping (its rule did not
    /// survive) is **dropped** and returned so the caller can surface it
    /// for re-ranking, instead of silently treating the renumbered rule as
    /// unranked forever. Ranks of other apps are untouched.
    pub fn remap_app_ranks(&mut self, app: &str, map: &BTreeMap<RuleId, RuleId>) -> Vec<RuleId> {
        let mut dropped = Vec::new();
        let orders = self
            .by_kind
            .values_mut()
            .chain(std::iter::once(&mut self.fallback));
        for policy in orders {
            let HandlingPolicy::Priority(order) = policy else {
                continue;
            };
            order.retain_mut(|rank| {
                if rank.app != app {
                    return true;
                }
                match map.get(rank) {
                    Some(survivor) => {
                        *rank = survivor.clone();
                        true
                    }
                    None => {
                        if !dropped.contains(rank) {
                            dropped.push(rank.clone());
                        }
                        false
                    }
                }
            });
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_all_seven_kinds() {
        let table = PolicyTable::default();
        for kind in ThreatKind::ALL {
            // Every kind resolves to a policy without hitting a panic path.
            let _ = table.policy(kind);
        }
        assert_eq!(
            table.policy(ThreatKind::DisablingCondition),
            &HandlingPolicy::Notify
        );
        assert!(matches!(
            table.policy(ThreatKind::EnablingCondition),
            HandlingPolicy::Defer { .. }
        ));
    }

    #[test]
    fn remap_app_ranks_rewrites_survivors_and_surfaces_dangling() {
        // v1 of "App" had rules #0, #1, #2 ranked; the upgrade keeps #1's
        // automation (renumbered to #0), drops the rest. Other apps' ranks
        // must survive untouched.
        let mut table = PolicyTable::block_all().prioritize([
            RuleId::new("Other", 0),
            RuleId::new("App", 1),
            RuleId::new("App", 0),
            RuleId::new("App", 2),
        ]);
        let map = BTreeMap::from([(RuleId::new("App", 1), RuleId::new("App", 0))]);
        let dropped = table.remap_app_ranks("App", &map);
        assert_eq!(dropped, vec![RuleId::new("App", 0), RuleId::new("App", 2)]);
        assert!(matches!(
            table.policy(ThreatKind::ActuatorRace),
            HandlingPolicy::Priority(order)
                if *order == vec![RuleId::new("Other", 0), RuleId::new("App", 0)]
        ));
        // Uninstall: the empty map drops every rank of the app.
        let dropped = table.remap_app_ranks("App", &BTreeMap::new());
        assert_eq!(dropped, vec![RuleId::new("App", 0)]);
        assert!(matches!(
            table.policy(ThreatKind::ActuatorRace),
            HandlingPolicy::Priority(order) if *order == vec![RuleId::new("Other", 0)]
        ));
    }

    #[test]
    fn with_and_prioritize_override() {
        let table = PolicyTable::block_all()
            .with(ThreatKind::GoalConflict, HandlingPolicy::Notify)
            .prioritize([RuleId::new("A", 0), RuleId::new("B", 0)]);
        assert_eq!(
            table.policy(ThreatKind::GoalConflict),
            &HandlingPolicy::Notify
        );
        assert!(matches!(
            table.policy(ThreatKind::ActuatorRace),
            HandlingPolicy::Priority(order) if order.len() == 2
        ));
        assert_eq!(
            table.policy(ThreatKind::LoopTriggering),
            &HandlingPolicy::Block
        );
    }
}
