//! Parameterized synthetic fleet generator: seeded, heterogeneous home
//! populations for soak tests and journal benches.
//!
//! The generator stands up fleets of 10⁵+ homes from a small shared app
//! palette (so the store's ingest cache serves every home, exactly like a
//! real deployment installing store apps), with three axes of
//! heterogeneity driven by one [`GenRng`] seed:
//!
//! * **app mix** — every home draws `apps_per_home` palette apps (sensor →
//!   actuator pairs over the corpus capability set), so homes differ in
//!   which rules interact;
//! * **config distribution** — a slice of homes re-binds an app's devices
//!   via [`ConfigInfo`] to synthetic 128-bit device ids;
//! * **chain seams** — every `chain_every`-th home installs a relay ladder
//!   (`motion → relay-0.on`, `relay-0.on → relay-1.on`, ...) whose
//!   consecutive links are CovertTriggering pairs: confirming the dirty
//!   links builds an Allowed list, and the next link's report carries
//!   **chained threats** (`report.chains`, paper §VI-D) — the
//!   chained-detection coverage the soak harness asserts on.
//!
//! Everything is deterministic in [`FleetSpec::seed`]: two fleets
//! populated from the same spec are snapshot-identical.

use hg_config::ConfigInfo;
use hg_service::{Fleet, HomeId};

/// SplitMix64 (the same generator the fuzz harnesses use), seeded and
/// deterministic.
pub struct GenRng {
    state: u64,
}

impl GenRng {
    /// A generator for `seed`.
    pub fn new(seed: u64) -> GenRng {
        GenRng {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xd1b5_4a32_d192_ed03,
        }
    }

    /// The next raw 64-bit draw.
    pub fn draw(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A draw in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.draw() % (hi - lo) as u64) as usize
    }

    /// True with probability `pct`/100.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.draw() % 100 < pct
    }
}

/// Sensor palette: `(capability, attribute, value)`.
const SENSORS: [(&str, &str, &str); 3] = [
    ("capability.motionSensor", "motion", "active"),
    ("capability.contactSensor", "contact", "open"),
    ("capability.waterSensor", "water", "wet"),
];

/// Actuator palette: `(capability, device title, commands)`.
const ACTUATORS: [(&str, &str, [&str; 2]); 3] = [
    ("capability.switch", "lamp", ["on", "off"]),
    ("capability.alarm", "siren", ["siren", "off"]),
    ("capability.lock", "door", ["lock", "unlock"]),
];

/// One synthetic store app: subscribes to a sensor, commands an actuator.
/// The name is a pure function of the palette indices, so every home
/// installing the same combination shares one store extraction.
pub fn palette_app(sensor: usize, actuator: usize, command: usize) -> (String, String) {
    let (s_cap, s_attr, s_val) = SENSORS[sensor % SENSORS.len()];
    let (a_cap, a_title, commands) = ACTUATORS[actuator % ACTUATORS.len()];
    let cmd = commands[command % commands.len()];
    let name = format!("Gen{sensor}{actuator}{command}");
    let source = format!(
        r#"
definition(name: "{name}")
input "t", "{s_cap}"
input "a", "{a_cap}", title: "{a_title}"
def installed() {{ subscribe(t, "{s_attr}.{s_val}", h) }}
def h(evt) {{ a.{cmd}() }}
"#
    );
    (source, name)
}

/// The relay-ladder apps forming chained threats: level 0 turns `relay-0`
/// on from a motion sensor; level `i > 0` subscribes to `relay-(i-1)`'s
/// switch attribute and turns `relay-i` on. Installing the ladder in
/// order and confirming each dirty link makes every consecutive pair an
/// Allowed CovertTriggering edge, so the last link's install report
/// carries chains (§VI-D).
pub fn relay_ladder(depth: usize) -> Vec<(String, String)> {
    (0..depth)
        .map(|level| {
            let name = format!("Relay{level}");
            let source = if level == 0 {
                format!(
                    r#"
definition(name: "{name}")
input "m", "capability.motionSensor"
input "r", "capability.switch", title: "relay-0"
def installed() {{ subscribe(m, "motion.active", h) }}
def h(evt) {{ r.on() }}
"#
                )
            } else {
                format!(
                    r#"
definition(name: "{name}")
input "p", "capability.switch", title: "relay-{prev}"
input "r", "capability.switch", title: "relay-{level}"
def installed() {{ subscribe(p, "switch.on", h) }}
def h(evt) {{ r.on() }}
"#,
                    prev = level - 1
                )
            };
            (source, name)
        })
        .collect()
}

/// Shape of a generated fleet.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Homes to create.
    pub homes: usize,
    /// Registry shard count.
    pub shards: usize,
    /// Determinism seed: same spec, same fleet.
    pub seed: u64,
    /// Palette apps drawn per home.
    pub apps_per_home: usize,
    /// Relay-ladder length for chain homes (≥ 3 links produce chains).
    pub chain_depth: usize,
    /// Every n-th home installs the relay ladder (0 disables).
    pub chain_every: usize,
    /// Percent of homes that re-bind one app's devices via [`ConfigInfo`].
    pub config_pct: u64,
}

impl FleetSpec {
    /// A spec for `homes` homes with deployment-shaped defaults.
    pub fn sized(homes: usize) -> FleetSpec {
        FleetSpec {
            homes,
            shards: 16,
            seed: 0xD5_2020,
            apps_per_home: 2,
            chain_depth: 3,
            chain_every: 10,
            config_pct: 20,
        }
    }
}

/// What [`populate`] did, for assertions and bench labels.
#[derive(Debug, Clone, Copy, Default)]
pub struct GenStats {
    /// Homes created.
    pub homes: u64,
    /// Install attempts that landed (auto-confirmed clean installs).
    pub clean_installs: u64,
    /// Dirty reports confirmed by the synthetic user.
    pub dirty_confirms: u64,
    /// Install reports that carried **chained** threats (§VI-D).
    pub chained_reports: u64,
    /// Homes whose devices were re-bound via [`ConfigInfo`].
    pub configs_recorded: u64,
    /// Install attempts that failed outright.
    pub failures: u64,
}

/// Populates `fleet` per `spec`, returning the ids in creation order and
/// the generation stats. Works identically on journaled and un-journaled
/// fleets — which is exactly how the journal benches measure append
/// overhead.
pub fn populate(fleet: &Fleet, spec: &FleetSpec) -> (Vec<HomeId>, GenStats) {
    let mut rng = GenRng::new(spec.seed);
    let ladder = relay_ladder(spec.chain_depth);
    // Batch creation: one journal record for the whole population (ids
    // come back in the same creation order the per-home path would
    // assign, so seeded runs stay snapshot-identical).
    let ids = fleet.create_homes(spec.homes).unwrap();
    let mut stats = GenStats::default();
    for (n, &id) in ids.iter().enumerate() {
        stats.homes += 1;
        for _ in 0..spec.apps_per_home {
            let (source, name) = palette_app(
                rng.range(0, SENSORS.len()),
                rng.range(0, ACTUATORS.len()),
                rng.range(0, 2),
            );
            install_confirming(fleet, id, &source, &name, &mut stats);
        }
        if spec.chain_every > 0 && n % spec.chain_every == 0 {
            for (source, name) in &ladder {
                install_confirming(fleet, id, source, name, &mut stats);
            }
        }
        if rng.chance(spec.config_pct) {
            let (_, name) = palette_app(0, 0, 0);
            let info = ConfigInfo::new(name)
                .bind_device("t", &format!("{:032x}", rng.draw()))
                .bind_device("a", &format!("{:032x}", rng.draw()));
            if fleet.record_config(id, &info).is_ok() {
                stats.configs_recorded += 1;
            }
        }
    }
    (ids, stats)
}

/// Installs one app into one home like a user who accepts every report:
/// dirty verdicts are confirmed, duplicate installs are tolerated (a home
/// can draw the same palette app twice).
fn install_confirming(fleet: &Fleet, id: HomeId, source: &str, name: &str, stats: &mut GenStats) {
    match fleet.install_app(id, source, name, None) {
        Ok(report) if report.installed => stats.clean_installs += 1,
        Ok(report) => {
            if !report.chains.is_empty() {
                stats.chained_reports += 1;
            }
            if fleet.confirm_install(id, report).is_ok() {
                stats.dirty_confirms += 1;
            } else {
                stats.failures += 1;
            }
        }
        Err(hg_service::HgError::AlreadyInstalled(_)) => {}
        Err(_) => stats.failures += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hg_service::RuleStore;

    #[test]
    fn populate_is_deterministic_and_forms_chains() {
        let spec = FleetSpec {
            homes: 40,
            shards: 4,
            ..FleetSpec::sized(40)
        };
        let a = Fleet::builder(RuleStore::shared())
            .shards(spec.shards)
            .build();
        let b = Fleet::builder(RuleStore::shared())
            .shards(spec.shards)
            .build();
        let (ids_a, stats_a) = populate(&a, &spec);
        let (ids_b, _) = populate(&b, &spec);
        assert_eq!(ids_a, ids_b);
        assert_eq!(stats_a.homes, 40);
        assert!(
            stats_a.chained_reports > 0,
            "relay ladders must produce chained threat reports: {stats_a:?}"
        );
        assert_eq!(
            a.snapshot().unwrap().to_text(),
            b.snapshot().unwrap().to_text()
        );
    }

    #[test]
    fn palette_apps_share_store_extractions() {
        let spec = FleetSpec::sized(30);
        let fleet = Fleet::builder(RuleStore::shared()).shards(4).build();
        let (_, stats) = populate(&fleet, &spec);
        assert!(stats.failures == 0, "{stats:?}");
        // 30 homes × 2 apps from an 18-app palette: far more installs than
        // extractions.
        assert!(fleet.store().cache_hits() > 30);
    }
}
