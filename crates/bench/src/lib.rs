//! Shared helpers for the HomeGuard benches.

#![forbid(unsafe_code)]

use hg_rules::rule::Rule;
use hg_symexec::{extract, ExtractorConfig};

/// Extracts the rules of a named corpus app (panics if absent/broken).
pub fn corpus_rules(name: &str) -> Vec<Rule> {
    let app = hg_corpus::benign_app(name).unwrap_or_else(|| panic!("no corpus app {name}"));
    extract(app.source, app.name, &ExtractorConfig::extended())
        .unwrap_or_else(|e| panic!("{name}: {e}"))
        .rules
}

/// The rule population of the device-controlling corpus.
pub fn device_control_rules() -> Vec<Rule> {
    hg_corpus::device_control_apps()
        .iter()
        .flat_map(|app| {
            extract(app.source, app.name, &ExtractorConfig::extended())
                .expect("corpus extracts")
                .rules
        })
        .collect()
}

/// The same population grouped per app, for incremental store audits.
pub fn device_control_rule_sets() -> Vec<Vec<Rule>> {
    hg_corpus::device_control_apps()
        .iter()
        .map(|app| {
            extract(app.source, app.name, &ExtractorConfig::extended())
                .expect("corpus extracts")
                .rules
        })
        .collect()
}
