//! Shared helpers for the HomeGuard benches.

#![forbid(unsafe_code)]

pub mod fleet_gen;

use hg_rules::rule::Rule;
use hg_symexec::{extract, ExtractorConfig};

/// Extracts the rules of a named corpus app (panics if absent/broken).
pub fn corpus_rules(name: &str) -> Vec<Rule> {
    let app = hg_corpus::benign_app(name).unwrap_or_else(|| panic!("no corpus app {name}"));
    extract(app.source, app.name, &ExtractorConfig::extended())
        .unwrap_or_else(|e| panic!("{name}: {e}"))
        .rules
}

/// The rule population of the device-controlling corpus.
pub fn device_control_rules() -> Vec<Rule> {
    hg_corpus::device_control_apps()
        .iter()
        .flat_map(|app| {
            extract(app.source, app.name, &ExtractorConfig::extended())
                .expect("corpus extracts")
                .rules
        })
        .collect()
}

/// Emits one machine-readable summary line for a bench run.
///
/// The format is grep-friendly and stable: `BENCH_SUMMARY {json}`, one
/// object per bench, numeric fields only. `BENCH_*.json` trajectory files
/// checked into the repo root are assembled from these lines, so future
/// PRs can regress against recorded baselines without parsing criterion's
/// human-readable output.
pub fn emit_summary(bench: &str, fields: &[(&str, f64)]) {
    let mut body = format!("{{\"bench\":\"{bench}\"");
    for (key, value) in fields {
        body.push_str(&format!(",\"{key}\":{value:.2}"));
    }
    body.push('}');
    println!("BENCH_SUMMARY {body}");
}

/// The same population grouped per app, for incremental store audits.
pub fn device_control_rule_sets() -> Vec<Vec<Rule>> {
    hg_corpus::device_control_apps()
        .iter()
        .map(|app| {
            extract(app.source, app.name, &ExtractorConfig::extended())
                .expect("corpus extracts")
                .rules
        })
        .collect()
}
