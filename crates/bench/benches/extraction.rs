//! §VIII-C: rule-extraction time per app (paper: 1341 ms/app on the
//! authors' JVM setup; the shape to reproduce is "fast enough for online
//! extraction of custom apps") and rule-file sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use hg_rules::json::rules_to_text;
use hg_symexec::{extract, ExtractorConfig};
use std::hint::black_box;

fn bench_extraction(c: &mut Criterion) {
    let config = ExtractorConfig::extended();
    let mut group = c.benchmark_group("extraction");
    // Representative single apps.
    for name in ["ComfortTV", "MakeItSo", "SmartNightlight"] {
        let app = hg_corpus::benign_app(name).unwrap();
        group.bench_function(format!("extract_{name}"), |b| {
            b.iter(|| black_box(extract(app.source, app.name, &config).unwrap()))
        });
    }
    // Whole corpus sweep (the paper's 10-run average over all apps).
    let apps = hg_corpus::automation_apps();
    group.bench_function("extract_whole_corpus", |b| {
        b.iter(|| {
            for app in &apps {
                black_box(extract(app.source, app.name, &config).ok());
            }
        })
    });
    group.finish();
}

fn bench_rule_serialization(c: &mut Criterion) {
    let config = ExtractorConfig::extended();
    let app = hg_corpus::benign_app("ComfortTV").unwrap();
    let rules = extract(app.source, app.name, &config).unwrap().rules;
    c.bench_function("rule_file_serialize", |b| {
        b.iter(|| black_box(rules_to_text(&rules)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_extraction, bench_rule_serialization
}
criterion_main!(benches);
