//! Ablation: what candidate filtering and solver reuse buy (DESIGN.md's
//! design-choice benches).
//!
//! * `with_filtering` — the full pipeline over the device-controlling
//!   corpus slice: only action-analysis candidates reach the solver.
//! * `always_solve` — every pair pays a merged-situation solve, simulating
//!   a detector without the M_AR/M_GC candidate filter.

use criterion::{criterion_group, criterion_main, Criterion};
use hg_bench::device_control_rules;
use hg_detector::Detector;
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let rules = device_control_rules();
    let slice = &rules[..rules.len().min(24)];
    let detector = Detector::store_wide();
    let mut group = c.benchmark_group("ablation_candidate_filtering");
    group.sample_size(10);
    group.bench_function("with_filtering", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for i in 0..slice.len() {
                for j in (i + 1)..slice.len() {
                    let (t, _) = detector.detect_pair(&slice[i], &slice[j]);
                    n += t.len();
                }
            }
            black_box(n)
        })
    });
    group.bench_function("always_solve", |b| {
        b.iter(|| {
            let mut sat = 0usize;
            for i in 0..slice.len() {
                for j in (i + 1)..slice.len() {
                    let s1 = slice[i].situation();
                    let s2 = slice[j].situation();
                    if detector.solver.solve(&[&s1, &s2]).is_sat() {
                        sat += 1;
                    }
                }
            }
            black_box(sat)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablation
}
criterion_main!(benches);
