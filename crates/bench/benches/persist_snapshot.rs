//! Snapshot/restore bench: whole-fleet serialization throughput and
//! warm-restart latency through `hg-persist`.
//!
//! This is the perf-trajectory guard for the durability layer: a snapshot
//! must stay a linear walk over store + homes (no per-home re-extraction,
//! no solver work), and a restore must rebuild every home's derived state
//! (detection postings, lazily the mediation index) fast enough that a
//! process restart is an operational non-event.

use criterion::{criterion_group, criterion_main, Criterion};
use hg_corpus::device_control_apps;
use hg_persist::FleetSnapshot;
use hg_service::{Fleet, HomeId, RuleStore};
use std::hint::black_box;
use std::time::Instant;

/// Builds a fleet of `homes` and force-installs `apps` corpus apps into
/// every home.
fn populate(homes: usize, apps: usize) -> (Fleet, Vec<HomeId>) {
    let fleet = Fleet::builder(RuleStore::shared()).shards(16).build();
    let ids: Vec<HomeId> = (0..homes).map(|_| fleet.create_home().unwrap()).collect();
    for app in device_control_apps().iter().take(apps) {
        for result in fleet
            .install_many(&ids, app.source, app.name, None)
            .unwrap()
        {
            result.1.unwrap();
        }
    }
    (fleet, ids)
}

fn bench_persist_snapshot(c: &mut Criterion) {
    // Headline numbers once, outside the timing loops.
    for (homes, apps) in [(16, 4), (64, 8)] {
        let (fleet, _ids) = populate(homes, apps);
        let started = Instant::now();
        let text = fleet.snapshot().unwrap().to_text();
        let snap_elapsed = started.elapsed();
        let started = Instant::now();
        let restored = Fleet::restore(FleetSnapshot::from_text(&text).unwrap()).unwrap();
        let restore_elapsed = started.elapsed();
        assert_eq!(restored.len(), homes);
        println!(
            "fleet {homes:>3} homes x {apps} apps: snapshot {:>8} bytes in {snap_elapsed:>9.2?}, \
             restore in {restore_elapsed:>9.2?} ({:.0} homes/sec revived)",
            text.len(),
            homes as f64 / restore_elapsed.as_secs_f64()
        );
    }

    let mut group = c.benchmark_group("persist_snapshot");
    group.sample_size(10);

    let (fleet, _ids) = populate(64, 4);
    group.bench_function("snapshot_to_text_64x4", |b| {
        b.iter(|| black_box(fleet.snapshot().unwrap().to_text()))
    });

    let text = fleet.snapshot().unwrap().to_text();
    group.bench_function("restore_from_text_64x4", |b| {
        b.iter(|| black_box(Fleet::restore(FleetSnapshot::from_text(&text).unwrap()).unwrap()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_persist_snapshot
}
criterion_main!(benches);
