//! HTTP frontend bench: queue-dispatched sweeps and wire round-trips.
//!
//! Two questions guard the `hg-api` layer's perf trajectory: (1) what
//! does routing bulk sweeps through the per-shard work-queue executor
//! cost relative to the fleet's inline shard walk, and (2) what does a
//! full HTTP round trip (parse → dispatch → serialize) add on top of a
//! direct call. Headline rates print once and feed `BENCH_*.json`; the
//! criterion group then times the steady-state loops.

use criterion::{criterion_group, criterion_main, Criterion};
use hg_api::{ApiServer, ExecConfig, FleetExec, ServerConfig};
use hg_corpus::device_control_apps;
use hg_service::{Fleet, HomeId, RuleStore};
use std::hint::black_box;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant;

const HOMES: usize = 64;
const APPS: usize = 4;

fn app_slice() -> Vec<(&'static str, &'static str)> {
    device_control_apps()
        .iter()
        .take(APPS)
        .map(|app| (app.name, app.source))
        .collect()
}

/// A fleet of `HOMES` empty homes plus its queue executor.
fn fresh() -> (Arc<Fleet>, Arc<FleetExec>, Vec<HomeId>) {
    let fleet = Arc::new(Fleet::builder(RuleStore::shared()).shards(16).build());
    let ids: Vec<HomeId> = (0..HOMES).map(|_| fleet.create_home().unwrap()).collect();
    let exec = FleetExec::start(fleet.clone(), ExecConfig::default());
    (fleet, exec, ids)
}

/// Installs the corpus slice through the executor's work queues.
fn populate_dispatched(exec: &FleetExec, ids: &[HomeId]) {
    for (name, source) in app_slice() {
        let outcomes = exec
            .install_many(ids.to_vec(), source.to_string(), name.to_string())
            .expect("store queue accepts")
            .expect("corpus extracts");
        for (_, result) in outcomes {
            result.expect("corpus installs");
        }
    }
}

/// One blocking HTTP request over a fresh loopback connection.
fn roundtrip(addr: SocketAddr, request: &str) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("write");
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("read");
    out
}

fn bench_fleet_http(c: &mut Criterion) {
    // ---- headline: queue-dispatched sweep vs inline shard walk ---------
    let mut summary: Vec<(&str, f64)> = Vec::new();

    let (_fleet, exec, ids) = fresh();
    let started = Instant::now();
    populate_dispatched(&exec, &ids);
    let elapsed = started.elapsed();
    let installs = HOMES * APPS;
    let dispatched_rate = installs as f64 / elapsed.as_secs_f64();
    println!(
        "queue-dispatched grid {HOMES} homes x {APPS} apps: {installs} installs in {elapsed:.2?} \
         ({dispatched_rate:.0} installs/sec)"
    );
    summary.push(("queue_installs_per_sec", dispatched_rate));

    let (upgrade_name, upgrade_source) = app_slice()[0];
    let v2 = format!("{upgrade_source}\n// http v2\n");
    let started = Instant::now();
    let rollout = exec
        .propagate_upgrade(v2, upgrade_name.to_string())
        .expect("store queue accepts")
        .expect("corpus extracts");
    let elapsed = started.elapsed();
    let touched = rollout.upgraded.len() + rollout.pending.len();
    let sweep_rate = touched as f64 / elapsed.as_secs_f64();
    println!(
        "queue-dispatched rollout: {touched} homes re-checked in {elapsed:.2?} \
         ({sweep_rate:.0} homes/sec)"
    );
    summary.push(("queue_rollout_homes_per_sec", sweep_rate));
    drop(exec);

    // ---- headline: HTTP round trips ------------------------------------
    let (fleet, _, _) = fresh();
    let server = ApiServer::start(fleet, ServerConfig::default()).expect("bind loopback");
    let addr = server.addr();
    let stats_request = "GET /stats HTTP/1.1\r\nhost: bench\r\nconnection: close\r\n\r\n";
    let rounds = 200usize;
    let started = Instant::now();
    for _ in 0..rounds {
        black_box(roundtrip(addr, stats_request));
    }
    let elapsed = started.elapsed();
    let http_rate = rounds as f64 / elapsed.as_secs_f64();
    println!(
        "HTTP GET /stats: {rounds} round trips in {elapsed:.2?} ({http_rate:.0} requests/sec)"
    );
    summary.push(("http_stats_requests_per_sec", http_rate));
    hg_bench::emit_summary("fleet_http", &summary);

    // ---- criterion steady state ----------------------------------------
    let mut group = c.benchmark_group("fleet_http");
    group.sample_size(10);
    group.bench_function("http_stats_roundtrip", |b| {
        b.iter(|| black_box(roundtrip(addr, stats_request)))
    });

    let (_fleet2, exec2, ids2) = fresh();
    populate_dispatched(&exec2, &ids2);
    let versions = [
        format!("{upgrade_source}\n// alt A\n"),
        format!("{upgrade_source}\n// alt B\n"),
    ];
    let mut round = 0usize;
    group.bench_function("queue_dispatched_rollout_64_homes", |b| {
        b.iter(|| {
            let v = versions[round % 2].clone();
            round += 1;
            black_box(
                exec2
                    .propagate_upgrade(v, upgrade_name.to_string())
                    .unwrap()
                    .unwrap(),
            )
        })
    });
    group.finish();
    server.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fleet_http
}
criterion_main!(benches);
