//! Fleet throughput bench: installs/sec across a homes × apps grid and
//! upgrade-propagation latency through `hg-service`.
//!
//! This is the perf-trajectory guard for the fleet layer: bulk installs
//! must amortize extraction through the shared store (one extraction per
//! app, every further home a cache hit), and a fleet-wide upgrade rollout
//! must stay incremental per home (candidate-index re-check, not a
//! from-scratch rebuild).

use criterion::{criterion_group, criterion_main, Criterion};
use hg_corpus::device_control_apps;
use hg_service::{Fleet, HomeId, RuleStore};
use std::hint::black_box;
use std::time::Instant;

/// The corpus slice rolled out to every home.
fn app_slice(apps: usize) -> Vec<(&'static str, &'static str)> {
    device_control_apps()
        .iter()
        .take(apps)
        .map(|app| (app.name, app.source))
        .collect()
}

/// Builds a fleet of `homes` and force-installs `apps` corpus apps into
/// every home. Returns the fleet and its home ids.
fn populate(homes: usize, apps: usize) -> (Fleet, Vec<HomeId>) {
    let fleet = Fleet::builder(RuleStore::shared()).shards(16).build();
    let ids: Vec<HomeId> = (0..homes).map(|_| fleet.create_home().unwrap()).collect();
    for (name, source) in app_slice(apps) {
        for result in fleet.install_many(&ids, source, name, None).unwrap() {
            result.1.unwrap();
        }
    }
    (fleet, ids)
}

fn bench_fleet_throughput(c: &mut Criterion) {
    // Headline numbers once, outside the timing loops: installs/sec on the
    // grid and the per-home propagation cost of one upgrade. The 256-home
    // grid is the repeated-install workload (the same store apps across a
    // large fleet — the fleet-shared verdict cache's home turf) whose
    // numbers feed the BENCH_*.json trajectory.
    let mut summary: Vec<(&str, f64)> = Vec::new();
    for (homes, apps) in [(16, 4), (64, 4), (64, 8), (256, 4)] {
        let started = Instant::now();
        let (fleet, ids) = populate(homes, apps);
        let elapsed = started.elapsed();
        let installs = homes * apps;
        let install_rate = installs as f64 / elapsed.as_secs_f64();
        println!(
            "fleet {homes:>3} homes x {apps} apps: {installs:>4} installs in {elapsed:>9.2?} \
             ({install_rate:>7.0} installs/sec, {} cache hits)",
            fleet.store().cache_hits()
        );

        let (upgrade_name, upgrade_source) = app_slice(1)[0];
        let v2 = format!("{upgrade_source}\n// fleet v2\n");
        let started = Instant::now();
        let rollout = fleet.propagate_upgrade(&v2, upgrade_name).unwrap();
        let elapsed = started.elapsed();
        let touched = rollout.upgraded.len() + rollout.pending.len();
        assert_eq!(touched, homes, "every home runs the first corpus app");
        let upgrade_rate = touched as f64 / elapsed.as_secs_f64();
        println!(
            "  upgrade propagation: {touched} homes re-checked in {elapsed:.2?} \
             ({upgrade_rate:.0} homes/sec, {} clean / {} pending)",
            rollout.upgraded.len(),
            rollout.pending.len()
        );
        if homes == 256 {
            let verdicts = fleet.store().verdict_cache().stats();
            summary.push(("installs_per_sec", install_rate));
            summary.push(("upgrade_homes_per_sec", upgrade_rate));
            summary.push(("verdict_cache_hit_pct", 100.0 * verdicts.hit_rate()));
        }
        drop(ids);
    }
    hg_bench::emit_summary("fleet_throughput", &summary);

    let mut group = c.benchmark_group("fleet_throughput");
    group.sample_size(10);
    group.bench_function("install_grid_16x4", |b| {
        b.iter(|| black_box(populate(16, 4)))
    });

    // Upgrade propagation over a standing fleet, alternating two versions
    // so every iteration really re-checks each home.
    let (fleet, _ids) = populate(64, 4);
    let (name, source) = app_slice(1)[0];
    let versions = [
        format!("{source}\n// alt A\n"),
        format!("{source}\n// alt B\n"),
    ];
    let mut round = 0usize;
    group.bench_function("propagate_upgrade_64_homes", |b| {
        b.iter(|| {
            let v = &versions[round % 2];
            round += 1;
            black_box(fleet.propagate_upgrade(v, name).unwrap())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fleet_throughput
}
criterion_main!(benches);
