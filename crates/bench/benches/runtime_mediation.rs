//! Runtime-mediation bench: decisions/sec and per-decision latency of the
//! `hg-runtime` enforcer at 10 / 100 / 1000 installed rules.
//!
//! The workload synthesizes a population where half the rules pair into
//! Actuator Races (command-level mediation) and half into Covert
//! Triggering chains (fire-level mediation), compiles the mediation index,
//! then replays a full run of fire + command decisions per iteration. A
//! separate benchmark measures the allow-everything fast path for rules
//! that key into no mediation point — the cost every *uninvolved* event on
//! a mediated home pays.

use criterion::{criterion_group, criterion_main, Criterion};
use hg_detector::{Threat, ThreatKind, Unification};
use hg_rules::constraint::Formula;
use hg_rules::rule::{Action, Condition, Rule, RuleId, Trigger};
use hg_rules::value::Value;
use hg_rules::varid::{DeviceRef, VarId};
use hg_runtime::{Enforcer, PolicyTable};
use hg_sim::Decision;
use std::hint::black_box;

/// One synthetic rule: `motion-{i} active -> lamp-{pair} on|off`.
fn rule(i: usize, lamp: usize, command: &str) -> Rule {
    let sensor = DeviceRef::bound(format!("motion-{}", i % 10));
    let lamp = DeviceRef::bound(format!("lamp-{lamp}"));
    Rule {
        id: RuleId::new(format!("App{i}"), 0),
        trigger: Trigger::DeviceEvent {
            subject: sensor.clone(),
            attribute: "motion".into(),
            constraint: Some(Formula::var_eq(
                VarId::device_attr(sensor, "motion"),
                Value::sym("active"),
            )),
        },
        condition: Condition::always(),
        actions: vec![Action::device(lamp, command)],
    }
}

/// A population of `n` rules paired into threats: even pairs race on a
/// shared lamp (AR), odd pairs covertly trigger (CT).
fn population(n: usize) -> (Vec<Rule>, Vec<Threat>) {
    let mut rules = Vec::with_capacity(n);
    let mut threats = Vec::new();
    for pair in 0..n / 2 {
        let (a, b) = (2 * pair, 2 * pair + 1);
        rules.push(rule(a, pair, "on"));
        rules.push(rule(b, pair, "off"));
        let kind = if pair % 2 == 0 {
            ThreatKind::ActuatorRace
        } else {
            ThreatKind::CovertTriggering
        };
        threats.push(Threat {
            kind,
            source: RuleId::new(format!("App{a}"), 0),
            target: RuleId::new(format!("App{b}"), 0),
            witness: None,
            actuator: Some(format!("lamp-{pair}")),
            property: None,
            note: "synthetic bench threat".into(),
        });
    }
    if rules.len() < n {
        rules.push(rule(n - 1, n, "on")); // odd n: one uninvolved rule
    }
    (rules, threats)
}

/// One full mediated run over the population: every rule fires once and
/// issues its command; returns the number of suppressions (to keep the
/// work observable).
fn mediated_run(enforcer: &mut Enforcer, rules: &[Rule]) -> usize {
    enforcer.begin_run();
    let mut suppressed = 0;
    for (i, r) in rules.iter().enumerate() {
        if !matches!(enforcer.decide_fire(&r.id, i as u64), Decision::Allow) {
            suppressed += 1;
            continue;
        }
        let device = format!("lamp-{}", i / 2);
        let command = if i % 2 == 0 { "on" } else { "off" };
        if !matches!(
            enforcer.decide_command(&r.id, &device, command, i as u64),
            Decision::Allow
        ) {
            suppressed += 1;
        }
    }
    suppressed
}

fn bench_runtime_mediation(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_mediation");
    group.sample_size(10);
    for n in [10usize, 100, 1000] {
        let (rules, threats) = population(n);
        let mut enforcer = Enforcer::from_threats(
            &threats,
            &rules,
            &Unification::ByType,
            &PolicyTable::block_all(),
        );
        // Sanity outside the timing loop: every pair must mediate.
        let suppressed = mediated_run(&mut enforcer, &rules);
        assert_eq!(suppressed, n / 2, "one suppression per threat pair");
        enforcer.reset();

        group.bench_function(format!("decide_all/{n}_rules"), |b| {
            b.iter(|| {
                // Journal and stats are cleared outside the decisions so
                // memory stays bounded across samples.
                enforcer.reset();
                black_box(mediated_run(&mut enforcer, &rules))
            })
        });

        // Per-decision latency as measured by the engine itself.
        enforcer.reset();
        mediated_run(&mut enforcer, &rules);
        let stats = enforcer.stats();
        println!(
            "  {n:>4} rules: {} events, {} mediated, mean decision latency {}ns",
            stats.events,
            stats.mediated,
            stats.mean_latency_ns()
        );

        // The fast path: an event from a rule outside every mediation point.
        let outsider = RuleId::new("Outsider", 0);
        group.bench_function(format!("fast_path/{n}_rules"), |b| {
            b.iter(|| black_box(enforcer.decide_fire(&outsider, 0)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_runtime_mediation
}
criterion_main!(benches);
