//! Telemetry overhead bench: the 256×4 install grid with the fleet event
//! bus attached vs. disabled, plus the first queue-dispatched sweep
//! datapoint with the host's hardware thread count recorded.
//!
//! The tentpole claim under test: publishing typed events from the
//! install/detect hot paths is cheap enough to leave on in production —
//! the target is **< 3 % throughput overhead** on the repeated-install
//! grid (1-core CI container; on multi-core hosts the collector thread
//! runs beside the workload and the gap shrinks further).

use criterion::{criterion_group, criterion_main, Criterion};
use hg_api::{ExecConfig, FleetExec, TelemetryHub};
use hg_corpus::device_control_apps;
use hg_service::{Fleet, HomeId, RuleStore, TelemetryBus};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// The corpus slice rolled out to every home.
fn app_slice(apps: usize) -> Vec<(&'static str, &'static str)> {
    device_control_apps()
        .iter()
        .take(apps)
        .map(|app| (app.name, app.source))
        .collect()
}

/// Builds a fleet of `homes`, optionally wired to `bus`, and
/// force-installs `apps` corpus apps into every home.
fn populate(homes: usize, apps: usize, bus: Option<&Arc<TelemetryBus>>) -> (Fleet, Vec<HomeId>) {
    let fleet = Fleet::builder(RuleStore::shared()).shards(16).build();
    if let Some(bus) = bus {
        assert!(fleet.attach_telemetry(bus.clone()));
    }
    let ids: Vec<HomeId> = (0..homes).map(|_| fleet.create_home().unwrap()).collect();
    for (name, source) in app_slice(apps) {
        for result in fleet.install_many(&ids, source, name, None).unwrap() {
            result.1.unwrap();
        }
    }
    (fleet, ids)
}

/// One timed populate of the grid, in installs per second.
fn grid_round(homes: usize, apps: usize, bus: Option<&Arc<TelemetryBus>>) -> f64 {
    let started = Instant::now();
    let (fleet, ids) = populate(homes, apps, bus);
    let rate = (homes * apps) as f64 / started.elapsed().as_secs_f64();
    drop((fleet, ids));
    rate
}

fn bench_fleet_telemetry(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (homes, apps, rounds) = (256, 4, 15);

    // ---- telemetry on/off on the identical grid ------------------------
    // The variants are interleaved round-robin (off, publish-only, on) and
    // overhead is the **median of per-iteration ratios**: the container's
    // throughput drifts by double digits over a bench run, so measuring
    // all of one variant before the next would charge the drift to
    // whichever ran later, and a single perturbed round would swamp a
    // mean. Adjacent rounds are ~25 ms apart — close enough that a ratio
    // between them isolates telemetry from the drift.
    let raw = Arc::new(TelemetryBus::new());
    let hub = TelemetryHub::start();
    let (mut offs, mut pubs, mut ons) = (Vec::new(), Vec::new(), Vec::new());
    for round in 0..rounds {
        // The within-iteration order also rotates, so allocator/cache
        // warmth left by the previous round is not systematically
        // credited to one variant.
        for slot in 0..3 {
            match (round + slot) % 3 {
                0 => offs.push(grid_round(homes, apps, None)),
                // Publish-only: a raw bus with no collector isolates the
                // hot-path publish cost from the collector thread's
                // (deferrable) drain CPU.
                1 => pubs.push(grid_round(homes, apps, Some(&raw))),
                _ => ons.push(grid_round(homes, apps, Some(hub.bus()))),
            }
        }
    }
    let median_overhead = |wired: &[f64]| {
        let mut ratios: Vec<f64> = offs
            .iter()
            .zip(wired)
            .map(|(off, wired)| 100.0 * (off - wired) / off)
            .collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
        ratios[ratios.len() / 2]
    };
    let best = |rates: &[f64]| rates.iter().cloned().fold(0f64, f64::max);
    let publish_pct = median_overhead(&pubs);
    let overhead_pct = median_overhead(&ons);
    let (off_rate, publish_rate, on_rate) = (best(&offs), best(&pubs), best(&ons));
    println!(
        "grid {homes}x{apps}: telemetry off {off_rate:.0} installs/sec, \
         on {on_rate:.0} installs/sec \
         ({overhead_pct:+.2}% median overhead, target < 3%)"
    );
    println!(
        "  publish-only (no collector): {publish_rate:.0} installs/sec \
         ({publish_pct:+.2}% median overhead)"
    );
    let consumed_in_window = hub.registry().counter("events_consumed_total");
    println!("  collector consumed {consumed_in_window} events inside the measured rounds");
    assert!(
        hub.sync(std::time::Duration::from_secs(10)),
        "collector must drain everything the grid published"
    );
    let consumed = hub.registry().counter("events_consumed_total");
    println!(
        "  bus: {} events consumed, {} dropped",
        consumed,
        hub.bus().dropped_events()
    );
    assert!(consumed > 0, "the wired grid must publish");

    // ---- queue-dispatched sweep: the multi-core datapoint --------------
    // A fleet-wide upgrade through the per-shard work queues. On one core
    // the workers time-slice; with more hardware threads the shard sweeps
    // genuinely overlap — `hardware_threads` records which regime this
    // datapoint measured.
    let (fleet, _ids) = populate(homes, apps, Some(hub.bus()));
    let exec = FleetExec::start(Arc::new(fleet), ExecConfig::default());
    let (name, source) = app_slice(1)[0];
    let v2 = format!("{source}\n// fleet v2\n");
    let started = Instant::now();
    let mut stream = exec.begin_upgrade(v2, name.to_string()).unwrap().unwrap();
    while stream.next_part().is_some() {}
    let rollout = stream.finish();
    let elapsed = started.elapsed();
    let touched = rollout.upgraded.len() + rollout.pending.len();
    assert_eq!(touched, homes, "every home runs the first corpus app");
    let sweep_rate = touched as f64 / elapsed.as_secs_f64();
    println!(
        "  queue-dispatched sweep: {touched} homes in {elapsed:.2?} \
         ({sweep_rate:.0} homes/sec on {threads} hardware thread(s))"
    );
    exec.stop();
    hub.stop();

    hg_bench::emit_summary(
        "fleet_telemetry",
        &[
            ("installs_per_sec_off", off_rate),
            ("installs_per_sec_on", on_rate),
            ("telemetry_overhead_pct", overhead_pct),
            ("publish_only_overhead_pct", publish_pct),
            ("queue_sweep_homes_per_sec", sweep_rate),
            ("hardware_threads", threads as f64),
        ],
    );

    // Criterion sampling: the small grid with the bus attached, so
    // per-iteration publish cost shows up in the tracked timings.
    let bus = Arc::new(TelemetryBus::new());
    let mut group = c.benchmark_group("fleet_telemetry");
    group.sample_size(10);
    group.bench_function("install_grid_16x4_wired", |b| {
        b.iter(|| black_box(populate(16, 4, Some(&bus))))
    });
    group.bench_function("install_grid_16x4_silent", |b| {
        b.iter(|| black_box(populate(16, 4, None)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fleet_telemetry
}
criterion_main!(benches);
