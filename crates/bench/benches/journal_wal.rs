//! Write-ahead journal bench: append overhead on the install hot path,
//! raw append/replay throughput, and the delta-checkpoint vs full-walk
//! soak datapoint.
//!
//! The tentpole claim under test: journaling every lifecycle mutation is
//! cheap enough to leave on in production — the target is **< 5 %
//! throughput overhead** on the repeated-install 256×4 grid — and a
//! delta checkpoint of a large mostly-idle fleet beats the stop-the-world
//! full snapshot walk by the dirty fraction.
//!
//! The soak section sizes its fleet from `HG_SOAK_HOMES` (default 2 000
//! for CI smokes; the recorded `BENCH_PR8.json` datapoint runs 100 000).

use criterion::{criterion_group, criterion_main, Criterion};
use hg_bench::fleet_gen::{populate, FleetSpec};
use hg_corpus::device_control_apps;
use hg_service::{Fleet, HomeId, Journal, JournalRecord, MemBackend, RuleStore};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// The corpus slice rolled out to every home.
fn app_slice(apps: usize) -> Vec<(&'static str, &'static str)> {
    device_control_apps()
        .iter()
        .take(apps)
        .map(|app| (app.name, app.source))
        .collect()
}

/// A fresh journal over its (shared-storage) backend handle.
fn mem_journal() -> (Arc<Journal>, MemBackend) {
    let backend = MemBackend::new();
    let journal = Journal::open(Box::new(backend.clone())).expect("fresh backend opens");
    (Arc::new(journal), backend)
}

/// Builds a fleet of `homes`, optionally journaled, and installs `apps`
/// corpus apps into every home — the same grid the telemetry bench runs,
/// so the two overhead numbers are comparable.
fn grid(homes: usize, apps: usize, journaled: bool) -> (Fleet, Vec<HomeId>, Option<MemBackend>) {
    let fleet = Fleet::builder(RuleStore::shared()).shards(16).build();
    let backend = journaled.then(|| {
        let (journal, backend) = mem_journal();
        assert!(fleet.attach_journal(journal).unwrap());
        backend
    });
    // Batch creation + bulk install: the journaled grid costs one
    // `HomesCreated` and one `InstallSwept`/`StoreIngested` pair per app,
    // not one append per home — the group-commit fast path under test.
    let ids = fleet.create_homes(homes).unwrap();
    for (name, source) in app_slice(apps) {
        for result in fleet.install_many(&ids, source, name, None).unwrap() {
            result.1.unwrap();
        }
    }
    (fleet, ids, backend)
}

/// One timed populate of the grid, in installs per second.
fn grid_round(homes: usize, apps: usize, journaled: bool) -> f64 {
    let started = Instant::now();
    let out = grid(homes, apps, journaled);
    let rate = (homes * apps) as f64 / started.elapsed().as_secs_f64();
    drop(out);
    rate
}

fn bench_journal_wal(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (homes, apps, rounds) = (256, 4, 15);

    // ---- journal on/off on the identical grid --------------------------
    // Interleaved rounds, median of per-iteration ratios — same protocol
    // as the telemetry bench, for the same reason: container throughput
    // drifts, adjacent rounds isolate the journal from the drift.
    let (mut offs, mut ons) = (Vec::new(), Vec::new());
    for round in 0..rounds {
        for slot in 0..2 {
            if (round + slot) % 2 == 0 {
                offs.push(grid_round(homes, apps, false));
            } else {
                ons.push(grid_round(homes, apps, true));
            }
        }
    }
    let mut ratios: Vec<f64> = offs
        .iter()
        .zip(&ons)
        .map(|(off, on)| 100.0 * (off - on) / off)
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
    let overhead_pct = ratios[ratios.len() / 2];
    let best = |rates: &[f64]| rates.iter().cloned().fold(0f64, f64::max);
    let (off_rate, on_rate) = (best(&offs), best(&ons));
    println!(
        "grid {homes}x{apps}: journal off {off_rate:.0} installs/sec, \
         on {on_rate:.0} installs/sec \
         ({overhead_pct:+.2}% median overhead, target < 5%)"
    );

    // ---- raw append throughput -----------------------------------------
    let (journal, _backend) = mem_journal();
    let record = JournalRecord::UninstallCommitted {
        id: 1,
        app: "OnApp".into(),
    };
    let n = 50_000u64;
    let started = Instant::now();
    for _ in 0..n {
        journal.append(&record).unwrap();
    }
    let append_rate = n as f64 / started.elapsed().as_secs_f64();
    println!("  raw append: {append_rate:.0} records/sec (mem backend)");

    // ---- recovery (replay) throughput ----------------------------------
    // Reopen a journaled fleet's backend and recover. The fleet is built
    // through the **per-home** paths (`create_home` + `install_app`), so
    // the journal holds one record per lifecycle event and the rate below
    // is a per-record replay figure — the batched grid above would shrink
    // to a handful of sweep records and time nothing.
    let (journal, backend) = mem_journal();
    let live = Fleet::builder(RuleStore::shared()).shards(16).build();
    assert!(live.attach_journal(journal).unwrap());
    for _ in 0..homes {
        let id = live.create_home().unwrap();
        for (name, source) in app_slice(apps) {
            live.install_app(id, source, name, None).unwrap();
        }
    }
    let reopened = Arc::new(Journal::open(Box::new(backend.clone())).unwrap());
    let records = reopened.next_offset();
    let started = Instant::now();
    let recovered = Fleet::recover(reopened).expect("journal replays");
    let replay_secs = started.elapsed().as_secs_f64();
    assert_eq!(recovered.len(), live.len(), "replay rebuilds every home");
    let replay_rate = records as f64 / replay_secs;
    println!(
        "  recovery: {records} records replayed in {replay_secs:.2}s \
         ({replay_rate:.0} records/sec)"
    );
    drop((live, recovered));

    // ---- delta checkpoint vs full walk (the soak datapoint) ------------
    let soak_homes: usize = std::env::var("HG_SOAK_HOMES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    let spec = FleetSpec {
        shards: 32,
        ..FleetSpec::sized(soak_homes)
    };
    let fleet = Fleet::builder(RuleStore::shared())
        .shards(spec.shards)
        .build();
    let (journal, _backend) = mem_journal();
    fleet.attach_journal(journal.clone()).unwrap();
    let populate_started = Instant::now();
    let (ids, stats) = populate(&fleet, &spec);
    let populate_secs = populate_started.elapsed().as_secs_f64();
    fleet.checkpoint().expect("post-populate checkpoint");
    // Churn 1 % of the fleet so the next delta exports only that slice.
    let (source, name) = app_slice(1)
        .first()
        .map(|(n, s)| (s.to_string(), n.to_string()))
        .unwrap();
    for &id in ids.iter().step_by(100) {
        fleet.install_app(id, &source, &name, None).unwrap();
    }
    let started = Instant::now();
    let delta = fleet.checkpoint().expect("delta checkpoint");
    let delta_secs = started.elapsed().as_secs_f64();
    let started = Instant::now();
    let full_bytes = fleet.snapshot().unwrap().to_text().len();
    let full_secs = started.elapsed().as_secs_f64();
    println!(
        "  soak {soak_homes} homes (populated in {populate_secs:.1}s, \
         {chains} chained reports): delta checkpoint of {dirty} dirty homes \
         {delta_secs:.3}s vs full walk ({full_bytes} B) {full_secs:.3}s \
         ({speedup:.1}x)",
        chains = stats.chained_reports,
        dirty = delta.homes,
        speedup = full_secs / delta_secs.max(1e-9),
    );

    hg_bench::emit_summary(
        "journal_wal",
        &[
            ("installs_per_sec_off", off_rate),
            ("installs_per_sec_on", on_rate),
            ("journal_overhead_pct", overhead_pct),
            ("append_records_per_sec", append_rate),
            ("replay_records_per_sec", replay_rate),
            ("soak_homes", soak_homes as f64),
            ("soak_chained_reports", stats.chained_reports as f64),
            ("delta_checkpoint_secs", delta_secs),
            ("full_walk_secs", full_secs),
            ("hardware_threads", threads as f64),
        ],
    );

    // Criterion sampling: a small journaled grid, so per-iteration append
    // cost shows up in the tracked timings.
    let mut group = c.benchmark_group("journal_wal");
    group.sample_size(10);
    group.bench_function("install_grid_16x4_journaled", |b| {
        b.iter(|| black_box(grid(16, 4, true)))
    });
    group.bench_function("install_grid_16x4_plain", |b| {
        b.iter(|| black_box(grid(16, 4, false)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_journal_wal
}
criterion_main!(benches);
