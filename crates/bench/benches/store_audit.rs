//! Store-audit bench: indexed incremental detection vs exhaustive pairwise
//! detection over the device-controlling corpus.
//!
//! This is the perf-trajectory guard for the candidate index: the full
//! audit is run both ways, and the printed `DetectStats` show how many
//! rule-pair visits (each at least one merged-situation solve in a
//! filterless detector) the index skips. The run asserts the index prunes
//! at least half of all pairs and reports the identical threat count.

use criterion::{criterion_group, criterion_main, Criterion};
use hg_bench::device_control_rule_sets;
use hg_detector::{DetectStats, DetectionEngine, Detector};
use std::hint::black_box;

/// One full incremental store audit; returns (threats, stats).
fn audit(indexed: bool) -> (usize, DetectStats) {
    let sets = device_control_rule_sets();
    let mut engine = DetectionEngine::new(Detector::store_wide());
    let mut stats = DetectStats::default();
    let mut threats = 0usize;
    for rules in &sets {
        let (t, s) = if indexed {
            engine.check(rules)
        } else {
            engine.check_exhaustive(rules)
        };
        threats += t.len();
        stats.absorb(s);
        engine.install_rules(rules.iter());
    }
    (threats, stats)
}

fn bench_store_audit(c: &mut Criterion) {
    // Report the index's effect once, outside the timing loops.
    let (threats_indexed, si) = audit(true);
    let (threats_exhaustive, se) = audit(false);
    assert_eq!(
        threats_indexed, threats_exhaustive,
        "indexed and exhaustive audits must agree"
    );
    assert!(
        si.pruned >= se.pairs / 2,
        "index pruned {} of {} pairs — less than half",
        si.pruned,
        se.pairs
    );
    println!("store audit over {} rule pairs:", se.pairs);
    println!(
        "  indexed:    visited {:>6} pairs, pruned {:>6}, {:>6} solver calls ({} reused)",
        si.pairs, si.pruned, si.solves, si.reused
    );
    println!(
        "  exhaustive: visited {:>6} pairs, pruned {:>6}, {:>6} solver calls ({} reused)",
        se.pairs, se.pruned, se.solves, se.reused
    );
    println!(
        "  pair visits skipped by the index: {:.1}%",
        100.0 * si.pruned as f64 / se.pairs as f64
    );

    let mut group = c.benchmark_group("store_audit");
    group.sample_size(10);
    group.bench_function("indexed_incremental", |b| b.iter(|| black_box(audit(true))));
    group.bench_function("exhaustive_pairwise", |b| {
        b.iter(|| black_box(audit(false)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_store_audit
}
criterion_main!(benches);
