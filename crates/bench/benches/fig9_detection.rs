//! Fig. 9: CAI detection overhead for a pair of rules, per threat kind.
//!
//! The paper reports per-kind detection times on a Galaxy S8, dominated by
//! constraint solving, with EC cheaper than AR/GC (half the constraints)
//! and CT/SD/LT reusing AR's solving result (DC reusing EC's). This bench
//! reproduces the *shape* on representative rule pairs drawn from the
//! paper's own examples, plus the filtering-only fast path.

use criterion::{criterion_group, criterion_main, Criterion};
use hg_bench::corpus_rules;
use hg_detector::{Detector, PreparedRule, VerdictCache};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn pairs() -> Vec<(
    &'static str,
    Vec<hg_rules::rule::Rule>,
    Vec<hg_rules::rule::Rule>,
)> {
    vec![
        // AR: ComfortTV vs ColdDefender (Fig. 3).
        (
            "AR_pair",
            corpus_rules("ComfortTV"),
            corpus_rules("ColdDefender"),
        ),
        // GC: heater-style vs window-style conflict.
        (
            "GC_pair",
            corpus_rules("ItsTooCold"),
            corpus_rules("WindowOrAC"),
        ),
        // CT(+SD): ItsTooHot vs EnergySaver (§III-B).
        (
            "CT_SD_pair",
            corpus_rules("ItsTooHot"),
            corpus_rules("EnergySaver"),
        ),
        // LT: LightUpTheNight against itself-style second app.
        (
            "LT_pair",
            corpus_rules("LightUpTheNight"),
            corpus_rules("SmartNightlight"),
        ),
        // EC/DC: NightCare vs BurglarFinder (Fig. 5).
        (
            "EC_DC_pair",
            corpus_rules("NightCare"),
            corpus_rules("BurglarFinder"),
        ),
        // Unrelated pair: candidate filtering rejects without solving.
        (
            "filtered_pair",
            corpus_rules("KnockKnock"),
            corpus_rules("LeakAlert"),
        ),
    ]
}

fn bench_detection(c: &mut Criterion) {
    let detector = Detector::store_wide();

    // Machine-readable per-pair timings (µs, mean of a fixed batch) for
    // the BENCH_*.json trajectory, measured outside criterion so the
    // summary exists in every run mode.
    let mut summary: Vec<(&str, f64)> = Vec::new();
    for (label, rules_a, rules_b) in pairs() {
        if rules_a.is_empty() || rules_b.is_empty() {
            continue;
        }
        let runs = 60u32;
        let started = Instant::now();
        for _ in 0..runs {
            black_box(detector.detect_pair(black_box(&rules_a[0]), black_box(&rules_b[0])));
        }
        summary.push((label, started.elapsed().as_micros() as f64 / runs as f64));
    }
    hg_bench::emit_summary("fig9_detection_pair_us", &summary);

    let mut group = c.benchmark_group("fig9_detect_pair");
    for (label, rules_a, rules_b) in pairs() {
        if rules_a.is_empty() || rules_b.is_empty() {
            continue;
        }
        group.bench_function(label, |b| {
            b.iter(|| {
                let (threats, stats) =
                    detector.detect_pair(black_box(&rules_a[0]), black_box(&rules_b[0]));
                black_box((threats, stats))
            })
        });
    }
    group.finish();
}

fn bench_verdict_cache(c: &mut Criterion) {
    // The fleet-shared cache's fast path vs. a fresh solve of the same
    // prepared pair: what every home after the first pays for a repeated
    // store-app pair.
    let cache = Arc::new(VerdictCache::new());
    let cached = Detector::store_wide().with_cache(cache.clone());
    let uncached = Detector::store_wide();
    let a = corpus_rules("ComfortTV");
    let b = corpus_rules("ColdDefender");
    let pa = PreparedRule::prepare(&a[0], &cached.unification);
    let pb = PreparedRule::prepare(&b[0], &cached.unification);
    // Warm the entry once.
    let (warm, _) = cached.detect_pair_prepared(&pa, &pb);
    let (truth, _) = uncached.detect_pair_prepared(&pa, &pb);
    assert_eq!(warm, truth, "cached verdict must be bit-identical");

    let mut group = c.benchmark_group("verdict_cache");
    group.bench_function("uncached_pair", |bch| {
        bch.iter(|| black_box(uncached.detect_pair_prepared(&pa, &pb)))
    });
    group.bench_function("cached_pair_hit", |bch| {
        bch.iter(|| black_box(cached.detect_pair_prepared(&pa, &pb)))
    });
    group.finish();
    assert!(cache.stats().hits > 0);
}

fn bench_solver_reuse(c: &mut Criterion) {
    // The reuse effect: detect_pair solves the situation overlap once and
    // reuses it across AR/CT/SD/LT, so a full pair detection costs little
    // more than one solve.
    let detector = Detector::store_wide();
    let a = corpus_rules("ComfortTV");
    let b = corpus_rules("ColdDefender");
    let mut group = c.benchmark_group("fig9_reuse");
    group.bench_function("one_solve_direct", |bch| {
        let s1 = a[0].situation();
        let s2 = b[0].situation();
        bch.iter(|| black_box(detector.solver.solve(&[&s1, &s2])))
    });
    group.bench_function("full_pair_all_kinds", |bch| {
        bch.iter(|| black_box(detector.detect_pair(&a[0], &b[0])))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_detection, bench_solver_reuse, bench_verdict_cache
}
criterion_main!(benches);
