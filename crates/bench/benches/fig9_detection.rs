//! Fig. 9: CAI detection overhead for a pair of rules, per threat kind.
//!
//! The paper reports per-kind detection times on a Galaxy S8, dominated by
//! constraint solving, with EC cheaper than AR/GC (half the constraints)
//! and CT/SD/LT reusing AR's solving result (DC reusing EC's). This bench
//! reproduces the *shape* on representative rule pairs drawn from the
//! paper's own examples, plus the filtering-only fast path.

use criterion::{criterion_group, criterion_main, Criterion};
use hg_bench::corpus_rules;
use hg_detector::Detector;
use std::hint::black_box;

fn pairs() -> Vec<(
    &'static str,
    Vec<hg_rules::rule::Rule>,
    Vec<hg_rules::rule::Rule>,
)> {
    vec![
        // AR: ComfortTV vs ColdDefender (Fig. 3).
        (
            "AR_pair",
            corpus_rules("ComfortTV"),
            corpus_rules("ColdDefender"),
        ),
        // GC: heater-style vs window-style conflict.
        (
            "GC_pair",
            corpus_rules("ItsTooCold"),
            corpus_rules("WindowOrAC"),
        ),
        // CT(+SD): ItsTooHot vs EnergySaver (§III-B).
        (
            "CT_SD_pair",
            corpus_rules("ItsTooHot"),
            corpus_rules("EnergySaver"),
        ),
        // LT: LightUpTheNight against itself-style second app.
        (
            "LT_pair",
            corpus_rules("LightUpTheNight"),
            corpus_rules("SmartNightlight"),
        ),
        // EC/DC: NightCare vs BurglarFinder (Fig. 5).
        (
            "EC_DC_pair",
            corpus_rules("NightCare"),
            corpus_rules("BurglarFinder"),
        ),
        // Unrelated pair: candidate filtering rejects without solving.
        (
            "filtered_pair",
            corpus_rules("KnockKnock"),
            corpus_rules("LeakAlert"),
        ),
    ]
}

fn bench_detection(c: &mut Criterion) {
    let detector = Detector::store_wide();
    let mut group = c.benchmark_group("fig9_detect_pair");
    for (label, rules_a, rules_b) in pairs() {
        if rules_a.is_empty() || rules_b.is_empty() {
            continue;
        }
        group.bench_function(label, |b| {
            b.iter(|| {
                let (threats, stats) =
                    detector.detect_pair(black_box(&rules_a[0]), black_box(&rules_b[0]));
                black_box((threats, stats))
            })
        });
    }
    group.finish();
}

fn bench_solver_reuse(c: &mut Criterion) {
    // The reuse effect: detect_pair solves the situation overlap once and
    // reuses it across AR/CT/SD/LT, so a full pair detection costs little
    // more than one solve.
    let detector = Detector::store_wide();
    let a = corpus_rules("ComfortTV");
    let b = corpus_rules("ColdDefender");
    let mut group = c.benchmark_group("fig9_reuse");
    group.bench_function("one_solve_direct", |bch| {
        let s1 = a[0].situation();
        let s2 = b[0].situation();
        bch.iter(|| black_box(detector.solver.solve(&[&s1, &s2])))
    });
    group.bench_function("full_pair_all_kinds", |bch| {
        bch.iter(|| black_box(detector.detect_pair(&a[0], &b[0])))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_detection, bench_solver_reuse
}
criterion_main!(benches);
